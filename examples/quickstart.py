#!/usr/bin/env python
"""Quickstart: speculation-aware vs speculation-oblivious scheduling.

Generates a small Facebook-like workload, replays it through a
centralized SRPT scheduler with best-effort LATE speculation (today's
practice) and through centralized Hopper (coordinated speculation), and
prints the reduction in average job completion time.

Run:  python examples/quickstart.py
"""

from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_centralized,
)
from repro.metrics.analysis import mean_reduction_percent
from repro.workload.generator import FACEBOOK_PROFILE


def main() -> None:
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=200,
        utilization=0.7,
        total_slots=200,
        max_phase_tasks=300,
    )
    trace = build_trace(spec)
    print(f"workload: {len(trace)} jobs, {trace.total_tasks} tasks, "
          f"target utilization {spec.utilization:.0%}")

    srpt = run_centralized(trace, "srpt", spec)
    hopper = run_centralized(trace, "hopper", spec)

    print(f"\n{'scheduler':<22}{'mean job duration':>20}{'spec copies':>14}")
    for result in (srpt, hopper):
        print(
            f"{result.scheduler_name:<22}"
            f"{result.mean_job_duration:>20.2f}"
            f"{result.speculative_copies:>14d}"
        )
    gain = mean_reduction_percent(srpt, hopper)
    print(f"\nHopper reduces average job duration by {gain:.1f}% "
          f"versus SRPT + best-effort LATE.")


if __name__ == "__main__":
    main()
