#!/usr/bin/env python
"""The ε-fairness knob (§4.3, Fig. 10).

Sweeps epsilon from 0 (perfectly fair floors) to 0.3 and reports the
performance gain against Sparrow-SRPT together with how many jobs slow
down relative to the perfectly fair run — the paper's claim is that at
ε = 10% fewer than ~4% of jobs slow down, and only mildly.

Run:  python examples/fairness_knob.py
"""

from repro.experiments.figures import fig10_fairness


def main() -> None:
    rows = fig10_fairness(
        epsilons=(0.0, 0.05, 0.10, 0.20, 0.30),
        num_jobs=100,
        total_slots=300,
    )
    print(f"{'epsilon':>8}{'gain vs SRPT':>14}{'% slowed':>10}"
          f"{'avg slow':>10}{'worst':>8}")
    for row in rows:
        print(
            f"{row.epsilon:>8.2f}"
            f"{row.gain_vs_srpt:>13.1f}%"
            f"{100 * row.fraction_slowed:>9.1f}%"
            f"{row.mean_slowdown:>9.1f}%"
            f"{row.worst_slowdown:>7.1f}%"
        )
    print(
        "\nGains rise quickly for small epsilon and flatten (Fig. 10a); "
        "few jobs slow down versus a perfectly fair allocation (Fig. 10b/c)."
    )


if __name__ == "__main__":
    main()
