#!/usr/bin/env python
"""DAG jobs, pipelining and the alpha weighting (§4.2, §6.3).

Builds multi-phase jobs (map -> shuffle -> reduce chains), shows how the
alpha estimator learns intermediate data sizes from recurring jobs, and
compares Hopper with and without the sqrt(alpha) virtual-size scaling.

Run:  python examples/dag_pipeline.py
"""

from repro.centralized.config import CentralizedConfig
from repro.estimation.alpha import AlphaEstimator
from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_centralized,
)
from repro.metrics.analysis import mean_reduction_percent
from repro.workload.generator import FACEBOOK_PROFILE
from repro.workload.job import make_chain_job


def alpha_estimation_demo() -> None:
    print("--- alpha estimation from recurring jobs (§6.3) ---")
    estimator = AlphaEstimator()
    # Simulate 5 historical runs of a recurring script.
    for run in range(5):
        job = make_chain_job(
            job_id=run,
            arrival_time=0.0,
            phase_task_sizes=[[1.0] * 20, [1.0] * 8],
            phase_output_data=[38.0 + run, 0.0],
            name="nightly-report",
        )
        estimator.observe_job(job)
    new_run = make_chain_job(
        job_id=99,
        arrival_time=0.0,
        phase_task_sizes=[[1.0] * 20, [1.0] * 8],
        phase_output_data=[40.0, 0.0],
        name="nightly-report",
    )
    predicted = estimator.predict_phase_output("nightly-report", 0)
    alpha = estimator.predict_alpha(new_run)
    print(f"predicted intermediate output: {predicted:.1f} (actual 40.0)")
    print(f"predicted alpha for the new run: {alpha:.2f}")
    print(f"estimator accuracy so far: {estimator.accuracy:.0%}\n")


def dag_scheduling_demo() -> None:
    print("--- Hopper on DAG workloads, with and without alpha ---")
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=80,
        utilization=0.7,
        total_slots=200,
        max_phase_tasks=120,
    )
    trace = build_trace(spec)
    srpt = run_centralized(trace, "srpt", spec)
    with_alpha = run_centralized(trace, "hopper", spec)
    no_alpha_config = CentralizedConfig(use_alpha=False)
    without_alpha = run_centralized(
        trace, "hopper", spec, config=no_alpha_config
    )
    print(f"SRPT baseline        : {srpt.mean_job_duration:7.2f}")
    print(f"Hopper (with alpha)  : {with_alpha.mean_job_duration:7.2f} "
          f"({mean_reduction_percent(srpt, with_alpha):.1f}% vs SRPT)")
    print(f"Hopper (alpha = 1)   : {without_alpha.mean_job_duration:7.2f} "
          f"({mean_reduction_percent(srpt, without_alpha):.1f}% vs SRPT)")


def main() -> None:
    alpha_estimation_demo()
    dag_scheduling_demo()


if __name__ == "__main__":
    main()
