#!/usr/bin/env python
"""Decentralized scheduling: Sparrow vs Sparrow-SRPT vs Hopper.

Replays an interactive (in-memory Spark-like) workload through the three
decentralized systems at two utilizations and prints mean job durations,
speculation statistics and message counts — the paper's Fig. 6 at demo
scale.

Run:  python examples/decentralized_cluster.py
"""

from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_decentralized,
)
from repro.metrics.analysis import mean_reduction_percent
from repro.workload.generator import SPARK_FACEBOOK_PROFILE


def main() -> None:
    for utilization in (0.6, 0.8):
        spec = WorkloadSpec(
            profile=SPARK_FACEBOOK_PROFILE,
            num_jobs=120,
            utilization=utilization,
            total_slots=300,
        )
        trace = build_trace(spec)
        print(f"\n=== utilization {utilization:.0%} "
              f"({len(trace)} jobs, {trace.total_tasks} tasks, "
              f"{spec.total_slots} workers) ===")
        results = {}
        for system in ("sparrow", "sparrow-srpt", "hopper"):
            result = run_decentralized(trace, system, spec)
            results[system] = result
            print(
                f"{system:<14} mean={result.mean_job_duration:7.2f}  "
                f"spec={result.speculative_copies:5d} "
                f"(wins {result.speculative_wins})  "
                f"messages={result.messages_sent}"
            )
        vs_sparrow = mean_reduction_percent(
            results["sparrow"], results["hopper"]
        )
        vs_srpt = mean_reduction_percent(
            results["sparrow-srpt"], results["hopper"]
        )
        print(f"Hopper vs Sparrow      : {vs_sparrow:5.1f}% faster")
        print(f"Hopper vs Sparrow-SRPT : {vs_srpt:5.1f}% faster")


if __name__ == "__main__":
    main()
