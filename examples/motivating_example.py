#!/usr/bin/env python
"""The paper's §3 motivating example (Figures 1-2, Table 1).

Two jobs, seven slots: job A (4 tasks, one straggler) and job B (5 tasks,
one straggler). Reproduces the completion times of best-effort
speculation (Fig. 1a), budgeted speculation (Fig. 1b) and coordinated
Hopper scheduling (Fig. 2) exactly.

Run:  python examples/motivating_example.py
"""

from repro.experiments.motivating import run_motivating_example


def main() -> None:
    print("Paper §3: two jobs (A: 4 tasks, B: 5 tasks) on 7 slots\n")
    print(f"{'strategy':<14}{'job A':>8}{'job B':>8}{'average':>10}")
    for result in run_motivating_example():
        print(
            f"{result.strategy:<14}"
            f"{result.completion_a:>8.0f}"
            f"{result.completion_b:>8.0f}"
            f"{result.average:>10.1f}"
        )
    print(
        "\nPaper values — best-effort: A=20, B=30; budgeted: A=12, B=32;\n"
        "Hopper (Fig. 2): A=12, B=22. Coordination dominates both strawmen."
    )


if __name__ == "__main__":
    main()
