"""Benchmark: Figure 5a/5b — the power of many choices and refusals."""

from _tables import report_table

from repro.experiments.figures import fig5a_probe_count, fig5b_refusal_count
from _runner import RUNNER


def test_bench_fig5a_probe_count(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5a_probe_count(
            probe_ratios=(2.0, 4.0, 6.0, 8.0),
            utilizations=(0.7,),
            num_jobs=100,
            total_slots=300,
            runner=RUNNER,
        ),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig5",
        "Fig 5a: ratio vs centralized Hopper by probe count "
        "(paper: Hopper within ~15% at d>=4; Sparrow >100% off)",
        ("system", "probes d", "util", "ratio vs centralized"),
        [(r.system, r.parameter, r.utilization, r.ratio) for r in rows],
    )
    hopper = {r.parameter: r.ratio for r in rows if r.system == "hopper"}
    sparrow = [r.ratio for r in rows if r.system == "sparrow"]
    # More probes help (d=4 no worse than d=2, small tolerance).
    assert hopper[4.0] <= hopper[2.0] * 1.10
    # Decentralized Hopper at d>=4 lands within ~60% of centralized.
    assert hopper[4.0] <= 1.6
    # Sparrow (no coordination) is further from centralized than Hopper d=4.
    assert sparrow[0] >= hopper[4.0] * 0.95


def test_bench_fig5b_refusal_count(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5b_refusal_count(
            refusal_counts=(0, 1, 2, 3),
            utilizations=(0.7,),
            num_jobs=100,
            total_slots=300,
            runner=RUNNER,
        ),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig5",
        "Fig 5b: ratio vs centralized Hopper by refusal threshold "
        "(paper: 2-3 refusals within 10-15% of centralized)",
        ("refusals", "util", "ratio vs centralized"),
        [(int(r.parameter), r.utilization, r.ratio) for r in rows],
    )
    by_refusals = {int(r.parameter): r.ratio for r in rows}
    # A couple of refusals should not hurt relative to none, and the
    # 2-3 refusal operating point is close to the best observed.
    best = min(by_refusals.values())
    assert min(by_refusals[2], by_refusals[3]) <= best * 1.15
