"""Blacklist-policy overhead benchmark: the eviction path must be free
when nothing is evicted.

Runs both simulator planes on the **no-straggler** regime with the
strike-driven blacklist policy armed. With no stragglers, no completion
is ever slower than the strike multiplier, so zero strikes are recorded
and zero machines are evicted — the only cost is the per-completion
observation hook. Events/sec should therefore sit on top of the
policy-off rows (printed as an on/off ratio), and a regression here
means an accidental O(machines) scan crept onto the completion path.

Results land in ``BENCH_blacklist.json`` (same schema as
``BENCH_scale.json``), which doubles as the committed baseline the CI
``perf-smoke`` job gates via ``benchmarks/check_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_blacklist.py --quick
    PYTHONPATH=src python benchmarks/bench_blacklist.py --output fresh.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # allow plain `python benchmarks/...`
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from _tables import print_table, write_bench_json  # noqa: E402

#: (total_slots, num_jobs) points; the quick grid is what CI gates.
FULL_GRID: Sequence[Tuple[int, int]] = ((2000, 60), (10000, 120))
QUICK_GRID: Sequence[Tuple[int, int]] = ((2000, 40), (8000, 60))

PLANES = ("decentralized", "centralized")
POLICIES = ("off", "strikes")

PROBE_RATIO = 4.0
UTILIZATION = 0.6
TRACE_SEED = 42
RUN_SEED = 7


def _build_trace(total_slots: int, num_jobs: int):
    from repro.experiments.harness import WorkloadSpec, build_trace
    from repro.workload.generator import profile_by_name

    profile = profile_by_name("spark-facebook")
    spec = WorkloadSpec(
        profile=profile,
        num_jobs=num_jobs,
        utilization=UTILIZATION,
        total_slots=total_slots,
        seed=TRACE_SEED,
    )
    return profile, spec, build_trace(spec)


def _policy(name: str, num_machines: int):
    from repro import registry

    if name == "off":
        return None
    return registry.make_blacklist_policy(name, num_machines=num_machines)


def run_once_decentralized(
    total_slots: int, num_jobs: int, policy_name: str
) -> Dict[str, Any]:
    from repro import registry
    from repro.decentralized.config import DecentralizedConfig
    from repro.decentralized.simulator import DecentralizedSimulator
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import NoStragglerModel

    profile, _, trace = _build_trace(total_slots, num_jobs)
    defaults = registry.DECENTRALIZED_SYSTEMS.get("hopper").factory()
    simulator = DecentralizedSimulator(
        num_workers=total_slots,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=NoStragglerModel(),
        config=DecentralizedConfig(
            worker_policy=defaults.worker_policy,
            probe_ratio=PROBE_RATIO,
            epsilon=defaults.epsilon,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        name="hopper",
        blacklist_policy=_policy(policy_name, total_slots),
    )
    start = time.perf_counter()
    simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    evicted = (
        0
        if simulator.blacklist_policy is None
        else len(simulator.blacklist_policy.evictions)
    )
    return {
        "system": f"decentralized+{policy_name}",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": PROBE_RATIO,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "evictions": evicted,
    }


def run_once_centralized(
    total_slots: int, num_jobs: int, policy_name: str
) -> Dict[str, Any]:
    from repro import registry
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import NoStragglerModel

    profile, _, trace = _build_trace(total_slots, num_jobs)
    policy = registry.CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1)
    slots_per_machine = 4
    num_machines = max(1, total_slots // slots_per_machine)
    simulator = CentralizedSimulator(
        cluster=Cluster(
            num_machines=num_machines, slots_per_machine=slots_per_machine
        ),
        policy=policy,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=NoStragglerModel(),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        blacklist_policy=_policy(policy_name, num_machines),
    )
    start = time.perf_counter()
    simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    evicted = (
        0
        if simulator._blacklist_policy is None
        else len(simulator._blacklist_policy.evictions)
    )
    return {
        "system": f"centralized+{policy_name}",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": None,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "evictions": evicted,
    }


_RUNNERS = {
    "decentralized": run_once_decentralized,
    "centralized": run_once_centralized,
}


def run_benchmark(
    grid: Sequence[Tuple[int, int]], repeats: int
) -> List[Dict[str, Any]]:
    """Best-of-``repeats`` per plane x policy x grid point."""
    rows: List[Dict[str, Any]] = []
    for plane in PLANES:
        run_once = _RUNNERS[plane]
        for policy_name in POLICIES:
            for total_slots, num_jobs in grid:
                best: Optional[Dict[str, Any]] = None
                for _ in range(repeats):
                    row = run_once(total_slots, num_jobs, policy_name)
                    if (
                        best is None
                        or row["wall_seconds"] < best["wall_seconds"]
                    ):
                        best = row
                assert best is not None
                if best["evictions"]:
                    raise SystemExit(
                        "no-straggler regime must not evict, got "
                        f"{best['evictions']} on {best['system']}"
                    )
                rows.append(best)
    return rows


def _aggregate(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_seconds"] for r in rows)
    return {
        "total_events": total_events,
        "total_wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke grid"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        metavar="N",
        help="timed repetitions per point; best wall-clock wins (default 2)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "output JSON path (default: BENCH_blacklist.json for --quick, "
            "BENCH_blacklist.full.json otherwise)"
        ),
    )
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_benchmark(grid, max(args.repeats, 1))
    aggregate = _aggregate(rows)
    per_system = {
        system: _aggregate([r for r in rows if r["system"] == system])
        for system in sorted({r["system"] for r in rows})
    }

    print_table(
        "Blacklist-policy overhead: events/sec with the strikes policy "
        f"armed on the no-straggler regime ({'quick' if args.quick else 'full'} grid)",
        ("system", "slots", "jobs", "events", "wall s", "events/s"),
        [
            (
                r["system"],
                r["total_slots"],
                r["num_jobs"],
                r["events"],
                r["wall_seconds"],
                r["events_per_sec"],
            )
            for r in rows
        ],
    )
    for plane in PLANES:
        off = per_system[f"{plane}+off"]["events_per_sec"]
        on = per_system[f"{plane}+strikes"]["events_per_sec"]
        ratio = on / off if off else 0.0
        print(
            f"{plane}: policy-on/off throughput ratio {ratio:.3f} "
            f"({on:,.0f} vs {off:,.0f} ev/s; ~1.0 expected)"
        )

    payload = {
        "quick": args.quick,
        "planes": list(PLANES),
        "policies": list(POLICIES),
        "probe_ratio": PROBE_RATIO,
        "utilization": UTILIZATION,
        "repeats": max(args.repeats, 1),
        "rows": rows,
        "aggregate": aggregate,
        "per_system": per_system,
    }
    if args.output:
        from _tables import BENCH_SCHEMA_VERSION
        import json

        out = Path(args.output)
        doc = {
            "benchmark": "blacklist",
            "schema_version": BENCH_SCHEMA_VERSION,
            **payload,
        }
        out.write_text(json.dumps(doc, indent=2) + "\n")
    elif args.quick:
        out = write_bench_json("blacklist", payload)
    else:
        out = write_bench_json("blacklist.full", payload)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
