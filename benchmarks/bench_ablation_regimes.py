"""Ablation: Hopper's two-regime split vs forcing one guideline always.

DESIGN.md calls out the regime bifurcation (Guideline 2 under contention,
Guideline 3 otherwise) as the core design choice; this benchmark forces
each regime on permanently and compares against the adaptive policy, and
also ablates the 2/beta virtual-size multiplier (setting beta=2 makes the
multiplier exactly 1, i.e. plain SRPT-with-speculation sizing).
"""

from _tables import report_table

from repro.centralized.config import CentralizedConfig
from repro.centralized.policies import HopperPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.cluster.cluster import Cluster
from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    default_straggler_model,
)
from repro.simulation.rng import RandomSource
from repro.speculation import make_speculation_policy
from repro.workload.generator import FACEBOOK_PROFILE


def _run(trace, spec, force_regime=None, default_beta=None):
    config = CentralizedConfig(
        epsilon=0.1,
        learn_beta=default_beta is None,
        default_beta=default_beta or spec.profile.beta,
    )
    sim = CentralizedSimulator(
        cluster=Cluster(num_machines=spec.total_slots // 4, slots_per_machine=4),
        policy=HopperPolicy(epsilon=0.1, force_regime=force_regime),
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=default_straggler_model(spec.profile),
        config=config,
        random_source=RandomSource(seed=7),
    )
    return sim.run()


def _experiment():
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=200,
        utilization=0.7,
        total_slots=200,
        max_phase_tasks=300,
    )
    trace = build_trace(spec)
    return {
        "adaptive (paper)": _run(trace, spec).mean_job_duration,
        "always guideline 2": _run(
            trace, spec, force_regime="constrained"
        ).mean_job_duration,
        "always guideline 3": _run(
            trace, spec, force_regime="rich"
        ).mean_job_duration,
        "multiplier 1 (beta=2)": _run(
            trace, spec, default_beta=2.0
        ).mean_job_duration,
    }


def test_bench_ablation_regimes(benchmark):
    out = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report_table(
        "ablation_regimes",
        "Ablation: regime bifurcation and the 2/beta multiplier "
        "(mean job duration; lower is better)",
        ("variant", "mean job duration"),
        list(out.items()),
    )
    adaptive = out["adaptive (paper)"]
    # The adaptive two-regime design is never much worse than either
    # forced regime (it should typically be the best or near-best).
    assert adaptive <= min(
        out["always guideline 2"], out["always guideline 3"]
    ) * 1.15
