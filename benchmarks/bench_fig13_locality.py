"""Benchmark: Figure 13 — the data-locality allowance k."""

from _tables import report_table

from repro.experiments.figures import fig13_locality


def test_bench_fig13(benchmark):
    rows = benchmark.pedantic(
        lambda: fig13_locality(
            k_values=(0.0, 3.0, 7.0, 15.0),
            num_jobs=130,
            total_slots=200,
        ),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig13",
        "Fig 13: locality allowance k (paper: small k increases locality; "
        "gains drop when k grows too large)",
        ("k %", "gain vs SRPT %", "fraction data-local"),
        [(r.k_percent, r.gain_vs_srpt, r.locality_fraction) for r in rows],
    )
    by_k = {r.k_percent: r for r in rows}
    # Locality fraction rises (weakly) with k.
    assert by_k[15.0].locality_fraction >= by_k[0.0].locality_fraction - 0.02
    # A small allowance does not hurt performance materially.
    assert by_k[3.0].gain_vs_srpt >= by_k[0.0].gain_vs_srpt - 5.0
