"""Benchmark: Figure 8a (CDF of gains) and 8b (gains vs DAG length)."""

from _tables import report_table

from repro.experiments.figures import fig8a_gain_cdf, fig8b_dag_length


def test_bench_fig8a_cdf(benchmark):
    out = benchmark.pedantic(
        lambda: fig8a_gain_cdf(num_jobs=180, total_slots=400),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig8",
        "Fig 8a: per-job gain distribution vs Sparrow-SRPT "
        "(paper: median above average, >70% at high percentiles, "
        "10th pct 10-15%)",
        ("percentile", "gain %"),
        [("p10", out["p10"]), ("p50", out["p50"]), ("p90", out["p90"]),
         ("mean", out["mean"])],
    )
    # Distribution is ordered and most jobs benefit.
    assert out["p10"] <= out["p50"] <= out["p90"]
    assert out["p90"] > 0.0
    assert out["mean"] > 0.0


def test_bench_fig8b_dag_length(benchmark):
    out = benchmark.pedantic(
        lambda: fig8b_dag_length(num_jobs=180, total_slots=400),
        rounds=1,
        iterations=1,
    )
    rows = sorted(out.items())
    report_table(
        "fig8",
        "Fig 8b: reduction (%) by DAG length (paper: gains hold across "
        "lengths)",
        ("DAG length", "reduction %"),
        rows,
    )
    assert rows, "no DAG-length groups produced"
    # Gains hold across DAG lengths: the majority of groups improve.
    improving = sum(1 for _, v in rows if v > -2.0)
    assert improving >= max(1, int(0.6 * len(rows)))
