"""Benchmark: the paper's §1/§7 headline gains."""

from _tables import report_table

from repro.experiments.figures import headline_gains
from _runner import RUNNER


def test_bench_headline(benchmark):
    out = benchmark.pedantic(
        lambda: headline_gains(num_jobs=150, total_slots=400, runner=RUNNER),
        rounds=1,
        iterations=1,
    )
    report_table(
        "headline",
        "Headline gains (paper: decentralized up to 66%, centralized up "
        "to 50%)",
        ("comparison", "reduction %"),
        [
            ("decentralized Hopper vs Sparrow-SRPT",
             out["decentralized_vs_sparrow_srpt"]),
            ("centralized Hopper vs SRPT", out["centralized_vs_srpt"]),
        ],
    )
    # Shape: Hopper wins in both deployments.
    assert out["decentralized_vs_sparrow_srpt"] > 5.0
    assert out["centralized_vs_srpt"] > 5.0
