"""Benchmark: §3 motivating example (Figures 1a, 1b, 2; Table 1)."""

from _tables import report_table

from repro.experiments.motivating import run_motivating_example


def test_bench_motivating_example(benchmark):
    results = benchmark.pedantic(
        run_motivating_example, rounds=3, iterations=1
    )
    by_name = {r.strategy: r for r in results}
    report_table(
        "motivating",
        "Fig 1-2 / Table 1: strawmen vs Hopper (paper: 20/30, 12/32, 12/22)",
        ("strategy", "job A", "job B", "average"),
        [
            (r.strategy, r.completion_a, r.completion_b, r.average)
            for r in results
        ],
    )
    # Exact reproduction of the example's arithmetic.
    assert (by_name["best_effort"].completion_a,
            by_name["best_effort"].completion_b) == (20.0, 30.0)
    assert (by_name["budgeted"].completion_a,
            by_name["budgeted"].completion_b) == (12.0, 32.0)
    assert (by_name["hopper"].completion_a,
            by_name["hopper"].completion_b) == (12.0, 22.0)
    assert by_name["hopper"].average < min(
        by_name["best_effort"].average, by_name["budgeted"].average
    )
