"""Benchmark: Figure 9 — gains are independent of the straggler
mitigation algorithm (LATE / Mantri / GRASS)."""

from _tables import report_table

from repro.experiments.figures import fig9_speculation_algorithms


def test_bench_fig9(benchmark):
    out = benchmark.pedantic(
        lambda: fig9_speculation_algorithms(
            num_jobs=130, total_slots=400
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for algo, bins in out.items():
        rows.append((algo, bins["overall"]))
    report_table(
        "fig9",
        "Fig 9: overall reduction (%) per speculation algorithm "
        "(paper: similar gains across LATE, Mantri, GRASS)",
        ("algorithm", "overall reduction %"),
        rows,
    )
    overalls = [bins["overall"] for bins in out.values()]
    # Hopper helps under every speculation algorithm...
    assert all(v > -2.0 for v in overalls)
    assert max(overalls) > 5.0
    # ...and the gains are of the same order across algorithms.
    assert max(overalls) - min(overalls) < 35.0
