"""Shared helpers for the figure benchmarks.

Each benchmark regenerates one paper table/figure at laptop scale, prints
a paper-vs-measured table (run with ``pytest benchmarks/ --benchmark-only
-s`` to see it live; captured output is also shown on failure), and
asserts the figure's *shape* (who wins, rough factors, trends) rather
than the paper's testbed-specific absolute numbers.
"""

from __future__ import annotations


def print_table(title: str, header, rows) -> None:
    """Uniform table printer for paper-vs-measured output."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print(
            "  ".join(
                (f"{v:.2f}" if isinstance(v, float) else str(v)).ljust(w)
                for v, w in zip(row, widths)
            )
        )
