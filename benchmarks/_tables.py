"""Shared benchmark table formatting and machine-readable output.

The paper-vs-measured formatter lives in :mod:`repro.metrics.tables` so
the ``python -m repro`` CLI and these benchmarks print identical tables.
On top of it, :func:`report_table` mirrors every printed table into
``BENCH_<name>.json`` next to the repo root (override the directory with
``REPRO_BENCH_DIR``) — the machine-readable perf/figure trajectory that
``benchmarks/check_regression.py`` and external tooling consume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence

from repro.metrics.tables import format_table, print_table

#: Bump when the BENCH_<name>.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def bench_json_path(name: str) -> Path:
    """``BENCH_<name>.json`` in ``REPRO_BENCH_DIR`` (default: repo root)."""
    root = os.environ.get("REPRO_BENCH_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / f"BENCH_{name}.json"


def _load_bench_doc(name: str) -> Dict[str, Any]:
    path = bench_json_path(name)
    if path.exists():
        try:
            doc = json.loads(path.read_text())
            if (
                isinstance(doc, dict)
                and doc.get("schema_version") == BENCH_SCHEMA_VERSION
            ):
                return doc
        except (OSError, ValueError):
            pass  # unreadable/stale document: start fresh
    return {
        "benchmark": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "tables": [],
    }


def write_bench_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` (adds benchmark/schema keys)."""
    doc = {
        "benchmark": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        **payload,
    }
    path = bench_json_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def record_table(
    name: str,
    title: str,
    header: Sequence,
    rows: Iterable[Sequence],
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Merge one table into ``BENCH_<name>.json`` (keyed by title)."""
    doc = _load_bench_doc(name)
    entry: Dict[str, Any] = {
        "title": title,
        "header": [str(h) for h in header],
        "rows": [list(row) for row in rows],
    }
    if extra:
        entry.update(extra)
    tables = doc.setdefault("tables", [])
    for i, existing in enumerate(tables):
        if existing.get("title") == title:
            tables[i] = entry
            break
    else:
        tables.append(entry)
    path = bench_json_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def report_table(
    name: str, title: str, header: Sequence, rows: Iterable[Sequence]
) -> None:
    """Print a paper-vs-measured table and mirror it into
    ``BENCH_<name>.json``."""
    rows = [list(row) for row in rows]
    print_table(title, header, rows)
    record_table(name, title, header, rows)


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_json_path",
    "format_table",
    "print_table",
    "record_table",
    "report_table",
    "write_bench_json",
]
