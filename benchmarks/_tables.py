"""Back-compat shim: the shared paper-vs-measured formatter now lives in
:mod:`repro.metrics.tables` so the ``python -m repro`` CLI and these
benchmarks print identical tables."""

from __future__ import annotations

from repro.metrics.tables import format_table, print_table

__all__ = ["format_table", "print_table"]
