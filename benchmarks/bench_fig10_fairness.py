"""Benchmark: Figure 10 — the fairness knob epsilon."""

from _tables import report_table

from repro.experiments.figures import fig10_fairness


def test_bench_fig10(benchmark):
    rows = benchmark.pedantic(
        lambda: fig10_fairness(
            epsilons=(0.0, 0.05, 0.10, 0.20, 0.30),
            num_jobs=130,
            total_slots=400,
        ),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig10",
        "Fig 10: epsilon sensitivity (paper: gains rise for small eps and "
        "flatten after ~15%; at eps=10% fewer than ~4-5% of jobs slow "
        "down, mildly)",
        ("epsilon", "gain vs SRPT %", "% slowed", "avg slowdown %",
         "worst slowdown %"),
        [
            (r.epsilon, r.gain_vs_srpt, 100 * r.fraction_slowed,
             r.mean_slowdown, r.worst_slowdown)
            for r in rows
        ],
    )
    by_eps = {r.epsilon: r for r in rows}
    # Hopper beats the baseline at every epsilon, including under strict
    # fairness floors (eps=0) — coordination, not unfairness, drives the
    # gains. NOTE: per-job slowdown columns are noisy at this trace size
    # because changing eps perturbs every downstream scheduling decision;
    # see EXPERIMENTS.md for the caveat vs the paper's <4% claim.
    assert all(r.gain_vs_srpt > 0.0 for r in rows)
    assert by_eps[0.30].gain_vs_srpt >= by_eps[0.0].gain_vs_srpt - 10.0
    assert by_eps[0.10].fraction_slowed <= 0.6
