"""Benchmark: Figure 12 — centralized Hopper vs centralized SRPT."""

from _tables import report_table

from repro.experiments.figures import fig12_centralized


def test_bench_fig12(benchmark):
    out = benchmark.pedantic(
        lambda: fig12_centralized(
            num_jobs=220, total_slots=200, utilization=0.7
        ),
        rounds=1,
        iterations=1,
    )
    rows = [("overall", out["overall"])]
    rows += [(f"bin {k}", v) for k, v in out["by_bin"].items()]
    rows += [(f"dag {k}", v) for k, v in sorted(out["by_dag_length"].items())]
    report_table(
        "fig12",
        "Fig 12: centralized Hopper vs SRPT+LATE (paper: ~50% overall, "
        "up to 80% per bin; gains hold across DAG lengths)",
        ("group", "reduction %"),
        rows,
    )
    # Shape: coordination wins overall, and no bin collapses.
    assert out["overall"] > 5.0
    assert any(v > 10.0 for v in out["by_bin"].values())
