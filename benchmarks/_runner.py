"""One shared SweepRunner for all figure benchmarks.

A single runner means one cache handle and one set of sweep stats across
the whole benchmark session. Parallel/caching behavior comes from
``REPRO_SWEEP_PARALLEL`` / ``REPRO_SWEEP_CACHE`` (defaults: auto / off;
cache directory from ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

from repro.sweep import default_runner

# The process-wide default (env-configured); benchmarks that don't pass
# runner= explicitly reach the very same instance via evaluate().
RUNNER = default_runner()

__all__ = ["RUNNER"]
