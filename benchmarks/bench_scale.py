"""Scale benchmark: simulator event-loop throughput at 1k-20k slots.

Measures the hot paths the ``scale`` study exercises on both system
axes — decentralized Hopper and centralized Hopper-C replaying a
Spark-like Facebook trace — and reports wall-clock and **events/sec**
(logical engine events; batched control-message deliveries are credited
per message, so numbers are comparable with the unbatched engine).
Results print as a table and land in ``BENCH_scale.json``, which doubles
as the committed baseline that the CI ``perf-smoke`` job gates on via
``benchmarks/check_regression.py`` — the centralized rows included.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py --quick
    PYTHONPATH=src python benchmarks/bench_scale.py --system centralized
    PYTHONPATH=src python benchmarks/bench_scale.py --output fresh.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # allow plain `python benchmarks/...`
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from _tables import BENCH_SCHEMA_VERSION, print_table, write_bench_json  # noqa: E402

#: (total_slots, num_jobs) points per mode; the decentralized axis runs
#: the paper's recommended probe ratio d=4. --quick must still cover the
#: >=10k regime on both axes, plus the 100k-slot row the incremental
#: allocation engine opened up (CI gates it like any other row).
FULL_GRID: Sequence[Tuple[int, int]] = (
    (1000, 150),
    (5000, 150),
    (10000, 150),
    (20000, 150),
    (100000, 150),
)
QUICK_GRID: Sequence[Tuple[int, int]] = (
    (2000, 40),
    (10000, 80),
    (100000, 100),
)

SYSTEMS = ("decentralized", "centralized", "batch", "elastic")

PROBE_RATIO = 4.0
ROUND_INTERVAL = 0.5
UTILIZATION = 0.6
TRACE_SEED = 42
RUN_SEED = 7

#: The elastic axis only runs at this cluster size: it measures resize
#: *churn* cost (membership deltas + kill/requeue) at the 10k-slot
#: regime, not another full scale sweep. Both grids carry a 10k point.
ELASTIC_SLOTS = 10000
#: Fraction of the machine fleet each churn event removes or re-adds.
ELASTIC_CHURN = 0.1
#: Alternating shrink/grow events, every 2 virtual seconds from t=2.
ELASTIC_CHURN_EVENTS = 8


def _build_trace(total_slots: int, num_jobs: int):
    from repro.experiments.harness import WorkloadSpec, build_trace
    from repro.workload.generator import profile_by_name

    profile = profile_by_name("spark-facebook")
    spec = WorkloadSpec(
        profile=profile,
        num_jobs=num_jobs,
        utilization=UTILIZATION,
        total_slots=total_slots,
        seed=TRACE_SEED,
    )
    return profile, spec, build_trace(spec)


def run_once_decentralized(
    total_slots: int, num_jobs: int, obs: Any = None
) -> Dict[str, Any]:
    """One timed decentralized-Hopper replay; returns a result row.

    ``obs`` (a :class:`repro.obs.Obs` or None) is threaded through so
    ``bench_obs.py`` can measure instrumentation overhead on the exact
    same workload; the default keeps this benchmark tracer-free.
    """
    from repro import registry
    from repro.decentralized.config import DecentralizedConfig
    from repro.decentralized.simulator import DecentralizedSimulator
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import ParetoRedrawStragglerModel

    profile, _, trace = _build_trace(total_slots, num_jobs)
    defaults = registry.DECENTRALIZED_SYSTEMS.get("hopper").factory()
    simulator = DecentralizedSimulator(
        num_workers=total_slots,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(
            beta=profile.beta, scale=profile.task_scale
        ),
        config=DecentralizedConfig(
            worker_policy=defaults.worker_policy,
            probe_ratio=PROBE_RATIO,
            epsilon=defaults.epsilon,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        name="hopper",
        obs=obs,
    )
    start = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    return {
        "system": "decentralized",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": PROBE_RATIO,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "mean_job_duration": result.mean_job_duration,
        "messages_sent": result.messages_sent,
    }


def run_once_centralized(
    total_slots: int, num_jobs: int, obs: Any = None
) -> Dict[str, Any]:
    """One timed centralized-Hopper replay (the harness defaults:
    INTEGRATED speculation, 4 slots per machine); returns a result row.
    ``obs`` as in :func:`run_once_decentralized`."""
    from repro import registry
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import ParetoRedrawStragglerModel

    profile, _, trace = _build_trace(total_slots, num_jobs)
    policy = registry.CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1)
    slots_per_machine = 4
    simulator = CentralizedSimulator(
        cluster=Cluster(
            num_machines=max(1, total_slots // slots_per_machine),
            slots_per_machine=slots_per_machine,
        ),
        policy=policy,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(
            beta=profile.beta, scale=profile.task_scale
        ),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        obs=obs,
    )
    start = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    return {
        "system": "centralized",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": None,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "mean_job_duration": result.mean_job_duration,
        "messages_sent": result.messages_sent,
    }


def run_once_batch(
    total_slots: int, num_jobs: int, obs: Any = None
) -> Dict[str, Any]:
    """One timed batch-plane Hopper replay (periodic rounds at
    ``ROUND_INTERVAL``, otherwise the centralized harness defaults);
    returns a result row. ``obs`` as in :func:`run_once_decentralized`."""
    from repro import registry
    from repro.batch import BatchSimulator
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.cluster.cluster import Cluster
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import ParetoRedrawStragglerModel

    profile, _, trace = _build_trace(total_slots, num_jobs)
    policy = registry.BATCH_SYSTEMS.get("hopper").factory(epsilon=0.1)
    slots_per_machine = 4
    simulator = BatchSimulator(
        round_interval=ROUND_INTERVAL,
        cluster=Cluster(
            num_machines=max(1, total_slots // slots_per_machine),
            slots_per_machine=slots_per_machine,
        ),
        policy=policy,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(
            beta=profile.beta, scale=profile.task_scale
        ),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        obs=obs,
    )
    start = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    return {
        "system": "batch",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": None,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "mean_job_duration": result.mean_job_duration,
        "messages_sent": result.messages_sent,
    }


def run_once_elastic(
    total_slots: int, num_jobs: int, obs: Any = None
) -> Dict[str, Any]:
    """One timed centralized-Hopper replay under scheduled resize churn:
    ``ELASTIC_CHURN_EVENTS`` alternating shrink/grow events, each moving
    ``ELASTIC_CHURN`` of the machine fleet. The delta over
    :func:`run_once_centralized` prices the membership-update and
    kill→requeue paths (Cluster.add_machine/remove_machine must stay
    O(log machines) for this row to hold its rate). ``obs`` as in
    :func:`run_once_decentralized`."""
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.cluster.elastic import ScheduleAutoscaler
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import ParetoRedrawStragglerModel

    from repro import registry

    profile, _, trace = _build_trace(total_slots, num_jobs)
    policy = registry.CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1)
    slots_per_machine = 4
    num_machines = max(1, total_slots // slots_per_machine)
    delta = max(1, int(num_machines * ELASTIC_CHURN))
    schedule = [
        (2.0 * (i + 1), -delta if i % 2 == 0 else delta)
        for i in range(ELASTIC_CHURN_EVENTS)
    ]
    simulator = CentralizedSimulator(
        cluster=Cluster(
            num_machines=num_machines, slots_per_machine=slots_per_machine
        ),
        policy=policy,
        speculation=lambda: make_speculation_policy("late"),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(
            beta=profile.beta, scale=profile.task_scale
        ),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=profile.beta,
        ),
        random_source=RandomSource(seed=RUN_SEED),
        autoscaler=ScheduleAutoscaler(schedule),
        obs=obs,
    )
    start = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - start
    events = simulator.sim.events_processed
    return {
        "system": "elastic",
        "total_slots": total_slots,
        "num_jobs": num_jobs,
        "probe_ratio": None,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "mean_job_duration": result.mean_job_duration,
        "messages_sent": result.messages_sent,
    }


_RUNNERS = {
    "decentralized": run_once_decentralized,
    "centralized": run_once_centralized,
    "batch": run_once_batch,
    "elastic": run_once_elastic,
}


def run_benchmark(
    systems: Sequence[str], grid: Sequence[Tuple[int, int]], repeats: int
) -> List[Dict[str, Any]]:
    """Best-of-``repeats`` per system x grid point (wall-clock noise
    shielding).

    The simulation itself is deterministic, so repeated runs return
    identical events/results; only the timing varies. The elastic axis
    runs only its ``ELASTIC_SLOTS`` grid point (churn cost at 10k
    slots, not a second full sweep).
    """
    rows: List[Dict[str, Any]] = []
    for system in systems:
        run_once = _RUNNERS[system]
        points = (
            [p for p in grid if p[0] == ELASTIC_SLOTS]
            if system == "elastic"
            else grid
        )
        for total_slots, num_jobs in points:
            best: Optional[Dict[str, Any]] = None
            for _ in range(repeats):
                row = run_once(total_slots, num_jobs)
                if best is None or row["wall_seconds"] < best["wall_seconds"]:
                    best = row
            assert best is not None
            rows.append(best)
    return rows


def _aggregate(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_seconds"] for r in rows)
    return {
        "total_events": total_events,
        "total_wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid (2k and 10k slots, fewer jobs)",
    )
    parser.add_argument(
        "--system",
        choices=(*SYSTEMS, "both"),
        default="both",
        help="which simulator axis to benchmark (default: both = all axes)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions per point; best wall-clock wins (default 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "output JSON path (default: BENCH_scale.json for --quick — the "
            "grid CI gates on — and BENCH_scale.full.json for the full grid, "
            "so a full run cannot silently overwrite the committed baseline)"
        ),
    )
    args = parser.parse_args(argv)

    systems = SYSTEMS if args.system == "both" else (args.system,)
    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_benchmark(systems, grid, max(args.repeats, 1))
    aggregate = _aggregate(rows)
    per_system = {
        system: _aggregate([r for r in rows if r["system"] == system])
        for system in systems
    }

    print_table(
        "Scale benchmark: events/sec by system "
        f"({'quick' if args.quick else 'full'} grid, "
        f"decentralized d={PROBE_RATIO:g})",
        ("system", "slots", "jobs", "events", "wall s", "events/s", "mean dur"),
        [
            (
                r["system"],
                r["total_slots"],
                r["num_jobs"],
                r["events"],
                r["wall_seconds"],
                r["events_per_sec"],
                r["mean_job_duration"],
            )
            for r in rows
        ],
    )
    for system in systems:
        print(
            f"{system} aggregate: "
            f"{per_system[system]['events_per_sec']:,.0f} events/sec"
        )
    print(f"\naggregate: {aggregate['events_per_sec']:,.0f} events/sec")

    payload = {
        "quick": args.quick,
        "systems": list(systems),
        "probe_ratio": PROBE_RATIO,
        "utilization": UTILIZATION,
        "repeats": max(args.repeats, 1),
        "rows": rows,
        "aggregate": aggregate,
        "per_system": per_system,
    }
    if args.output:
        out = Path(args.output)
        doc = {
            "benchmark": "scale",
            "schema_version": BENCH_SCHEMA_VERSION,
            **payload,
        }
        import json

        out.write_text(json.dumps(doc, indent=2) + "\n")
    elif args.quick:
        out = write_bench_json("scale", payload)
    else:
        out = write_bench_json("scale.full", payload)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
