"""Open-loop serving benchmark: throughput of the streaming regime.

Runs the serving driver (lazy job stream, bounded lookahead, windowed
steady-state metrics armed) on both scheduler planes across a small
(slots x rho) grid and reports engine events/sec. This covers the code
the batch benchmarks never touch — refill events, the per-completion
windowed-aggregator hooks, the time-average sampling chain — so a
regression here means the open-loop path itself got slower, not the
schedulers.

Rows carry ``mode="serving-<rho>"`` so the regression gate's row key
(system, slots, jobs, probe_ratio, mode) stays unique across rho points
at the same grid size.

Results land in ``BENCH_serving.json`` (same schema as
``BENCH_scale.json``), which doubles as the committed baseline the CI
``perf-smoke`` job gates via ``benchmarks/check_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick
    PYTHONPATH=src python benchmarks/bench_serving.py --output fresh.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # allow plain `python benchmarks/...`
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from _tables import print_table, write_bench_json  # noqa: E402

#: (total_slots, rho) points; the quick grid is what CI gates.
FULL_GRID: Sequence[Tuple[int, float]] = ((400, 0.8), (400, 0.9), (1600, 0.9))
QUICK_GRID: Sequence[Tuple[int, float]] = ((160, 0.8), (160, 0.9))

PLANES = ("decentralized", "centralized")
PLANE_SYSTEMS = {"decentralized": "hopper", "centralized": "hopper"}

#: Time layout shared by every point: 10 measurement windows plus drain.
WARMUP = 10.0
HORIZON = 110.0
COOLDOWN = 20.0
WINDOW = 10.0
MAX_JOBS = 100_000  # injection safety cap, never the binding limit here
TRACE_SEED = 42
RUN_SEED = 7


def run_once(plane: str, total_slots: int, rho: float) -> Dict[str, Any]:
    from repro.experiments.harness import WorkloadSpec
    from repro.serving import ServingRegime, run_serving
    from repro.workload.generator import profile_by_name

    spec = WorkloadSpec(
        profile=profile_by_name("spark-facebook"),
        num_jobs=MAX_JOBS,
        utilization=rho,
        total_slots=total_slots,
        seed=TRACE_SEED,
    )
    regime = ServingRegime(
        warmup=WARMUP, horizon=HORIZON, cooldown=COOLDOWN, window=WINDOW
    )
    start = time.perf_counter()
    result = run_serving(
        spec,
        plane,
        PLANE_SYSTEMS[plane],
        regime,
        run_seed=RUN_SEED,
        obs=None,
    )
    wall = time.perf_counter() - start
    serving = result.serving or {}
    events = int(serving.get("regime", {}).get("events_processed", 0))
    return {
        "system": plane,
        "total_slots": total_slots,
        "num_jobs": int(serving.get("regime", {}).get("jobs_offered", 0)),
        "probe_ratio": None,
        "mode": f"serving-{rho:g}",
        "rho": rho,
        "measured_jobs": serving.get("measured_jobs", 0),
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def run_benchmark(
    grid: Sequence[Tuple[int, float]], repeats: int
) -> List[Dict[str, Any]]:
    """Best-of-``repeats`` per plane x grid point."""
    rows: List[Dict[str, Any]] = []
    for plane in PLANES:
        for total_slots, rho in grid:
            best: Optional[Dict[str, Any]] = None
            for _ in range(repeats):
                row = run_once(plane, total_slots, rho)
                if best is None or row["wall_seconds"] < best["wall_seconds"]:
                    best = row
            assert best is not None
            if not best["measured_jobs"]:
                raise SystemExit(
                    "serving run measured zero steady-state jobs on "
                    f"{best['system']} slots={total_slots} rho={rho:g}"
                )
            rows.append(best)
    return rows


def _aggregate(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_seconds"] for r in rows)
    return {
        "total_events": total_events,
        "total_wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke grid"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        metavar="N",
        help="timed repetitions per point; best wall-clock wins (default 2)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "output JSON path (default: BENCH_serving.json for --quick, "
            "BENCH_serving.full.json otherwise)"
        ),
    )
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_benchmark(grid, max(args.repeats, 1))
    aggregate = _aggregate(rows)
    per_system = {
        system: _aggregate([r for r in rows if r["system"] == system])
        for system in sorted({r["system"] for r in rows})
    }

    print_table(
        "Open-loop serving throughput: events/sec with windowed metrics "
        f"armed ({'quick' if args.quick else 'full'} grid)",
        (
            "system",
            "slots",
            "rho",
            "jobs",
            "measured",
            "events",
            "wall s",
            "events/s",
        ),
        [
            (
                r["system"],
                r["total_slots"],
                r["rho"],
                r["num_jobs"],
                r["measured_jobs"],
                r["events"],
                r["wall_seconds"],
                r["events_per_sec"],
            )
            for r in rows
        ],
    )
    for system in sorted(per_system):
        print(
            f"{system}: {per_system[system]['events_per_sec']:,.0f} "
            f"events/sec aggregate"
        )

    payload = {
        "quick": args.quick,
        "planes": list(PLANES),
        "regime": {
            "warmup": WARMUP,
            "horizon": HORIZON,
            "cooldown": COOLDOWN,
            "window": WINDOW,
        },
        "repeats": max(args.repeats, 1),
        "rows": rows,
        "aggregate": aggregate,
        "per_system": per_system,
    }
    if args.output:
        from _tables import BENCH_SCHEMA_VERSION
        import json

        out = Path(args.output)
        doc = {
            "benchmark": "serving",
            "schema_version": BENCH_SCHEMA_VERSION,
            **payload,
        }
        out.write_text(json.dumps(doc, indent=2) + "\n")
    elif args.quick:
        out = write_bench_json("serving", payload)
    else:
        out = write_bench_json("serving.full", payload)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
