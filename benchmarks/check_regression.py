"""CI gate: fail when benchmark throughput regresses past a threshold.

Compares a freshly produced benchmark JSON (``bench_scale.py --quick
--output fresh.json``) against the committed baseline
(``BENCH_scale.json``) and exits non-zero when events/sec fell by more
than the allowed factor — by default 2x, loose enough to absorb the
hardware gap between the machine that committed the baseline and a CI
runner, tight enough to catch an accidentally quadratic event loop.
A baseline grid point (or per-system aggregate) missing from the fresh
run is also a violation: the gate must not silently lose coverage when
the benchmark grid or system axes change without a baseline refresh.
So is a baseline rate of zero or below — a corrupt baseline must fail
the gate, not neuter it.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_scale.json --current fresh.json [--max-slowdown 2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple


def _load(path: Path) -> Dict[str, Any]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read benchmark JSON {path}: {exc}")
    if not isinstance(doc, dict) or "aggregate" not in doc:
        raise SystemExit(f"{path} is not a bench_scale result document")
    return doc


def _row_key(row: Dict[str, Any]) -> Tuple:
    # Baselines predating the centralized axis have no "system" field;
    # they were all decentralized rows. "mode" distinguishes bench_obs's
    # instrumented rows; plain rows (scale baseline included) omit it,
    # so obs-off rows gate directly against the scale baseline.
    return (
        row.get("system", "decentralized"),
        row.get("total_slots"),
        row.get("num_jobs"),
        row.get("probe_ratio"),
        row.get("mode"),
    )


def check(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    max_slowdown: float,
) -> int:
    """Print a comparison and return the number of violations."""
    violations = 0

    def compare(label: str, base_rate: float, cur_rate: float) -> None:
        nonlocal violations
        if base_rate <= 0:
            # A zero/negative baseline is a corrupt or hand-edited
            # document; silently skipping it would let any regression
            # through. Fail the gate and demand a baseline refresh.
            print(
                f"  {label}: INVALID BASELINE rate {base_rate:g} "
                f"(must be > 0 — regenerate the baseline)"
            )
            violations += 1
            return
        ratio = cur_rate / base_rate
        verdict = "ok"
        if cur_rate * max_slowdown < base_rate:
            verdict = f"REGRESSION (> {max_slowdown:g}x slower)"
            violations += 1
        print(
            f"  {label}: baseline {base_rate:,.0f} ev/s, "
            f"current {cur_rate:,.0f} ev/s ({ratio:.2f}x) — {verdict}"
        )

    compare(
        "aggregate",
        float(baseline["aggregate"].get("events_per_sec", 0.0)),
        float(current["aggregate"].get("events_per_sec", 0.0)),
    )
    base_per_system = baseline.get("per_system", {})
    current_per_system = current.get("per_system", {})
    for system in sorted(base_per_system):
        if system not in current_per_system:
            # A gate that silently loses coverage is worse than a slow
            # row: a baseline axis must never vanish from the fresh run.
            print(f"  {system} aggregate: MISSING from current run")
            violations += 1
            continue
        compare(
            f"{system} aggregate",
            float(base_per_system[system].get("events_per_sec", 0.0)),
            float(current_per_system[system].get("events_per_sec", 0.0)),
        )

    def row_label(key: Tuple) -> str:
        system, slots, jobs, d, mode = key
        label = f"{system} slots={slots} jobs={jobs}"
        if d is not None:
            label += f" d={d:g}"
        if mode is not None:
            label += f" mode={mode}"
        return label

    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    current_keys = set()
    for row in current.get("rows", []):
        key = _row_key(row)
        current_keys.add(key)
        base = base_rows.get(key)
        if base is None:
            continue  # grid point absent from the baseline: informational
        compare(
            row_label(key),
            float(base.get("events_per_sec", 0.0)),
            float(row.get("events_per_sec", 0.0)),
        )
    for key in base_rows:
        if key not in current_keys:
            print(f"  {row_label(key)}: MISSING from current run")
            violations += 1
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_scale.json",
        metavar="PATH",
        help="committed baseline JSON (default: BENCH_scale.json)",
    )
    parser.add_argument(
        "--current",
        required=True,
        metavar="PATH",
        help="freshly produced benchmark JSON to validate",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        metavar="F",
        help="fail when events/sec drops by more than this factor "
        "(default: 2.0)",
    )
    args = parser.parse_args(argv)
    if args.max_slowdown <= 0:
        parser.error("--max-slowdown must be positive")

    baseline = _load(Path(args.baseline))
    current = _load(Path(args.current))
    print(
        f"checking {args.current} against {args.baseline} "
        f"(allowed slowdown: {args.max_slowdown:g}x)"
    )
    violations = check(baseline, current, args.max_slowdown)
    if violations:
        print(f"\n{violations} benchmark regression(s) detected", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
