"""Benchmark: Figure 11 — the probe-ratio sweep."""

from _tables import report_table

from repro.experiments.figures import fig11_probe_ratio
from _runner import RUNNER


def test_bench_fig11(benchmark):
    out = benchmark.pedantic(
        lambda: fig11_probe_ratio(
            probe_ratios=(2.0, 3.0, 4.0, 5.0),
            utilizations=(0.7,),
            num_jobs=110,
            total_slots=300,
            runner=RUNNER,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (util, ratio, gain)
        for util, inner in out.items()
        for ratio, gain in sorted(inner.items())
    ]
    report_table(
        "fig11",
        "Fig 11: Hopper's gain vs Sparrow-SRPT by probe ratio "
        "(paper: gains increase up to ratio ~4)",
        ("utilization", "probe ratio", "reduction %"),
        rows,
    )
    gains = out[0.7]
    # probe ratio 4 performs at least as well as 2 (power of many choices)
    assert gains[4.0] >= gains[2.0] - 3.0
    assert max(gains.values()) > 0.0
