"""Benchmark: Figure 6 — decentralized Hopper gains vs utilization, for
Facebook-like and Bing-like workloads."""

import pytest
from _tables import report_table

from repro.experiments.figures import fig6_utilization_gains
from _runner import RUNNER


@pytest.mark.parametrize("profile", ["facebook", "bing"])
def test_bench_fig6(benchmark, profile):
    rows = benchmark.pedantic(
        lambda: fig6_utilization_gains(
            profile_name=profile,
            utilizations=(0.6, 0.8, 0.9),
            num_jobs=130,
            total_slots=400,
            runner=RUNNER,
        ),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig6",
        f"Fig 6 ({profile}): reduction (%) in avg job duration "
        "(paper: 50-60% at 60% util falling to <20% at >=80%)",
        ("utilization", "vs Sparrow", "vs Sparrow-SRPT"),
        [(r.utilization, r.vs_sparrow, r.vs_sparrow_srpt) for r in rows],
    )
    # Shape: Hopper wins against both baselines at every utilization.
    for row in rows:
        assert row.vs_sparrow > 0.0
        assert row.vs_sparrow_srpt > -2.0  # allow sampling noise at worst
    # And wins meaningfully somewhere (double digits at some point).
    assert max(r.vs_sparrow for r in rows) > 10.0
