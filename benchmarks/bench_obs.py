"""Observability overhead benchmark: tracer-off vs tracer-on throughput.

Runs the scale benchmark's quick grid on both system axes twice — once
with observability fully off (the production default; must stay within
the regression gate of the committed ``BENCH_scale.json`` baseline) and
once with the full ``Obs`` bundle (tracer + counters + timers) — and
reports the relative slowdown. Results land in ``BENCH_obs.json``; its
"off" rows are shaped exactly like ``BENCH_scale.json`` rows (no
``mode`` key) so ``check_regression.py`` can gate them against either
baseline, while "on" rows carry ``"mode": "obs"`` and never match an
off-row key.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick
    PYTHONPATH=src python benchmarks/bench_obs.py --output fresh.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # allow plain `python benchmarks/...`
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from _tables import BENCH_SCHEMA_VERSION, print_table, write_bench_json  # noqa: E402
from bench_scale import (  # noqa: E402
    FULL_GRID,
    PROBE_RATIO,
    QUICK_GRID,
    SYSTEMS,
    UTILIZATION,
    run_once_batch,
    run_once_centralized,
    run_once_decentralized,
)

_RUNNERS = {
    "decentralized": run_once_decentralized,
    "centralized": run_once_centralized,
    "batch": run_once_batch,
}

#: Observability modes measured per grid point. "off" rows intentionally
#: omit the key entirely so their row shape (and check_regression row
#: key) matches BENCH_scale.json rows.
MODES = ("off", "on")


def _run_point(
    system: str, total_slots: int, num_jobs: int, mode: str, repeats: int
) -> Dict[str, Any]:
    """Best-of-``repeats`` for one (system, grid point, mode) cell."""
    from repro.obs import Obs

    run_once = _RUNNERS[system]
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeats):
        # Fresh Obs per repeat: the tracer must not accumulate records
        # (and so allocation pressure) across timed repetitions.
        obs = Obs(trace=True) if mode == "on" else None
        row = run_once(total_slots, num_jobs, obs=obs)
        if mode == "on":
            row["mode"] = "obs"
            row["trace_records"] = len(obs.tracer.records)
        if best is None or row["wall_seconds"] < best["wall_seconds"]:
            best = row
    assert best is not None
    return best


def run_benchmark(
    systems: Sequence[str], grid: Sequence[Tuple[int, int]], repeats: int
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for system in systems:
        for total_slots, num_jobs in grid:
            for mode in MODES:
                rows.append(
                    _run_point(system, total_slots, num_jobs, mode, repeats)
                )
    return rows


def _aggregate(rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_seconds"] for r in rows)
    return {
        "total_events": total_events,
        "total_wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
    }


def _overhead(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Tracer-on slowdown vs tracer-off, overall and per system."""
    off = [r for r in rows if "mode" not in r]
    on = [r for r in rows if r.get("mode") == "obs"]

    def ratio(off_rows, on_rows) -> Optional[float]:
        off_rate = _aggregate(off_rows)["events_per_sec"]
        on_rate = _aggregate(on_rows)["events_per_sec"]
        return off_rate / on_rate if on_rate else None

    summary: Dict[str, Any] = {"overall_slowdown": ratio(off, on)}
    for system in sorted({r["system"] for r in rows}):
        summary[system] = ratio(
            [r for r in off if r["system"] == system],
            [r for r in on if r["system"] == system],
        )
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid (2k and 10k slots, fewer jobs)",
    )
    parser.add_argument(
        "--system",
        choices=(*SYSTEMS, "both"),
        default="both",
        help="which simulator axis to benchmark (default: both = all axes)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions per point; best wall-clock wins (default 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "output JSON path (default: BENCH_obs.json for --quick — the "
            "grid CI gates on — and BENCH_obs.full.json for the full grid)"
        ),
    )
    args = parser.parse_args(argv)

    systems = SYSTEMS if args.system == "both" else (args.system,)
    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_benchmark(systems, grid, max(args.repeats, 1))

    # The gateable aggregate covers tracer-off rows only: that is the
    # path every production run takes, and the one that must stay within
    # noise of the BENCH_scale baseline.
    off_rows = [r for r in rows if "mode" not in r]
    aggregate = _aggregate(off_rows)
    per_system = {
        system: _aggregate(
            [r for r in off_rows if r["system"] == system]
        )
        for system in systems
    }
    overhead = _overhead(rows)

    print_table(
        "Observability overhead: tracer-off vs tracer-on "
        f"({'quick' if args.quick else 'full'} grid, "
        f"decentralized d={PROBE_RATIO:g})",
        ("system", "slots", "jobs", "mode", "events", "wall s", "events/s"),
        [
            (
                r["system"],
                r["total_slots"],
                r["num_jobs"],
                r.get("mode", "off"),
                r["events"],
                r["wall_seconds"],
                r["events_per_sec"],
            )
            for r in rows
        ],
    )
    for system in systems:
        slowdown = overhead.get(system)
        tail = f"{slowdown:.3f}x" if slowdown else "n/a"
        print(
            f"{system}: tracer-off "
            f"{per_system[system]['events_per_sec']:,.0f} events/sec, "
            f"full-obs slowdown {tail}"
        )
    if overhead["overall_slowdown"]:
        print(
            f"\ntracer-off aggregate: {aggregate['events_per_sec']:,.0f} "
            f"events/sec; full-obs slowdown "
            f"{overhead['overall_slowdown']:.3f}x"
        )

    payload = {
        "quick": args.quick,
        "systems": list(systems),
        "probe_ratio": PROBE_RATIO,
        "utilization": UTILIZATION,
        "repeats": max(args.repeats, 1),
        "rows": rows,
        "aggregate": aggregate,
        "per_system": per_system,
        "obs_overhead": overhead,
    }
    if args.output:
        out = Path(args.output)
        doc = {
            "benchmark": "obs",
            "schema_version": BENCH_SCHEMA_VERSION,
            **payload,
        }
        import json

        out.write_text(json.dumps(doc, indent=2) + "\n")
    elif args.quick:
        out = write_bench_json("obs", payload)
    else:
        out = write_bench_json("obs.full", payload)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
