"""Render the committed BENCH_*.json throughput trajectory from git.

Thin argparse wrapper over :mod:`repro.obs.trajectory` (also reachable
as ``python -m repro bench trajectory``), kept under ``benchmarks/`` so
the CI perf-smoke job can invoke it next to the other bench scripts and
upload the Markdown report as a non-blocking artifact.

Usage::

    PYTHONPATH=src python benchmarks/report_trajectory.py
    PYTHONPATH=src python benchmarks/report_trajectory.py \
        --output trajectory.md --names scale,obs
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # allow plain `python benchmarks/...`
    sys.path.insert(0, str(_ROOT / "src"))

from _tables import print_table  # noqa: E402


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs import trajectory as traj

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--names",
        default=",".join(traj.DEFAULT_BENCH_NAMES),
        metavar="N1,N2,...",
        help="comma-separated bench names (default: scale,blacklist,obs)",
    )
    parser.add_argument(
        "--repo-root",
        default=str(_ROOT),
        metavar="DIR",
        help="git repository to read history from (default: repo root)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write a Markdown report to PATH",
    )
    args = parser.parse_args(argv)

    names = [name for name in args.names.split(",") if name]
    try:
        histories = traj.report(names, repo_root=args.repo_root)
    except traj.TrajectoryError as exc:
        # Reporting aid only — never fail CI over a shallow clone.
        print(f"[trajectory] unavailable: {exc}", file=sys.stderr)
        return 0
    for name in names:
        entries = histories[name]
        if not entries:
            print(f"\nBENCH_{name}.json: no committed throughput history")
            continue
        print_table(
            f"BENCH_{name}.json: events/sec across commits",
            ("commit", "date", "subject", "events/sec", "delta"),
            traj.trajectory_rows(entries),
        )
    if args.output:
        Path(args.output).write_text(
            traj.format_markdown(histories) + "\n", encoding="utf-8"
        )
        print(f"\nwrote markdown report to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
