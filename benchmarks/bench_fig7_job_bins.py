"""Benchmark: Figure 7 — gains by job-size bin."""

from _tables import report_table

from repro.experiments.figures import fig7_job_bins


def test_bench_fig7(benchmark):
    out = benchmark.pedantic(
        lambda: fig7_job_bins(num_jobs=180, total_slots=400),
        rounds=1,
        iterations=1,
    )
    report_table(
        "fig7",
        "Fig 7: reduction (%) by job size bin vs Sparrow-SRPT "
        "(paper: small jobs 18-32%, large jobs >50%)",
        ("bin (tasks)", "reduction %"),
        list(out.items()),
    )
    assert out["overall"] > 0.0
    # Large jobs benefit at least as much as the overall population
    # (the baseline already favours small jobs).
    bins = {k: v for k, v in out.items() if k != "overall"}
    if len(bins) >= 2:
        labels = list(bins)
        assert bins[labels[-1]] >= min(bins.values())
