"""Benchmark: Figure 3 — the sharp threshold (knee) at 2/beta slots per
remaining task.

Fig. 3 now runs as a ``single_job`` study through the shared sweep
runner, so its (norm x repetition) grid parallelizes and caches like
every other figure."""

from _runner import RUNNER
from _tables import report_table

from repro.core.virtual_size import threshold_multiplier
from repro.experiments.figures import fig3_threshold, knee_position


def _run(beta):
    return fig3_threshold(
        beta=beta,
        num_tasks=120,
        normalized_slots=(0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5),
        repetitions=8,
        runner=RUNNER,
    )


def test_bench_fig3_beta_14(benchmark):
    curve = benchmark.pedantic(_run, args=(1.4,), rounds=1, iterations=1)
    report_table(
        "fig3",
        "Fig 3a (beta=1.4): completion vs normalized slots "
        f"(paper knee at {threshold_multiplier(1.4):.2f})",
        ("slots/tasks", "norm. completion"),
        curve,
    )
    knee = knee_position(curve)
    # The marginal value of a slot collapses near 2/beta ~ 1.43.
    assert 0.9 <= knee <= 2.0
    # Steep improvement before the knee: >= 20% drop from 0.6x to 1.2x.
    head = dict(curve)
    assert head[0.6] - head[1.2] >= 0.2
    # Far side of the knee is flat: little change beyond 1.8x.
    tail = [v for x, v in curve if x >= 1.8]
    assert max(tail) - min(tail) < 0.15


def test_bench_fig3_beta_16(benchmark):
    curve = benchmark.pedantic(_run, args=(1.6,), rounds=1, iterations=1)
    report_table(
        "fig3",
        "Fig 3b (beta=1.6): completion vs normalized slots "
        f"(paper knee at {threshold_multiplier(1.6):.2f})",
        ("slots/tasks", "norm. completion"),
        curve,
    )
    knee = knee_position(curve)
    assert 0.8 <= knee <= 1.8
    head = dict(curve)
    assert head[0.6] - head[1.2] >= 0.2
    # Lighter tail: the curve flattens beyond ~1.6.
    tail = [v for x, v in curve if x >= 1.8]
    assert max(tail) - min(tail) < 0.15
