"""Differential and property tests for the incremental allocation engine.

The engine (:mod:`repro.core.incremental`) replaces the per-event
from-scratch state rebuild / re-sort / re-solve with delta-maintained
caches, under the hard constraint that replay output stays
byte-identical (every golden study digest pins it). These tests attack
that constraint from three sides:

* **differential** — the ordered/closed-form solves against an
  independent straight-line reimplementation of Pseudocode 1 (with the
  literal round-robin remainder loop) over randomized state sets;
* **property** — a full simulation stepped one event at a time, with
  arrivals, completions, speculation races, machine eviction, and
  probation reinstatement, asserting after *every* event that the
  incremental caches match the from-scratch builders;
* **behavioral identity** — the tracked-set speculation preemption sweep
  against the old all-jobs sweep on a straggler-heavy replay.
"""

import math
import random

import pytest

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.policies import FairPolicy, HopperPolicy, SRPTPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.cluster.cluster import Cluster
from repro.cluster.policy import StrikeBlacklistPolicy
from repro.core.allocation import (
    JobAllocationState,
    hopper_allocation,
    hopper_allocation_ordered,
    srpt_allocation,
    srpt_allocation_ordered,
)
from repro.core.fairness import fairness_floors
from repro.core.incremental import IncrementalAllocator
from repro.experiments.harness import WorkloadSpec, build_trace
from repro.simulation.rng import RandomSource
from repro.speculation import LATE
from repro.stragglers.model import (
    MachineCorrelatedStragglerModel,
    ParetoRedrawStragglerModel,
)
from repro.workload.generator import FACEBOOK_PROFILE


# -- reference implementation (independent port of Pseudocode 1) -------------


def _ref_distribute(alloc, leftover, order):
    """The literal round-robin remainder loop the closed form replaced."""
    progress = True
    while leftover > 0 and progress:
        progress = False
        for job in order:
            if leftover <= 0:
                break
            if alloc[job.job_id] < job.cap:
                alloc[job.job_id] += 1
                leftover -= 1
                progress = True
    return leftover


def _ref_hopper(jobs, total_slots, epsilon=1.0, force_regime=None):
    """Straight-line Pseudocode 1: no shortcut, loop-based remainder."""
    active = [j for j in jobs if j.remaining_tasks > 0]
    if not active or total_slots == 0:
        return {j.job_id: 0 for j in active}
    floors = fairness_floors(active, total_slots, epsilon)
    alloc = {j.job_id: min(floors[j.job_id], j.cap) for j in active}
    leftover = total_slots - sum(alloc.values())
    total_virtual = sum(j.virtual_size for j in active)
    ascending = sorted(active, key=lambda j: (j.order_key, j.job_id))
    if force_regime == "constrained":
        constrained = True
    elif force_regime == "rich":
        constrained = False
    else:
        constrained = total_slots < total_virtual
    if constrained:
        for job in ascending:
            if leftover <= 0:
                break
            target = min(int(job.virtual_size), job.cap)
            give = min(leftover, max(0, target - alloc[job.job_id]))
            alloc[job.job_id] += give
            leftover -= give
        _ref_distribute(alloc, leftover, ascending)
    else:
        if total_virtual <= 0:
            _ref_distribute(alloc, leftover, ascending)
            return alloc
        shares = {
            j.job_id: total_slots * j.virtual_size / total_virtual
            for j in active
        }
        for job in ascending:
            if leftover <= 0:
                break
            target = min(int(shares[job.job_id]), job.cap)
            give = min(leftover, max(0, target - alloc[job.job_id]))
            alloc[job.job_id] += give
            leftover -= give
        frac_order = sorted(
            active,
            key=lambda j: (shares[j.job_id] - int(shares[j.job_id])),
            reverse=True,
        )
        _ref_distribute(alloc, leftover, frac_order)
    return alloc


def _ref_srpt(jobs, total_slots, best_effort_speculation=True):
    active = [j for j in jobs if j.remaining_tasks > 0]
    ascending = sorted(active, key=lambda j: (j.remaining_tasks, j.job_id))
    alloc = {j.job_id: 0 for j in active}
    leftover = total_slots
    for job in ascending:
        give = min(leftover, job.remaining_tasks)
        alloc[job.job_id] = give
        leftover -= give
        if leftover <= 0:
            break
    if best_effort_speculation and leftover > 0:
        _ref_distribute(alloc, leftover, ascending)
    return alloc


def _random_states(rng, n, with_dags=True):
    states = []
    for job_id in range(n):
        remaining = rng.randint(0, 40)
        vsize = remaining * rng.uniform(0.5, 3.0)
        priority = None
        if with_dags and rng.random() < 0.3:
            priority = vsize * rng.uniform(1.0, 2.0)
        max_useful = None
        if rng.random() < 0.3:
            max_useful = rng.randint(0, 3 * remaining + 1)
        states.append(
            JobAllocationState(
                job_id=job_id,
                virtual_size=vsize,
                remaining_tasks=remaining,
                weight=rng.choice([1.0, 1.0, 2.0, 0.5]),
                priority_size=priority,
                max_useful_slots=max_useful,
            )
        )
    return states


# -- differential: solves vs the reference ----------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_hopper_matches_reference_on_random_states(seed):
    rng = random.Random(seed)
    for trial in range(25):
        states = _random_states(rng, rng.randint(0, 12))
        total = sum(s.remaining_tasks for s in states)
        # Slot counts spanning starved -> everyone-capped (shortcut).
        for slots in (0, 1, total // 2, total, 4 * total + 7):
            for eps in (1.0, 0.1, 0.0):
                for regime in (None, "constrained", "rich"):
                    got = hopper_allocation(
                        states, slots, epsilon=eps, force_regime=regime
                    )
                    want = _ref_hopper(
                        states, slots, epsilon=eps, force_regime=regime
                    )
                    assert got == want, (seed, trial, slots, eps, regime)


@pytest.mark.parametrize("seed", range(4))
def test_srpt_matches_reference_on_random_states(seed):
    rng = random.Random(100 + seed)
    for _ in range(25):
        states = _random_states(rng, rng.randint(0, 12), with_dags=False)
        total = sum(s.remaining_tasks for s in states)
        for slots in (0, 1, total // 2, total, 3 * total + 5):
            for best_effort in (True, False):
                got = srpt_allocation(
                    states, slots, best_effort_speculation=best_effort
                )
                want = _ref_srpt(
                    states, slots, best_effort_speculation=best_effort
                )
                assert got == want


def test_ordered_solves_accept_precomputed_sums_and_floors():
    rng = random.Random(7)
    states = _random_states(rng, 9)
    active = [s for s in states if s.remaining_tasks > 0]
    ascending = sorted(active, key=lambda j: (j.order_key, j.job_id))
    slots = max(1, sum(s.remaining_tasks for s in active) // 2)
    base, regime = hopper_allocation_ordered(
        active, ascending, slots, epsilon=0.1
    )
    precomp, regime2 = hopper_allocation_ordered(
        active,
        ascending,
        slots,
        epsilon=0.1,
        total_virtual=sum(s.virtual_size for s in active),
        floors=fairness_floors(active, slots, 0.1),
    )
    assert base == precomp and regime == regime2
    srpt_asc = sorted(active, key=lambda j: (j.remaining_tasks, j.job_id))
    assert srpt_allocation_ordered(active, srpt_asc, slots) == srpt_allocation(
        active, slots
    )


def test_everyone_capped_shortcut_returns_caps():
    states = [
        JobAllocationState(job_id=i, virtual_size=4.0, remaining_tasks=2)
        for i in range(5)
    ]
    slots = sum(s.cap for s in states) + 3
    alloc = hopper_allocation(states, slots, epsilon=0.1)
    assert alloc == {s.job_id: s.cap for s in states}
    assert alloc == _ref_hopper(states, slots, epsilon=0.1)


# -- allocator unit tests ----------------------------------------------------


def _state(job_id, vsize, remaining, weight=1.0):
    return JobAllocationState(
        job_id=job_id,
        virtual_size=vsize,
        remaining_tasks=remaining,
        weight=weight,
    )


def test_allocator_tracks_insertion_and_sorted_orders():
    rng = random.Random(3)
    for policy in (HopperPolicy(epsilon=0.1), SRPTPolicy(), FairPolicy()):
        alloc = IncrementalAllocator(policy)
        live = {}  # job_id -> state, insertion ordered (the reference)
        next_id = 0
        for _ in range(400):
            op = rng.random()
            if op < 0.35 or not live:
                alloc.reserve(next_id)
                state = _state(
                    next_id, rng.uniform(0.0, 50.0), rng.randint(1, 30)
                )
                alloc.upsert(state)
                live[next_id] = state
                next_id += 1
            elif op < 0.75:
                job_id = rng.choice(list(live))
                state = _state(
                    job_id, rng.uniform(0.0, 50.0), rng.randint(1, 30)
                )
                alloc.upsert(state)
                live[job_id] = state
            else:
                job_id = rng.choice(list(live))
                alloc.remove(job_id)
                del live[job_id]
            expected = list(live.values())
            assert alloc.states() == expected
            assert alloc.ordered() == sorted(expected, key=policy.sort_key)
            slots = rng.choice([0, 5, 50, 500])
            assert alloc.allocate(slots) == policy.allocate(expected, slots)


def test_allocator_reserve_fixes_insertion_position():
    alloc = IncrementalAllocator(HopperPolicy(epsilon=0.1))
    alloc.reserve(0)
    alloc.reserve(1)  # reserved before 0's state ever materializes
    alloc.upsert(_state(1, 5.0, 5))
    alloc.upsert(_state(0, 9.0, 9))
    # Insertion order is reservation order, not upsert order.
    assert [s.job_id for s in alloc.states()] == [0, 1]


def test_allocator_upsert_noop_keeps_targets_memo():
    alloc = IncrementalAllocator(HopperPolicy(epsilon=0.1))
    alloc.reserve(0)
    alloc.upsert(_state(0, 5.0, 5))
    before = alloc.version
    targets = alloc.allocate(10)
    assert alloc.upsert(_state(0, 5.0, 5)) is False
    assert alloc.version == before
    assert alloc.allocate(10) is targets  # memo hit: identical object
    assert alloc.allocate(11) is not targets  # slot change busts it


def test_allocator_regime_flip_matches_full_solve():
    policy = HopperPolicy(epsilon=0.1)
    alloc = IncrementalAllocator(policy)
    states = [_state(i, 10.0, 10) for i in range(4)]
    for s in states:
        alloc.reserve(s.job_id)
        alloc.upsert(s)
    # Rich (slots >> sum of virtual sizes), then constrained, then back.
    for slots in (500, 12, 500, 12):
        assert alloc.allocate(slots) == policy.allocate(states, slots)
    assert alloc.last_regime == "constrained"


# -- property: event-stepped simulation vs from-scratch builders -------------


_SPEC = WorkloadSpec(
    profile=FACEBOOK_PROFILE,
    num_jobs=24,
    utilization=0.7,
    total_slots=96,
    seed=11,
)


def _make_sim(policy, blacklist=None, seed=11):
    num_machines = _SPEC.total_slots // 4
    return CentralizedSimulator(
        cluster=Cluster(num_machines=num_machines, slots_per_machine=4),
        policy=policy,
        speculation=lambda: LATE(),
        trace=build_trace(_SPEC).fresh_copy(),
        straggler_model=MachineCorrelatedStragglerModel(
            num_machines=num_machines
        ),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=_SPEC.profile.beta,
        ),
        random_source=RandomSource(seed=seed),
        blacklist_policy=blacklist,
    )


def _step_and_check(sim):
    """Run one replay one event at a time, checking every cache against
    its from-scratch reference after every single event."""
    sim.cluster.reset()
    sim.sim.schedule_many(
        (
            (job.arrival_time, sim._on_job_arrival, (job,))
            for job in sim.trace
        ),
        absolute=True,
    )
    events = 0
    while sim.sim.pending_events:
        sim.sim.run(max_events=1)
        events += 1
        expected = sim._allocation_states()
        assert sim._refresh_allocation_states() == expected
        assert sim._alloc.states() == expected
        assert sim._alloc.ordered() == sim.policy.dispatch_order(expected)
        spec_jobs = {
            job_id
            for job_id, jr in sim._jobs.items()
            if jr.running_speculative > 0
        }
        assert sim._spec_job_ids == spec_jobs
        if expected:
            assert sim._alloc.allocate(sim._total_slots) == sim.policy.allocate(
                expected, sim._total_slots
            )
    assert events > 200  # the interleaving actually exercised something
    sim._finalize_diagnostics()
    return sim.metrics.result


@pytest.mark.parametrize(
    "policy_factory",
    [
        lambda: HopperPolicy(epsilon=0.1),
        lambda: SRPTPolicy(),
        lambda: FairPolicy(),
    ],
    ids=["hopper", "srpt", "fair"],
)
def test_incremental_caches_match_from_scratch_every_event(policy_factory):
    # Eviction (strikes) + probation reinstatement interleave with
    # arrivals, completions, and speculation races — every event class
    # that can invalidate the caches.
    blacklist = StrikeBlacklistPolicy(
        num_machines=_SPEC.total_slots // 4,
        strike_threshold=2,
        strike_multiplier=2.0,
        probation=30.0,
        eviction_cap=0.3,
    )
    probed = _step_and_check(_make_sim(policy_factory(), blacklist))
    # Guard against vacuous coverage: the run must actually evict (and,
    # with finite probation, reinstate) machines.
    assert len(blacklist.evictions) > 0

    # The probing itself must not perturb the replay: a plain run of the
    # identical configuration lands on the same trajectory.
    blacklist2 = StrikeBlacklistPolicy(
        num_machines=_SPEC.total_slots // 4,
        strike_threshold=2,
        strike_multiplier=2.0,
        probation=30.0,
        eviction_cap=0.3,
    )
    plain = _make_sim(policy_factory(), blacklist2).run()
    assert plain.num_jobs == probed.num_jobs
    assert plain.mean_job_duration == probed.mean_job_duration
    assert plain.killed_copies == probed.killed_copies
    assert plain.wasted_slot_time == probed.wasted_slot_time


# -- behavioral identity: tracked-set speculation preemption -----------------


class _FullSweepSimulator(CentralizedSimulator):
    """The pre-optimization preemption sweep: every job, arrival order."""

    __slots__ = ()

    def _preempt_excess_speculation(self, targets):
        now = self.sim.now
        for job_id, jr in list(self._jobs.items()):
            target = targets.get(job_id, 0)
            excess = jr.running_copies - target
            if excess <= 0 or jr.running_speculative <= 0:
                continue
            victims = jr.view.live_speculative_copies()
            victims.sort(key=lambda c: c.elapsed(now))
            for victim in victims[: min(excess, len(victims))]:
                self._kill_copy(victim, jr)


def _preemption_run(cls):
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=30,
        utilization=0.9,  # pressure: targets shrink, preemption fires
        total_slots=64,
        seed=5,
    )
    sim = cls(
        cluster=Cluster(num_machines=16, slots_per_machine=4),
        policy=HopperPolicy(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=build_trace(spec).fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(beta=1.15),
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=spec.profile.beta,
        ),
        random_source=RandomSource(seed=5),
    )
    return sim.run()


def test_spec_preemption_tracked_set_matches_full_sweep():
    fast = _preemption_run(CentralizedSimulator)
    slow = _preemption_run(_FullSweepSimulator)
    # The run must actually preempt for the comparison to mean anything.
    assert fast.killed_copies > 0
    assert fast.killed_copies == slow.killed_copies
    assert fast.wasted_slot_time == slow.wasted_slot_time
    assert fast.num_jobs == slow.num_jobs
    assert [j.duration for j in fast.jobs] == [j.duration for j in slow.jobs]


def test_shortcut_regime_consistent_with_virtual_sum():
    # The shortcut reports "rich" — verify that is the regime the full
    # test would pick whenever caps cover virtual sizes, which the
    # simulator guarantees (max_useful = max(ceil(vsize), k*remaining)).
    # With an arbitrary cap below the virtual size the label could
    # differ, but the allocation is all-caps either way — that case is
    # pinned by the reference differential above.
    rng = random.Random(13)
    for _ in range(50):
        states = [
            s
            for s in _random_states(rng, rng.randint(1, 10))
            if s.remaining_tasks > 0
        ]
        states = [
            JobAllocationState(
                job_id=s.job_id,
                virtual_size=s.virtual_size,
                remaining_tasks=s.remaining_tasks,
                weight=s.weight,
                priority_size=s.priority_size,
                max_useful_slots=max(
                    math.ceil(s.virtual_size), s.max_useful_slots or 0
                ),
            )
            for s in states
        ]
        active = states
        if not active:
            continue
        cap_sum = sum(s.cap for s in active)
        slots = cap_sum + rng.randint(0, 5)
        vsum = sum(s.virtual_size for s in active)
        assert vsum <= cap_sum <= slots  # cap >= ceil(vsize) per job
        ascending = sorted(active, key=lambda j: (j.order_key, j.job_id))
        alloc, regime = hopper_allocation_ordered(
            active, ascending, slots, epsilon=0.1
        )
        assert regime == "rich"
        assert not (slots < vsum)
        assert alloc == {s.job_id: s.cap for s in active}


def test_caps_default_covers_virtual_size():
    # The shortcut's regime claim rests on cap >= virtual_size.
    rng = random.Random(17)
    for _ in range(200):
        remaining = rng.randint(1, 50)
        s = JobAllocationState(
            job_id=0,
            virtual_size=remaining * rng.uniform(0.0, 3.0),
            remaining_tasks=remaining,
        )
        assert s.cap >= math.ceil(s.virtual_size) or s.cap >= s.virtual_size
