"""Golden-digest equivalence tests for the optimized hot path.

The scale-out work (tuple-keyed engine heap, tombstone compaction,
batched control-message delivery, indexed request purging, incremental
speculation-rate bookkeeping, cached alpha/median estimators) is only
admissible because it is *semantics-preserving*: every study must
reproduce the seed engine's :class:`SimulationResult`s byte-for-byte.

The digests below were captured on the pre-optimization engine (commit
``1b6c0ec``) by serializing every result of each registered study's
quick grid at its first default seed and hashing the canonical JSON.
Any drift — one extra RNG draw, one reordered event, one changed float
operation — changes a digest and fails the matching test.

``scale`` (born in this PR) is pinned at its first-ever output, and the
RunSpec content digests of the new scale-study cells are pinned so the
on-disk result cache stays addressable.
"""

import hashlib
import json

import pytest

from repro import registry
from repro.metrics.serialize import result_to_dict
from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.runner import SweepRunner

#: study name -> sha256 of the canonical JSON of its quick-grid results
#: at the study's first default seed (captured on the seed engine;
#: fig7/fig8a share a digest because their quick grids coincide).
GOLDEN_STUDY_DIGESTS = {
    "fig3": "d1b1af574f738dd3c5918c527d51b3b677cad5ad96f84acb7c21781c646c9a33",
    "fig5": "be9fbe69633df9dde979bb914713b02bc239cea4cc391a45889d94fac927f1d0",
    "fig5a": "254a42109cbc420421c82ba9567e568447087c8ab3d0ca2300965ab10ed27385",
    "fig5b": "bdf3af695c88efe81f6aa38e47e4092a57f1da005f2f93ac40efa5532975962f",
    "fig6": "6a4da648d374089edbc5e79b572320b1b330020910523364da481b4261a12a67",
    "fig7": "ccb3a964625ffd9c0c0ffaf71da692197d01fae130a8dd38afc60fdc1f121e94",
    "fig8a": "ccb3a964625ffd9c0c0ffaf71da692197d01fae130a8dd38afc60fdc1f121e94",
    "fig8b": "35864a6c89ca373ca3e862a3e1556feb134c91e275d33c8e11ead4b7effda994",
    "fig9": "e43470923382d41a93e3f4b57d3d7b46b0f15449dd0dc55e319721535d926459",
    "fig10": "2f24735ec5e64cccace70b41e4da2ff412161bc7b9dba6d7c6d9046202fe2368",
    "fig11": "d47b0b39891a6dafc7d01a46320e98baaa729678f75c29b7a1ad935501b5d5f4",
    "fig12": "cd388659c299693d4262425bb77ed0f91a5594b721b16c1b98c36126ced5c067",
    "fig13": "11e2da345712de2b4e129baea8b1dfde5bfd9f66a3bedbd1d921e41dfaccaaf8",
    "headline": "20cf6ac1b300cecd0db1d3d428abf97bf4126a8525af6787b0897b883b9c6f3b",
    # Born in PR 3: pinned at its first output (not a seed-engine
    # digest — there was no scale study to run on the seed engine).
    # Its quick grid predates the centralized axis and is unchanged by
    # it, so this digest also proves the shared-runtime rebuild of the
    # simulators is bit-identical.
    "scale": "e463242662203ec805f73087544335415cee37234cea640c4a7305763f4dbc2a",
    # Born in PR 4 (blacklist study): pinned at its first output.
    "blacklist": (
        "026309fa30580c22d0345d4b9a6236487cbda3d7f3521610c8112fb2c8418456"
    ),
    # Born in PR 5 (strike-driven eviction): pinned at its first output.
    # The eviction-off cells coincide with runs of the policy-free
    # simulators, so this digest also pins the "policy wiring is inert
    # by default" property inside a study that exercises eviction.
    "blacklist_policy": (
        "c87703598e96dc9543a93d15f10c442fbef95c6e5957f2b895d8952ebf3d7842"
    ),
    # Born in PR 7 (open-loop serving regime): pinned at its first
    # output. Serving results carry the schema-3 "serving" section, so
    # this digest also freezes the windowed-metrics layout and the
    # arrival-stream entropy consumption on both planes.
    "steady_state": (
        "0723414c5d0544e45d7b8d6bd2d7965b23a6998a8efc3044adeb99e19e755aca"
    ),
    # Born in PR 8 (batch-mode plane): pinned at its first output. The
    # study crosses the batch plane's round intervals against the
    # per-arrival centralized baseline, so this digest freezes both the
    # round/buffer event ordering and the fact that the baseline cells
    # run the stock centralized entropy stream.
    "batch_rounds": (
        "a01c91fd15f9b2e5ae3e7583ea36f5336ec93a18892aee2aefd0b95a658d6332"
    ),
    # Born in PR 10 (elastic clusters): pinned at its first output. The
    # study crosses mid-run resize amplitude against all three planes,
    # so this digest freezes the resize event ordering, the kill/requeue
    # path on removal, and the membership-delta bookkeeping on growth.
    "elastic": (
        "1f6f0d05632c7b1c84e6c61c9471cdbf5e8c2e357dfb18e7d1f3eb3ad49f527a"
    ),
}


def study_results_digest(name: str, runner: SweepRunner) -> str:
    """Canonical digest of a study's quick grid at its first seed."""
    study = registry.studies().get(name).factory
    result = study.run(seeds=(study.seeds[0],), runner=runner, quick=True)
    payload = json.dumps(
        [
            result_to_dict(r)
            for per_cell in result.results
            for r in per_cell
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_every_registered_study_is_pinned():
    """A new study must add its digest here the day it is born."""
    assert set(registry.studies().names()) == set(GOLDEN_STUDY_DIGESTS)


@pytest.mark.parametrize("name", sorted(GOLDEN_STUDY_DIGESTS))
def test_study_results_match_seed_engine(name):
    runner = SweepRunner(parallel=False)
    assert study_results_digest(name, runner) == GOLDEN_STUDY_DIGESTS[name]


def test_scale_cell_spec_digest_is_pinned():
    """Scale-study cells are cache keys from day one; pin one."""
    spec = RunSpec(
        "decentralized",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=150,
            utilization=0.6,
            total_slots=10000,
        ),
        knobs={"probe_ratio": 4.0},
    )
    assert spec.digest() == (
        "b9e48e2eaf4764e6d62142d1f22d382d54db27b3a500db462fbc995f9d176f94"
    )


def test_scale_centralized_cell_spec_digest_is_pinned():
    """The centralized scale axis (born with the shared-runtime rebuild)
    is cache-addressed from day one; pin its 10k-slot cell."""
    spec = RunSpec(
        "centralized",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=150,
            utilization=0.6,
            total_slots=10000,
        ),
    )
    assert spec.digest() == (
        "1d6946244bb6cf1f96c9ab92ab492a9ac254d6a78323882e6e59e56640b3f5e7"
    )


#: study name -> sha256 over the sorted RunSpec content digests of the
#: study's *centralized* quick-grid cells at its first seed. These are
#: the on-disk cache keys of every centralized study cell: the rebuild
#: of the centralized simulator on the shared runtime core must not
#: shift any of them (results are covered by the study digests above).
GOLDEN_CENTRALIZED_CELL_SPEC_DIGESTS = {
    "batch_rounds": (
        "679103e7ef6960ff289896982cd0f6503d928872af2bd0124b7ec2f539b351dd"
    ),
    "blacklist": "a5379f2aedfb33f6645c4bf1a1b479b96860a833b17de2a58a45a9d9a6858d5a",
    "blacklist_policy": (
        "7df91627788687e8039f47c8af67580a358115097aaf1f315745bd91be942495"
    ),
    "elastic": (
        "7fbbe121963264765506936bb1b7f9a1a83a1084918c3771d17207fa17d4b26a"
    ),
    "fig12": "450224f405c8d86ac81a06d1f366f395e11885ab58bfa7908669ba7f52971d27",
    "fig13": "45153b1fe23ce85bcf404a63343ee9d4a4fd1c44ab8dc1a322f82893d759f4e2",
    "fig5": "397af2530efd1bb7e3e1e78267bb8cff72611deae05f7e495f6be7edef719540",
    "fig5a": "8cad4f6088eabe395d25c1cb373c9ced3a1f8d40226897b0431640ab9c1e5a86",
    "fig5b": "8cad4f6088eabe395d25c1cb373c9ced3a1f8d40226897b0431640ab9c1e5a86",
    "headline": "92b09f9bea7139bbef8524e7f67d94e75e3084f34949549dfe1c9e7546b3d1b2",
}


def _centralized_cell_spec_digest(name: str) -> str:
    study = registry.studies().get(name).factory
    digests = sorted(
        spec.digest()
        for c in study.cells(quick=True)
        for spec in (c.make_spec(study.seeds[0]),)
        if spec.kind == "centralized"
    )
    payload = json.dumps(digests)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_every_study_with_centralized_cells_is_pinned():
    """A study that gains (or loses) centralized cells must update the
    pin table — centralized cells are cache keys like any other."""
    with_centralized = {
        name
        for name in registry.studies().names()
        for study in (registry.STUDIES.get(name).factory,)
        if any(
            c.make_spec(study.seeds[0]).kind == "centralized"
            for c in study.cells(quick=True)
        )
    }
    assert with_centralized == set(GOLDEN_CENTRALIZED_CELL_SPEC_DIGESTS)


@pytest.mark.parametrize(
    "name", sorted(GOLDEN_CENTRALIZED_CELL_SPEC_DIGESTS)
)
def test_centralized_cell_spec_digests_match(name):
    assert (
        _centralized_cell_spec_digest(name)
        == GOLDEN_CENTRALIZED_CELL_SPEC_DIGESTS[name]
    )


def _result_payload(results) -> str:
    return json.dumps(
        [result_to_dict(r) for r in results],
        sort_keys=True,
        separators=(",", ":"),
    )


@pytest.mark.parametrize("kind", ["centralized", "decentralized"])
def test_explicit_none_blacklist_policy_is_byte_identical(kind):
    """Differential: blacklist_policy="none" must not perturb a replay.

    The knob changes the RunSpec digest (it is a real knob) but the
    *results* must be byte-identical to the knob-free run — the policy
    wiring may not consume entropy, reorder events, or touch the
    cluster when no policy is active.
    """
    workload = WorkloadParams(
        profile="facebook", num_jobs=12, utilization=0.6,
        total_slots=60, seed=5,
    )
    bare = RunSpec(kind, "hopper", workload)
    with_none = RunSpec(
        kind, "hopper", workload, knobs={"blacklist_policy": "none"}
    )
    assert bare.digest() != with_none.digest()  # real knob, real cache key
    assert _result_payload([bare.execute()]) == _result_payload(
        [with_none.execute()]
    )


@pytest.mark.parametrize(
    "kind", ["centralized", "decentralized", "batch", "serving"]
)
def test_explicit_none_autoscaler_is_byte_identical(kind):
    """Differential: autoscaler="none" must not perturb a replay.

    Same contract as the blacklist knob above, on every spec kind that
    grew the autoscaler family: the knob is a real cache key, but the
    elastic wiring may not consume entropy, reorder events, or touch
    the cluster when no autoscaler is active.
    """
    workload = WorkloadParams(
        profile="facebook", num_jobs=12, utilization=0.6,
        total_slots=60, seed=5,
    )
    base_knobs = {}
    if kind == "serving":
        # Trim the open-loop time layout so the differential stays fast;
        # both sides share it, only the autoscaler knob differs.
        base_knobs = {
            "warmup": 5.0, "horizon": 30.0, "cooldown": 5.0, "window": 5.0
        }
    bare = RunSpec(kind, "hopper", workload, knobs=dict(base_knobs))
    with_none = RunSpec(
        kind, "hopper", workload,
        knobs={**base_knobs, "autoscaler": "none"},
    )
    assert bare.digest() != with_none.digest()  # real knob, real cache key
    assert _result_payload([bare.execute()]) == _result_payload(
        [with_none.execute()]
    )


def test_eviction_improves_machine_correlated_quick_grid():
    """Behavioural differential (the PR's acceptance criterion): on the
    blacklist_policy study's quick grid, strike-driven eviction improves
    mean job completion time over eviction-off under machine-correlated
    stragglers, on BOTH simulator planes."""
    study = registry.studies().get("blacklist_policy").factory
    result = study.run(
        seeds=(study.seeds[0],), runner=SweepRunner(parallel=False), quick=True
    )
    mean_jct = {}
    for cell, per_cell in zip(result.cells, result.results):
        labels = cell.label_dict()
        key = (labels["straggler_model"], labels["eviction"], labels["kind"])
        mean_jct[key] = per_cell[0].mean_job_duration
    for kind in ("centralized", "decentralized"):
        off = mean_jct[("machine-correlated", "none", kind)]
        on = mean_jct[("machine-correlated", "strikes", kind)]
        assert on < off, (
            f"{kind}: eviction-on mean JCT {on} did not improve on "
            f"eviction-off {off}"
        )


def test_scale_quick_grid_covers_ten_thousand_slots():
    """--quick trims the grid, not the regime: >=10k slots stays in."""
    study = registry.studies().get("scale").factory
    cells = study.cells(quick=True)
    sizes = {cell.label_dict()["total_slots"] for cell in cells}
    assert max(sizes) >= 10000
