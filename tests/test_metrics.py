"""Tests for metric collection and cross-run analysis."""

import pytest

from repro.metrics.analysis import (
    gain_cdf,
    mean_duration,
    mean_reduction_percent,
    per_job_gains,
    percentile,
    reduction_by_bin,
    reduction_by_dag_length,
    slowdown_stats,
)
from repro.metrics.collector import JobRecord, MetricsCollector, SimulationResult


def _record(job_id, duration, num_tasks=10, dag_length=1, arrival=0.0):
    return JobRecord(
        job_id=job_id,
        name=f"job-{job_id}",
        num_tasks=num_tasks,
        dag_length=dag_length,
        arrival_time=arrival,
        finish_time=arrival + duration,
    )


def _result(durations, name="x", **kwargs):
    return SimulationResult(
        scheduler_name=name,
        jobs=[_record(i, d, **kwargs) for i, d in enumerate(durations)],
    )


def test_job_record_duration_and_bin():
    record = _record(0, 5.0, num_tasks=200)
    assert record.duration == 5.0
    assert record.size_bin == 2


def test_collector_job_completion():
    collector = MetricsCollector("test")
    collector.record_job_completion(1, "j", 10, 2, 1.0, 4.0)
    assert collector.result.num_jobs == 1
    assert collector.result.mean_job_duration == 3.0
    with pytest.raises(ValueError):
        collector.record_job_completion(2, "j", 10, 2, 5.0, 4.0)


def test_collector_speculation_accounting():
    collector = MetricsCollector("test")
    collector.record_copy_launch(speculative=False, local=True)
    collector.record_copy_launch(speculative=True, local=False)
    collector.record_copy_finished(2.0, speculative_win=True)
    collector.record_copy_killed(1.0)
    result = collector.result
    assert result.total_copies == 2
    assert result.speculative_copies == 1
    assert result.speculative_wins == 1
    assert result.killed_copies == 1
    assert result.speculation_task_fraction == 0.5
    assert result.speculation_resource_fraction == pytest.approx(1.0 / 3.0)
    assert result.data_locality_fraction == 0.5


def test_collector_guideline_and_messages():
    collector = MetricsCollector("test")
    collector.record_guideline_decision(constrained=True)
    collector.record_guideline_decision(constrained=False)
    collector.record_message(3)
    assert collector.result.guideline2_decisions == 1
    assert collector.result.guideline3_decisions == 1
    assert collector.result.messages_sent == 3


def test_empty_result_properties():
    result = SimulationResult(scheduler_name="empty")
    assert result.mean_job_duration == 0.0
    assert result.speculation_task_fraction == 0.0
    assert result.speculation_resource_fraction == 0.0
    assert result.data_locality_fraction == 1.0


def test_mean_duration_and_percentile():
    records = [_record(i, float(i)) for i in range(1, 5)]
    assert mean_duration(records) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_mean_reduction_percent():
    base = _result([10.0, 10.0])
    cand = _result([5.0, 5.0])
    assert mean_reduction_percent(base, cand) == pytest.approx(50.0)
    assert mean_reduction_percent(cand, base) == pytest.approx(-100.0)


def test_per_job_gains_matched_by_id():
    base = _result([10.0, 20.0])
    cand = _result([5.0, 30.0])
    gains = per_job_gains(base, cand)
    assert gains[0] == pytest.approx(50.0)
    assert gains[1] == pytest.approx(-50.0)


def test_gain_cdf_is_monotone():
    base = _result([10.0, 20.0, 30.0, 40.0])
    cand = _result([8.0, 25.0, 15.0, 20.0])
    cdf = gain_cdf(base, cand)
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys[-1] == pytest.approx(1.0)


def test_reduction_by_bin():
    base = SimulationResult(
        "b",
        jobs=[_record(0, 10.0, num_tasks=10), _record(1, 100.0, num_tasks=600)],
    )
    cand = SimulationResult(
        "c",
        jobs=[_record(0, 5.0, num_tasks=10), _record(1, 80.0, num_tasks=600)],
    )
    by_bin = reduction_by_bin(base, cand)
    assert by_bin[0] == pytest.approx(50.0)
    assert by_bin[3] == pytest.approx(20.0)


def test_reduction_by_dag_length():
    base = SimulationResult(
        "b",
        jobs=[_record(0, 10.0, dag_length=1), _record(1, 10.0, dag_length=3)],
    )
    cand = SimulationResult(
        "c",
        jobs=[_record(0, 9.0, dag_length=1), _record(1, 5.0, dag_length=3)],
    )
    by_len = reduction_by_dag_length(base, cand)
    assert by_len[1] == pytest.approx(10.0)
    assert by_len[3] == pytest.approx(50.0)


def test_slowdown_stats():
    fair = _result([10.0, 10.0, 10.0, 10.0])
    cand = _result([9.0, 10.0, 12.0, 15.0])
    fraction, mean_slow, worst = slowdown_stats(fair, cand)
    assert fraction == pytest.approx(0.5)
    assert mean_slow == pytest.approx((20.0 + 50.0) / 2)
    assert worst == pytest.approx(50.0)


def test_slowdown_stats_no_slowdowns():
    fair = _result([10.0, 10.0])
    cand = _result([9.0, 10.0])
    assert slowdown_stats(fair, cand) == (0.0, 0.0, 0.0)
