"""Integration tests for the centralized simulator."""

import pytest

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.policies import FairPolicy, HopperPolicy, SRPTPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.simulation.rng import RandomSource
from repro.speculation import LATE, NoSpeculation
from repro.stragglers.model import (
    NoStragglerModel,
    ParetoRedrawStragglerModel,
)
from repro.workload.generator import SPARK_FACEBOOK_PROFILE, TraceGenerator
from repro.workload.job import make_chain_job, make_single_phase_job
from repro.workload.traces import Trace


def _simulate(
    trace,
    policy=None,
    speculation=None,
    straggler=None,
    config=None,
    slots=8,
    seed=7,
    datastore=None,
    machines=None,
):
    cluster = Cluster(
        num_machines=machines or slots,
        slots_per_machine=slots // (machines or slots) or 1,
    )
    sim = CentralizedSimulator(
        cluster=Cluster(num_machines=slots, slots_per_machine=1)
        if machines is None
        else cluster,
        policy=policy or HopperPolicy(epsilon=1.0),
        speculation=speculation or (lambda: LATE()),
        trace=trace,
        straggler_model=straggler or NoStragglerModel(),
        config=config or CentralizedConfig(epsilon=1.0),
        datastore=datastore,
        random_source=RandomSource(seed=seed),
    )
    return sim, sim.run()


def test_single_job_completes_with_exact_makespan():
    # 4 unit tasks on 4 slots, no stragglers: completes at t = 1.
    job = make_single_phase_job(0, 0.0, [1.0] * 4)
    sim, result = _simulate(Trace(jobs=[job]), slots=4)
    assert result.num_jobs == 1
    assert result.jobs[0].duration == pytest.approx(1.0)


def test_waves_when_slots_are_scarce():
    # 4 unit tasks on 2 slots: two waves -> 2 time units.
    job = make_single_phase_job(0, 0.0, [1.0] * 4)
    sim, result = _simulate(Trace(jobs=[job]), slots=2)
    assert result.jobs[0].duration == pytest.approx(2.0)


def test_all_jobs_complete():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=0),
        max_phase_tasks=30,
    )
    trace = Trace(jobs=gen.generate(20, interarrival_mean=1.0))
    sim, result = _simulate(
        trace.fresh_copy(),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
        slots=20,
    )
    assert result.num_jobs == 20


def test_speculation_beats_no_speculation_with_stragglers():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=1),
        max_phase_tasks=40,
    )
    base_trace = Trace(jobs=gen.generate(25, interarrival_mean=2.0))
    _, with_spec = _simulate(
        base_trace.fresh_copy(),
        straggler=ParetoRedrawStragglerModel(beta=1.2),
        slots=60,
    )
    _, without = _simulate(
        base_trace.fresh_copy(),
        speculation=lambda: NoSpeculation(),
        straggler=ParetoRedrawStragglerModel(beta=1.2),
        slots=60,
    )
    assert with_spec.mean_job_duration < without.mean_job_duration


def test_kill_on_first_finish_accounts_waste():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=2),
        max_phase_tasks=40,
    )
    trace = Trace(jobs=gen.generate(15, interarrival_mean=1.0))
    sim, result = _simulate(
        trace.fresh_copy(),
        straggler=ParetoRedrawStragglerModel(beta=1.3),
        slots=40,
    )
    if result.speculative_copies:
        # every race that completed killed exactly one copy
        assert result.killed_copies > 0
        assert result.wasted_slot_time > 0


def test_no_slot_is_double_booked():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=3),
        max_phase_tasks=50,
    )
    trace = Trace(jobs=gen.generate(15, interarrival_mean=0.5))
    cluster = Cluster(num_machines=10, slots_per_machine=2)
    sim = CentralizedSimulator(
        cluster=cluster,
        policy=HopperPolicy(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(beta=1.4),
        config=CentralizedConfig(),
        random_source=RandomSource(seed=4),
    )
    sim.run()
    # After the run every slot must be free again.
    assert cluster.busy_slots == 0
    for machine in cluster.machines:
        assert machine.busy_slots == 0


def test_dag_phases_respect_pipelining():
    job = make_chain_job(
        0, 0.0, [[1.0] * 4, [1.0] * 2], [4.0, 0.0], slowstart=0.5
    )
    sim, result = _simulate(Trace(jobs=[job]), slots=10)
    phase0 = job.phases[0]
    phase1 = job.phases[1]
    starts = [
        t.finish_time for t in phase1.tasks if t.finish_time is not None
    ]
    assert result.num_jobs == 1
    # downstream tasks exist and finished after upstream started producing
    assert all(s >= 1.0 for s in starts)


def test_budgeted_mode_reserves_slots():
    # One job with 8 tasks, 8 slots, budget 25% -> only 6 original slots,
    # so the job needs two waves even with no stragglers.
    job = make_single_phase_job(0, 0.0, [1.0] * 8)
    config = CentralizedConfig(
        epsilon=1.0,
        speculation_mode=SpeculationMode.BUDGETED,
        budget_fraction=0.25,
    )
    sim, result = _simulate(Trace(jobs=[job]), config=config, slots=8)
    assert result.jobs[0].duration == pytest.approx(2.0)


def test_best_effort_mode_uses_all_slots_for_originals():
    job = make_single_phase_job(0, 0.0, [1.0] * 8)
    config = CentralizedConfig(
        epsilon=1.0, speculation_mode=SpeculationMode.BEST_EFFORT
    )
    sim, result = _simulate(Trace(jobs=[job]), config=config, slots=8)
    assert result.jobs[0].duration == pytest.approx(1.0)


def test_locality_penalty_slows_remote_tasks():
    # Force non-local execution by placing all replicas on machine 0 and
    # keeping it busy... simpler: remote penalty shows up in durations.
    job = make_single_phase_job(
        0, 0.0, [1.0] * 2, preferred=[(0,), (0,)]
    )
    store = DataStore(
        num_machines=2, replicas=1, remote_penalty=2.0,
        random_source=RandomSource(seed=5),
    )
    trace = Trace(jobs=[job])
    cluster = Cluster(num_machines=2, slots_per_machine=1)
    sim = CentralizedSimulator(
        cluster=cluster,
        policy=HopperPolicy(epsilon=1.0),
        speculation=lambda: NoSpeculation(),
        trace=trace,
        straggler_model=NoStragglerModel(),
        config=CentralizedConfig(epsilon=1.0),
        datastore=store,
        random_source=RandomSource(seed=6),
    )
    result = sim.run()
    # Both tasks prefer machine 0; one must run remotely at 2x.
    assert result.jobs[0].duration == pytest.approx(2.0)
    assert result.remote_copies == 1


def test_beta_is_learned_online():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=8),
        max_phase_tasks=60,
    )
    trace = Trace(jobs=gen.generate(30, interarrival_mean=0.5))
    sim, _ = _simulate(
        trace.fresh_copy(),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
        slots=60,
        config=CentralizedConfig(epsilon=1.0, learn_beta=True),
    )
    assert sim.beta_estimator.num_observations > 100
    assert 1.05 <= sim.beta_estimator.beta <= 3.0


def test_results_are_reproducible():
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=9),
        max_phase_tasks=40,
    )
    trace = Trace(jobs=gen.generate(15, interarrival_mean=1.0))

    def run_once():
        _, result = _simulate(
            trace.fresh_copy(),
            straggler=ParetoRedrawStragglerModel(beta=1.4),
            slots=30,
            seed=11,
        )
        return [r.duration for r in result.jobs]

    assert run_once() == run_once()


def test_fair_policy_shares_cluster():
    # Two identical multi-wave jobs under Fair: after the first wave the
    # allocator rebalances to equal shares, so completion times stay
    # within a small factor (the scheduler is non-preemptive, so the
    # first-dispatched job keeps its head start but cannot starve peers).
    job_a = make_single_phase_job(0, 0.0, [1.0] * 16, task_id_start=0)
    job_b = make_single_phase_job(1, 0.0, [1.0] * 16, task_id_start=100)
    trace = Trace(jobs=[job_a, job_b])
    sim, result = _simulate(
        trace, policy=FairPolicy(), slots=8,
        config=CentralizedConfig(epsilon=1.0),
    )
    durations = {r.job_id: r.duration for r in result.jobs}
    assert max(durations.values()) / min(durations.values()) < 2.5
    # total work (32 unit tasks on 8 slots) takes exactly 4 time units
    assert max(durations.values()) == pytest.approx(4.0)


def test_srpt_policy_prioritizes_small_job():
    small = make_single_phase_job(0, 0.0, [1.0] * 2, task_id_start=0)
    big = make_single_phase_job(1, 0.0, [1.0] * 16, task_id_start=100)
    trace = Trace(jobs=[big, small])
    sim, result = _simulate(
        trace, policy=SRPTPolicy(), slots=4,
        config=CentralizedConfig(epsilon=1.0),
    )
    durations = {r.job_id: r.duration for r in result.jobs}
    assert durations[0] < durations[1]


def test_speculation_fraction_in_plausible_range():
    # The paper reports ~25% of tasks being speculative in production;
    # our runs should land in the same order of magnitude (not 0, not 2x).
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=10),
        max_phase_tasks=80,
    )
    trace = Trace(jobs=gen.generate(40, interarrival_mean=0.5))
    _, result = _simulate(
        trace.fresh_copy(),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
        slots=80,
        config=CentralizedConfig(epsilon=1.0),
    )
    assert 0.01 < result.speculation_task_fraction < 0.6
