"""Tests for tasks, phases, jobs, DAGs and pipelining."""

import pytest

from repro.workload.job import Job, make_chain_job, make_single_phase_job
from repro.workload.phase import Phase
from repro.workload.task import Task, TaskState


def _task(task_id=0, job_id=0, phase=0, size=1.0, prefs=()):
    return Task(
        task_id=task_id,
        job_id=job_id,
        phase_index=phase,
        size=size,
        preferred_machines=tuple(prefs),
    )


# -- Task ---------------------------------------------------------------------

def test_task_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        _task(size=0.0)


def test_task_initial_state():
    task = _task()
    assert task.state is TaskState.PENDING
    assert not task.is_finished


def test_task_prefers_any_machine_without_placement():
    task = _task()
    assert task.prefers(0) and task.prefers(99)


def test_task_prefers_only_replica_holders():
    task = _task(prefs=(1, 2))
    assert task.prefers(1)
    assert not task.prefers(3)


def test_task_reset_runtime_state():
    task = _task()
    task.state = TaskState.FINISHED
    task.finish_time = 3.0
    task.completed_by_speculative = True
    task.reset_runtime_state()
    assert task.state is TaskState.PENDING
    assert task.finish_time is None
    assert not task.completed_by_speculative


# -- Phase ---------------------------------------------------------------------

def test_phase_requires_tasks():
    with pytest.raises(ValueError):
        Phase(index=0, tasks=[])


def test_phase_progress_counters():
    phase = Phase(index=0, tasks=[_task(i) for i in range(4)])
    assert phase.remaining_tasks == 4
    phase.mark_task_finished(1.0)
    assert phase.finished_tasks == 1
    assert phase.remaining_tasks == 3
    assert phase.completed_fraction == pytest.approx(0.25)
    assert not phase.is_complete


def test_phase_overfinish_raises():
    phase = Phase(index=0, tasks=[_task(0)])
    phase.mark_task_finished(1.0)
    with pytest.raises(RuntimeError):
        phase.mark_task_finished(1.0)


def test_phase_remaining_work_tracks_sizes():
    tasks = [_task(i, size=float(i + 1)) for i in range(3)]  # 1+2+3 = 6
    phase = Phase(index=0, tasks=tasks)
    assert phase.remaining_work() == pytest.approx(6.0)
    phase.mark_task_finished(2.0)
    assert phase.remaining_work() == pytest.approx(4.0)


def test_phase_remaining_work_prorates_without_size():
    tasks = [_task(i, size=2.0) for i in range(4)]
    phase = Phase(index=0, tasks=tasks)
    phase.mark_task_finished()  # no size given
    assert phase.remaining_work() == pytest.approx(6.0)


def test_phase_mean_task_size():
    tasks = [_task(0, size=1.0), _task(1, size=3.0)]
    phase = Phase(index=0, tasks=tasks)
    assert phase.mean_task_size == pytest.approx(2.0)


def test_phase_remaining_output_data():
    phase = Phase(index=0, tasks=[_task(i) for i in range(4)], output_data=8.0)
    assert phase.remaining_output_data() == pytest.approx(8.0)
    phase.mark_task_finished(1.0)
    assert phase.remaining_output_data() == pytest.approx(6.0)


def test_phase_reset():
    phase = Phase(index=0, tasks=[_task(0, size=2.0)])
    phase.tasks[0].state = TaskState.FINISHED
    phase.mark_task_finished(2.0)
    phase.reset_runtime_state()
    assert phase.remaining_tasks == 1
    assert phase.remaining_work() == pytest.approx(2.0)
    assert phase.tasks[0].state is TaskState.PENDING


def test_phase_validates_slowstart():
    with pytest.raises(ValueError):
        Phase(index=0, tasks=[_task(0)], slowstart=1.5)


# -- Job -----------------------------------------------------------------------

def test_single_phase_job_constructor():
    job = make_single_phase_job(1, 0.0, [1.0, 2.0, 3.0])
    assert job.num_tasks == 3
    assert job.dag_length == 1
    assert job.remaining_tasks() == 3
    assert len(job.runnable_tasks()) == 3


def test_chain_job_constructor_and_dag_length():
    job = make_chain_job(2, 0.0, [[1.0] * 4, [1.0] * 2], [10.0, 0.0])
    assert job.num_phases == 2
    assert job.dag_length == 2
    assert job.phase(1).parents == (0,)
    assert job.phase(0).output_data == 10.0


def test_job_requires_topological_order():
    p0 = Phase(index=0, tasks=[_task(0, phase=0)], parents=(1,))
    p1 = Phase(index=1, tasks=[_task(1, phase=1)])
    with pytest.raises(ValueError):
        Job(job_id=0, arrival_time=0.0, phases=[p0, p1])


def test_job_rejects_duplicate_phase_indices():
    p0 = Phase(index=0, tasks=[_task(0)])
    p1 = Phase(index=0, tasks=[_task(1)])
    with pytest.raises(ValueError):
        Job(job_id=0, arrival_time=0.0, phases=[p0, p1])


def test_pipelining_gates_downstream_phase():
    job = make_chain_job(0, 0.0, [[1.0] * 10, [1.0] * 2], slowstart=0.3)
    downstream = job.phase(1)
    assert not job.phase_is_runnable(downstream)
    for _ in range(3):  # 30% of upstream
        job.phase(0).mark_task_finished(1.0)
    assert job.phase_is_runnable(downstream)


def test_runnable_tasks_excludes_gated_phase():
    job = make_chain_job(0, 0.0, [[1.0] * 4, [1.0] * 2], slowstart=0.5)
    assert len(job.runnable_tasks()) == 4
    for _ in range(2):
        job.phase(0).mark_task_finished(1.0)
    # 2 left upstream + 2 downstream... all unfinished
    assert len(job.runnable_tasks()) == 6


def test_job_completion_flags():
    job = make_single_phase_job(0, 0.0, [1.0])
    assert not job.is_complete
    job.phases[0].tasks[0].state = TaskState.FINISHED
    job.phases[0].mark_task_finished(1.0)
    assert job.is_complete
    assert job.remaining_tasks() == 0


def test_alpha_is_one_for_single_phase():
    job = make_single_phase_job(0, 0.0, [1.0, 1.0])
    assert job.alpha() == 1.0


def test_alpha_ratio_for_chain():
    # upstream work 4, downstream comm 8 -> alpha = 2
    job = make_chain_job(0, 0.0, [[1.0] * 4, [1.0]], [8.0, 0.0])
    assert job.alpha() == pytest.approx(2.0)


def test_alpha_scales_with_network_rate():
    job = make_chain_job(0, 0.0, [[1.0] * 4, [1.0]], [8.0, 0.0])
    assert job.alpha(network_rate=2.0) == pytest.approx(1.0)


def test_downstream_virtual_tasks():
    job = make_chain_job(0, 0.0, [[2.0] * 4, [1.0]], [8.0, 0.0])
    # front mean task size 2, comm 8 -> 4 task-equivalents
    assert job.downstream_virtual_tasks() == pytest.approx(4.0)


def test_job_reset_runtime_state():
    job = make_single_phase_job(0, 0.0, [1.0, 1.0])
    job.finish_time = 9.0
    job.phases[0].tasks[0].state = TaskState.FINISHED
    job.phases[0].mark_task_finished(1.0)
    job.reset_runtime_state()
    assert job.finish_time is None
    assert job.remaining_tasks() == 2


def test_dag_length_bushy():
    phases = [
        Phase(index=0, tasks=[_task(0, phase=0)]),
        Phase(index=1, tasks=[_task(1, phase=1)]),
        Phase(index=2, tasks=[_task(2, phase=2)], parents=(0, 1)),
    ]
    job = Job(job_id=0, arrival_time=0.0, phases=phases)
    assert job.dag_length == 2
    assert job.downstream_of(job.phase(0)) == [job.phase(2)]
