"""Tests for the open-loop serving regime (:mod:`repro.serving`).

Covers the arrival-process family and rho calibration, the lazy job
stream, the windowed steady-state aggregator (against a brute-force
percentile reference and on its truncation boundaries), the schema-3
serialization differential (batch documents must stay byte-identical),
the bounded-state fixes in the alpha estimator, and end-to-end serving
runs on both scheduler planes.
"""

import json
import random

import pytest

from repro.estimation.alpha import AlphaEstimator
from repro.experiments.harness import WorkloadSpec
from repro.metrics.analysis import percentile
from repro.metrics.serialize import (
    dumps_result,
    loads_result,
    result_to_dict,
)
from repro.serving import (
    ARRIVAL_PROCESSES,
    HeavyTailSizeModifier,
    JobStream,
    ServingRegime,
    WindowedAggregator,
    calibrate_arrival_rate,
    estimate_mean_job_work,
    make_arrival_process,
    run_serving,
)
from repro.simulation.rng import RandomSource
from repro.sweep import RunSpec, WorkloadParams
from repro.workload.generator import TraceGenerator, profile_by_name


def _generator(seed: int = 42) -> TraceGenerator:
    return TraceGenerator(
        profile_by_name("spark-facebook"), random_source=RandomSource(seed=seed)
    )


# --------------------------------------------------------------------------
# Arrival processes and calibration
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["poisson", "diurnal", "bursty"])
def test_arrival_processes_hold_the_long_run_mean_rate(name):
    rate = 5.0
    process = make_arrival_process(name, rate, random.Random(11))
    # Long horizon: the MMPP needs many calm/burst cycles to average out.
    horizon, now, count = 20000.0, 0.0, 0
    while True:
        now += process.next_interarrival(now)
        if now >= horizon:
            break
        count += 1
    assert count / horizon == pytest.approx(rate, rel=0.1)


@pytest.mark.parametrize("name", ["poisson", "diurnal", "bursty"])
def test_arrival_processes_are_deterministic_per_seed(name):
    def gaps(seed):
        process = make_arrival_process(name, 3.0, random.Random(seed))
        out, now = [], 0.0
        for _ in range(50):
            gap = process.next_interarrival(now)
            out.append(gap)
            now += gap
        return out

    assert gaps(7) == gaps(7)
    assert gaps(7) != gaps(8)


def test_arrival_process_registry_lists_all_families():
    assert set(ARRIVAL_PROCESSES.names()) >= {"poisson", "diurnal", "bursty"}


def test_arrival_process_parameter_validation():
    with pytest.raises(ValueError):
        make_arrival_process("poisson", 0.0, random.Random(1))
    with pytest.raises(ValueError):
        make_arrival_process("diurnal", 1.0, random.Random(1), amplitude=1.0)
    with pytest.raises(ValueError):
        make_arrival_process("bursty", 1.0, random.Random(1), burst_factor=0.5)


def test_calibrate_arrival_rate_matches_the_rho_formula():
    generator = _generator()
    mean_work = estimate_mean_job_work(generator)
    rate = calibrate_arrival_rate(generator, 160, 0.9)
    assert rate == pytest.approx(0.9 * 160 / mean_work)
    # A heavy-tail multiplier with mean 2 halves the calibrated rate so
    # the *offered* rho stays at the target.
    assert calibrate_arrival_rate(
        generator, 160, 0.9, size_multiplier_mean=2.0
    ) == pytest.approx(rate / 2)


def test_heavy_tail_modifier_scales_whole_jobs():
    job = _generator(seed=5).next_job(0.0)
    before = [phase.remaining_work() for phase in job.phases]
    modifier = HeavyTailSizeModifier(2.0, random.Random(9))
    assert modifier.mean_multiplier == pytest.approx(2.0)
    multiplier = modifier.scale_job(job)
    assert multiplier >= 1.0
    for phase, old in zip(job.phases, before):
        assert phase.remaining_work() == pytest.approx(old * multiplier)
    with pytest.raises(ValueError):
        HeavyTailSizeModifier(1.0, random.Random(9))


def test_job_stream_respects_cap_horizon_and_order():
    stream = JobStream(
        _generator(seed=3),
        make_arrival_process("poisson", 2.0, random.Random(7)),
        horizon=30.0,
        max_jobs=10,
    )
    jobs = list(stream)
    assert 0 < len(jobs) <= 10
    times = [job.arrival_time for job in jobs]
    assert all(t < 30.0 for t in times)
    assert times == sorted(times)


# --------------------------------------------------------------------------
# Windowed aggregator
# --------------------------------------------------------------------------

def test_windowed_percentiles_match_bruteforce_reference():
    regime = ServingRegime(warmup=10.0, horizon=110.0, cooldown=5.0, window=20.0)
    aggregator = WindowedAggregator(regime)
    rng = random.Random(3)
    records = []
    for job_id in range(400):
        arrival = rng.uniform(0.0, 112.0)
        launch = arrival + rng.uniform(0.0, 3.0)
        finish = launch + rng.uniform(0.5, 25.0)
        aggregator.note_launch(job_id, launch)
        aggregator.on_completion(job_id, arrival, finish)
        records.append((arrival, launch, finish))
    doc = aggregator.finalize()

    n = regime.num_windows
    jct = [[] for _ in range(n)]
    qdelay = [[] for _ in range(n)]
    dropped_warmup = dropped_cooldown = 0
    for arrival, launch, finish in records:
        if finish < regime.warmup:
            dropped_warmup += 1
            continue
        if finish >= regime.horizon:
            dropped_cooldown += 1
            continue
        index = min(int((finish - regime.warmup) / regime.window), n - 1)
        jct[index].append(finish - arrival)
        qdelay[index].append(launch - arrival)

    assert doc["dropped_warmup"] == dropped_warmup
    assert doc["dropped_cooldown"] == dropped_cooldown
    assert doc["measured_jobs"] == sum(len(w) for w in jct)
    assert len(doc["windows"]) == n
    quantiles = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
    for index, row in enumerate(doc["windows"]):
        assert row["completions"] == len(jct[index])
        for values, prefix in ((jct[index], "jct"), (qdelay[index], "queueing")):
            for label, q in quantiles:
                got = row[f"{prefix}_{label}"]
                if not values:
                    assert got is None
                else:
                    assert got == pytest.approx(percentile(values, q))
    all_jct = [v for window in jct for v in window]
    for label, q in quantiles:
        assert doc["overall"][f"jct_{label}"] == pytest.approx(
            percentile(all_jct, q)
        )


def test_warmup_and_horizon_truncation_boundaries():
    regime = ServingRegime(warmup=10.0, horizon=50.0, cooldown=10.0, window=10.0)
    assert regime.num_windows == 4
    # Half-open measurement interval [warmup, horizon).
    assert regime.window_index(10.0) == 0
    assert regime.window_index(10.0 - 1e-9) is None
    assert regime.window_index(50.0) is None
    assert regime.window_index(50.0 - 1e-9) == 3

    aggregator = WindowedAggregator(regime)
    aggregator.on_completion(1, 0.0, 9.0)  # warm-up transient
    aggregator.on_completion(2, 0.0, 10.0)  # first measured instant
    aggregator.on_completion(3, 0.0, 50.0)  # horizon itself: cool-down
    aggregator.on_completion(4, 0.0, 60.0)  # drain
    doc = aggregator.finalize()
    assert doc["dropped_warmup"] == 1
    assert doc["dropped_cooldown"] == 2
    assert doc["measured_jobs"] == 1
    assert doc["windows"][0]["completions"] == 1


def test_aggregator_launch_state_is_dropped_on_completion():
    regime = ServingRegime(warmup=0.0, horizon=100.0, cooldown=0.0, window=50.0)
    aggregator = WindowedAggregator(regime)
    for job_id in range(200):
        aggregator.note_launch(job_id, float(job_id))
        aggregator.on_completion(job_id, float(job_id), float(job_id) + 0.5)
    assert not aggregator._first_launch


def test_time_average_samples_report_means():
    regime = ServingRegime(warmup=0.0, horizon=10.0, cooldown=0.0, window=5.0)
    aggregator = WindowedAggregator(regime)
    aggregator.sample(10, 5, 10)
    aggregator.sample(20, 10, 10)
    overall = aggregator.finalize()["overall"]
    assert overall["mean_pending_tasks"] == pytest.approx(15.0)
    assert overall["mean_utilization"] == pytest.approx(0.75)
    assert overall["samples"] == 2


def test_regime_validation():
    with pytest.raises(ValueError):
        ServingRegime(warmup=-1.0)
    with pytest.raises(ValueError):
        ServingRegime(warmup=50.0, horizon=50.0)
    with pytest.raises(ValueError):
        ServingRegime(window=0.0)


# --------------------------------------------------------------------------
# Serialization differential (batch documents must not move)
# --------------------------------------------------------------------------

def _tiny_batch_result():
    spec = RunSpec(
        "decentralized",
        "hopper",
        WorkloadParams(
            profile="facebook",
            num_jobs=8,
            utilization=0.6,
            total_slots=40,
            seed=3,
        ),
    )
    return spec.execute()


def test_batch_documents_stay_byte_identical_without_serving():
    result = _tiny_batch_result()
    doc = result_to_dict(result)
    assert doc["schema_version"] == 1
    assert "serving" not in doc
    before = json.dumps(doc, sort_keys=True)

    section = {"overall": {"jct_p99": 1.0}, "measured_jobs": 1}
    result.serving = section
    bumped = result_to_dict(result)
    assert bumped["schema_version"] == 3
    assert bumped["serving"] == section

    result.serving = None
    after = json.dumps(result_to_dict(result), sort_keys=True)
    assert after == before


def test_serving_section_round_trips():
    result = _tiny_batch_result()
    result.serving = {"overall": {"jct_p99": 2.5}, "windows": []}
    restored = loads_result(dumps_result(result))
    assert restored.serving == result.serving
    # And the scalar fields still round-trip alongside the section.
    assert restored.num_jobs == result.num_jobs


# --------------------------------------------------------------------------
# Alpha-estimator bounded state (the sustained-arrivals bugfix)
# --------------------------------------------------------------------------

def test_alpha_cache_entry_is_dropped_on_job_completion():
    estimator = AlphaEstimator()
    job = _generator(seed=2).next_job(0.0)
    estimator.predict_alpha(job)
    assert job.job_id in estimator._alpha_cache
    estimator.drop_job(job.job_id)
    assert not estimator._alpha_cache
    estimator.drop_job(job.job_id)  # idempotent


def test_alpha_accuracy_running_stats():
    estimator = AlphaEstimator()
    assert estimator.accuracy == 0.0
    estimator.observe_phase_output("periodic", 0, 100.0)  # no prior: unscored
    estimator.observe_phase_output("periodic", 0, 100.0)  # exact repeat
    assert estimator.num_predictions_scored == 1
    assert estimator.accuracy == pytest.approx(1.0)
    estimator.observe_phase_output("periodic", 0, 50.0)  # predicted 100
    assert estimator.num_predictions_scored == 2
    assert estimator.accuracy == pytest.approx(0.5)


# --------------------------------------------------------------------------
# End-to-end serving runs
# --------------------------------------------------------------------------

def _serving_spec(total_slots: int = 80, rho: float = 0.8) -> WorkloadSpec:
    return WorkloadSpec(
        profile=profile_by_name("spark-facebook"),
        num_jobs=500,
        utilization=rho,
        total_slots=total_slots,
        seed=11,
    )


@pytest.mark.parametrize("plane", ["decentralized", "centralized"])
def test_run_serving_smoke_and_determinism(plane):
    regime = ServingRegime(warmup=5.0, horizon=45.0, cooldown=10.0, window=10.0)
    result = run_serving(_serving_spec(), plane, "hopper", regime, obs=None)
    serving = result.serving
    assert serving is not None
    assert serving["measured_jobs"] > 0
    assert len(serving["windows"]) == regime.num_windows == 4
    assert serving["overall"]["jct_p99"] is not None
    assert 0.0 < serving["overall"]["mean_utilization"] <= 1.0
    assert serving["regime"]["plane"] == plane
    assert serving["regime"]["jobs_offered"] >= serving["measured_jobs"]
    assert result_to_dict(result)["schema_version"] == 3

    again = run_serving(_serving_spec(), plane, "hopper", regime, obs=None)
    assert dumps_result(again, sort_keys=True) == dumps_result(
        result, sort_keys=True
    )


def test_run_serving_rejects_unknown_plane():
    with pytest.raises(ValueError):
        run_serving(
            _serving_spec(), "galactic", "hopper", ServingRegime(), obs=None
        )


def test_serving_run_spec_executes_through_the_registry():
    spec = RunSpec(
        "serving",
        "hopper-c",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=300,
            utilization=0.75,
            total_slots=60,
            seed=4,
        ),
        knobs={
            "warmup": 5.0,
            "horizon": 35.0,
            "cooldown": 10.0,
            "window": 10.0,
        },
    )
    result = spec.execute()
    assert result.serving is not None
    assert result.serving["regime"]["plane"] == "centralized"
    assert result.serving["measured_jobs"] > 0


def test_heavy_tail_knob_reaches_the_stream():
    spec = RunSpec(
        "serving",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=300,
            utilization=0.7,
            total_slots=60,
            seed=4,
        ),
        knobs={
            "warmup": 5.0,
            "horizon": 35.0,
            "cooldown": 10.0,
            "window": 10.0,
            "heavy_tail": 2.5,
        },
    )
    result = spec.execute()
    assert result.serving["regime"]["heavy_tail"] == 2.5
    # The calibrator divides the Pareto mean multiplier back out, so the
    # heavy-tailed stream offers fewer (bigger) jobs per second.
    assert result.serving["regime"]["arrival_rate"] > 0
