"""Property-style invariant tests for the incremental ClusterIndex.

The index is only admissible if, after *any* sequence of slot
acquire/release/blacklist operations, its contents equal what a
from-scratch scan of the machine list reports — the same check the old
O(machines) code performed on every query.
"""

import random

import pytest

from repro.cluster.blacklist import Blacklist
from repro.cluster.cluster import Cluster
from repro.cluster.index import ClusterIndex
from repro.cluster.machine import Machine


def _assert_index_matches_scan(cluster: Cluster) -> None:
    """The single source of truth: index contents == from-scratch scan."""
    scan_free = [m.machine_id for m in cluster.machines_with_free_slots()]
    index = cluster.index
    assert index.free_machine_ids() == scan_free
    assert index.free_machine_count == len(scan_free)
    for k, machine_id in enumerate(scan_free):
        assert index.nth_free_machine(k) == machine_id
    assert index.first_free_machine() == (scan_free[0] if scan_free else None)
    assert cluster.total_slots == sum(
        m.num_slots for m in cluster.machines if not m.blacklisted
    )
    assert cluster.free_slots == cluster.total_slots - cluster.busy_slots


def test_fresh_cluster_index_matches_scan():
    cluster = Cluster(num_machines=17, slots_per_machine=3)
    _assert_index_matches_scan(cluster)


def test_index_tracks_acquire_release():
    cluster = Cluster(num_machines=5, slots_per_machine=2)
    cluster.acquire_slot(2)
    _assert_index_matches_scan(cluster)
    cluster.acquire_slot(2)  # machine 2 now full -> leaves the index
    _assert_index_matches_scan(cluster)
    assert 2 not in cluster.index.free_machine_ids()
    cluster.release_slot(2)  # regains a slot -> re-enters the index
    _assert_index_matches_scan(cluster)
    assert 2 in cluster.index.free_machine_ids()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_launch_kill_finish_sequences(seed):
    """Random acquire ("launch") / release ("kill"/"finish") sequences
    keep the index equal to the from-scratch scan at every step."""
    rng = random.Random(seed)
    num_machines = rng.randint(1, 40)
    cluster = Cluster(
        num_machines=num_machines, slots_per_machine=rng.randint(1, 3)
    )
    busy = []  # machine ids with at least one slot we acquired
    for step in range(300):
        can_acquire = cluster.free_slots > 0
        if busy and (not can_acquire or rng.random() < 0.45):
            machine_id = busy.pop(rng.randrange(len(busy)))
            cluster.release_slot(machine_id)
        elif can_acquire:
            free_ids = cluster.index.free_machine_ids()
            machine_id = rng.choice(free_ids)
            cluster.acquire_slot(machine_id)
            busy.append(machine_id)
        if step % 7 == 0:
            _assert_index_matches_scan(cluster)
    _assert_index_matches_scan(cluster)


@pytest.mark.parametrize("seed", [10, 11])
def test_randomized_sequences_with_blacklisting(seed):
    rng = random.Random(seed)
    cluster = Cluster(num_machines=20, slots_per_machine=2)
    for _ in range(50):
        if rng.random() < 0.3:
            victim = rng.randrange(20)
            if rng.random() < 0.5:
                cluster.blacklist.add(victim)
            else:
                cluster.blacklist.remove(victim)
            # Blacklisting a machine with busy slots would strand them;
            # apply on an idle cluster like the simulators do.
            if cluster.busy_slots == 0:
                cluster.apply_blacklist()
        else:
            free_ids = cluster.index.free_machine_ids()
            if free_ids and cluster.busy_slots == 0:
                machine_id = rng.choice(free_ids)
                cluster.acquire_slot(machine_id)
                cluster.release_slot(machine_id)
        _assert_index_matches_scan(cluster)


class _ReferenceBlacklist:
    """Brute-force reference for :class:`Blacklist`: keeps the complete
    strike history and recomputes everything from scratch per query."""

    def __init__(self, strikes_to_blacklist, strike_window):
        self.k = strikes_to_blacklist
        self.window = strike_window
        self.history = {}  # machine -> [strike times]
        self.blacklisted = set()

    def _counting(self, machine_id, now):
        times = self.history.get(machine_id, [])
        if self.window is None:
            return len(times)
        return len([t for t in times if now - t < self.window])

    def record_strike(self, machine_id, now):
        if machine_id in self.blacklisted:
            return False
        self.history.setdefault(machine_id, []).append(now)
        if self._counting(machine_id, now) >= self.k:
            self.blacklisted.add(machine_id)
            return True
        return False

    def add(self, machine_id):
        self.blacklisted.add(machine_id)

    def remove(self, machine_id):
        self.blacklisted.discard(machine_id)
        self.history.pop(machine_id, None)


@pytest.mark.parametrize("seed", range(6))
def test_blacklist_matches_brute_force_reference(seed):
    """Property: randomized strike/eviction/reinstatement sequences with
    non-decreasing timestamps keep the windowed Blacklist equal to the
    full-history brute-force reference at every step."""
    rng = random.Random(seed)
    k = rng.randint(1, 4)
    window = rng.choice([None, 1.0, 5.0, 20.0])
    num_machines = rng.randint(1, 12)
    actual = Blacklist(strikes_to_blacklist=k, strike_window=window)
    reference = _ReferenceBlacklist(k, window)
    now = 0.0
    for _ in range(400):
        now += rng.random() * 3.0
        machine_id = rng.randrange(num_machines)
        op = rng.random()
        if op < 0.7:
            assert actual.record_strike(
                machine_id, now
            ) == reference.record_strike(machine_id, now)
        elif op < 0.85:
            actual.add(machine_id)
            reference.add(machine_id)
        else:  # reinstatement wipes the strike record in both
            actual.remove(machine_id)
            reference.remove(machine_id)
        assert actual.blacklisted_machines == reference.blacklisted
        if window is not None:
            probe = rng.randrange(num_machines)
            if not actual.is_blacklisted(probe):
                assert actual.strike_count(probe, now) == reference._counting(
                    probe, now
                )


def test_blacklist_window_expires_old_strikes():
    blacklist = Blacklist(strikes_to_blacklist=2, strike_window=5.0)
    assert not blacklist.record_strike(0, now=0.0)
    # The first strike has aged out: the second one does not blacklist.
    assert not blacklist.record_strike(0, now=6.0)
    assert blacklist.record_strike(0, now=8.0)
    assert blacklist.is_blacklisted(0)


def test_blacklist_lifetime_mode_unchanged():
    """window=None keeps the original cumulative-count semantics."""
    blacklist = Blacklist(strikes_to_blacklist=3)
    assert not blacklist.record_strike(1, now=0.0)
    assert not blacklist.record_strike(1, now=1000.0)
    assert blacklist.record_strike(1, now=9999.0)


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_index_invariants_under_midrun_eviction(seed):
    """Property: interleave slot traffic with simulator-style mid-run
    eviction (kill the victim's busy slots, then apply the blacklist)
    and reinstatement; the index must equal the from-scratch scan at
    every step."""
    rng = random.Random(seed)
    num_machines = rng.randint(4, 24)
    cluster = Cluster(
        num_machines=num_machines, slots_per_machine=rng.randint(1, 3)
    )
    policy_blacklist = Blacklist(strikes_to_blacklist=2, strike_window=8.0)
    busy = {m: 0 for m in range(num_machines)}
    now = 0.0
    for _ in range(250):
        now += rng.random()
        op = rng.random()
        if op < 0.45 and cluster.index.free_machine_count:
            free_ids = cluster.index.free_machine_ids()
            machine_id = free_ids[rng.randrange(len(free_ids))]
            cluster.acquire_slot(machine_id)
            busy[machine_id] += 1
        elif op < 0.7:
            candidates = [m for m, b in busy.items() if b > 0]
            if candidates:
                machine_id = rng.choice(candidates)
                cluster.release_slot(machine_id)
                busy[machine_id] -= 1
        elif op < 0.9:
            # Strike a machine; on crossing the threshold, evict it the
            # way the simulators do: kill (release) its running copies
            # first, then apply the blacklist (which rebuilds the index).
            machine_id = rng.randrange(num_machines)
            if policy_blacklist.record_strike(machine_id, now):
                while busy[machine_id] > 0:
                    cluster.release_slot(machine_id)
                    busy[machine_id] -= 1
                cluster.blacklist.add(machine_id)
                cluster.apply_blacklist()
        else:
            evicted = sorted(policy_blacklist.blacklisted_machines)
            if evicted:  # probation served: reinstate one
                machine_id = rng.choice(evicted)
                policy_blacklist.remove(machine_id)
                cluster.blacklist.remove(machine_id)
                cluster.apply_blacklist()
        _assert_index_matches_scan(cluster)
        assert cluster.busy_slots == sum(busy.values())


def test_index_survives_cluster_reset():
    cluster = Cluster(num_machines=4, slots_per_machine=1)
    for machine_id in range(4):
        cluster.acquire_slot(machine_id)
    assert cluster.index.free_machine_count == 0
    cluster.reset()
    _assert_index_matches_scan(cluster)
    assert cluster.index.free_machine_count == 4


def test_index_after_simulation_run_matches_scan():
    """End-to-end: after a full centralized replay (launch / kill /
    finish traffic) the index equals the scan and the cluster is idle."""
    from repro.centralized.config import CentralizedConfig
    from repro.centralized.simulator import CentralizedSimulator
    from repro.simulation.rng import RandomSource
    from repro.speculation import LATE
    from repro.stragglers.model import ParetoRedrawStragglerModel
    from repro.workload.generator import SPARK_FACEBOOK_PROFILE, TraceGenerator
    from repro.workload.traces import Trace
    from repro.registry import CENTRALIZED_SYSTEMS

    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=5),
        max_phase_tasks=40,
    )
    trace = Trace(jobs=gen.generate(12, interarrival_mean=1.0))
    cluster = Cluster(num_machines=15, slots_per_machine=2)
    simulator = CentralizedSimulator(
        cluster=cluster,
        policy=CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(beta=1.4),
        config=CentralizedConfig(),
        random_source=RandomSource(seed=6),
    )
    simulator.run()
    _assert_index_matches_scan(cluster)
    assert cluster.busy_slots == 0


def test_nth_free_machine_bounds():
    index = ClusterIndex([Machine(machine_id=i) for i in range(3)])
    assert index.nth_free_machine(0) == 0
    assert index.nth_free_machine(2) == 2
    with pytest.raises(IndexError):
        index.nth_free_machine(3)
    with pytest.raises(IndexError):
        index.nth_free_machine(-1)


def test_nth_free_matches_selection_on_sparse_patterns():
    rng = random.Random(99)
    for _ in range(30):
        n = rng.randint(1, 64)
        machines = [
            Machine(machine_id=i, num_slots=1, rack=0) for i in range(n)
        ]
        for m in machines:
            if rng.random() < 0.5:
                m.busy_slots = 1
        index = ClusterIndex(machines)
        free_ids = [m.machine_id for m in machines if m.has_free_slot]
        assert index.free_machine_count == len(free_ids)
        assert index.free_machine_ids() == free_ids
        for k, expected in enumerate(free_ids):
            assert index.nth_free_machine(k) == expected


def test_randrange_selection_equals_choice_on_scan():
    """The bit-identity cornerstone: rng.randrange(count) + nth_free
    consumes the same entropy and picks the same machine as
    rng.choice(scan) did on the scan-based simulator."""
    cluster = Cluster(num_machines=50, slots_per_machine=1)
    for machine_id in range(0, 50, 3):
        cluster.acquire_slot(machine_id)

    rng_a = random.Random(7)
    rng_b = random.Random(7)
    for _ in range(200):
        via_choice = rng_a.choice(cluster.machines_with_free_slots())
        via_index = cluster.index.nth_free_machine(
            rng_b.randrange(cluster.index.free_machine_count)
        )
        assert via_choice.machine_id == via_index
        assert rng_a.getstate() == rng_b.getstate()
