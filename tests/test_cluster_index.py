"""Property-style invariant tests for the incremental ClusterIndex.

The index is only admissible if, after *any* sequence of slot
acquire/release/blacklist operations, its contents equal what a
from-scratch scan of the machine list reports — the same check the old
O(machines) code performed on every query.
"""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.index import ClusterIndex
from repro.cluster.machine import Machine


def _assert_index_matches_scan(cluster: Cluster) -> None:
    """The single source of truth: index contents == from-scratch scan."""
    scan_free = [m.machine_id for m in cluster.machines_with_free_slots()]
    index = cluster.index
    assert index.free_machine_ids() == scan_free
    assert index.free_machine_count == len(scan_free)
    for k, machine_id in enumerate(scan_free):
        assert index.nth_free_machine(k) == machine_id
    assert index.first_free_machine() == (scan_free[0] if scan_free else None)
    assert cluster.total_slots == sum(
        m.num_slots for m in cluster.machines if not m.blacklisted
    )
    assert cluster.free_slots == cluster.total_slots - cluster.busy_slots


def test_fresh_cluster_index_matches_scan():
    cluster = Cluster(num_machines=17, slots_per_machine=3)
    _assert_index_matches_scan(cluster)


def test_index_tracks_acquire_release():
    cluster = Cluster(num_machines=5, slots_per_machine=2)
    cluster.acquire_slot(2)
    _assert_index_matches_scan(cluster)
    cluster.acquire_slot(2)  # machine 2 now full -> leaves the index
    _assert_index_matches_scan(cluster)
    assert 2 not in cluster.index.free_machine_ids()
    cluster.release_slot(2)  # regains a slot -> re-enters the index
    _assert_index_matches_scan(cluster)
    assert 2 in cluster.index.free_machine_ids()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_launch_kill_finish_sequences(seed):
    """Random acquire ("launch") / release ("kill"/"finish") sequences
    keep the index equal to the from-scratch scan at every step."""
    rng = random.Random(seed)
    num_machines = rng.randint(1, 40)
    cluster = Cluster(
        num_machines=num_machines, slots_per_machine=rng.randint(1, 3)
    )
    busy = []  # machine ids with at least one slot we acquired
    for step in range(300):
        can_acquire = cluster.free_slots > 0
        if busy and (not can_acquire or rng.random() < 0.45):
            machine_id = busy.pop(rng.randrange(len(busy)))
            cluster.release_slot(machine_id)
        elif can_acquire:
            free_ids = cluster.index.free_machine_ids()
            machine_id = rng.choice(free_ids)
            cluster.acquire_slot(machine_id)
            busy.append(machine_id)
        if step % 7 == 0:
            _assert_index_matches_scan(cluster)
    _assert_index_matches_scan(cluster)


@pytest.mark.parametrize("seed", [10, 11])
def test_randomized_sequences_with_blacklisting(seed):
    rng = random.Random(seed)
    cluster = Cluster(num_machines=20, slots_per_machine=2)
    for _ in range(50):
        if rng.random() < 0.3:
            victim = rng.randrange(20)
            if rng.random() < 0.5:
                cluster.blacklist.add(victim)
            else:
                cluster.blacklist.remove(victim)
            # Blacklisting a machine with busy slots would strand them;
            # apply on an idle cluster like the simulators do.
            if cluster.busy_slots == 0:
                cluster.apply_blacklist()
        else:
            free_ids = cluster.index.free_machine_ids()
            if free_ids and cluster.busy_slots == 0:
                machine_id = rng.choice(free_ids)
                cluster.acquire_slot(machine_id)
                cluster.release_slot(machine_id)
        _assert_index_matches_scan(cluster)


def test_index_survives_cluster_reset():
    cluster = Cluster(num_machines=4, slots_per_machine=1)
    for machine_id in range(4):
        cluster.acquire_slot(machine_id)
    assert cluster.index.free_machine_count == 0
    cluster.reset()
    _assert_index_matches_scan(cluster)
    assert cluster.index.free_machine_count == 4


def test_index_after_simulation_run_matches_scan():
    """End-to-end: after a full centralized replay (launch / kill /
    finish traffic) the index equals the scan and the cluster is idle."""
    from repro.centralized.config import CentralizedConfig
    from repro.centralized.simulator import CentralizedSimulator
    from repro.simulation.rng import RandomSource
    from repro.speculation import LATE
    from repro.stragglers.model import ParetoRedrawStragglerModel
    from repro.workload.generator import SPARK_FACEBOOK_PROFILE, TraceGenerator
    from repro.workload.traces import Trace
    from repro.registry import CENTRALIZED_SYSTEMS

    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=5),
        max_phase_tasks=40,
    )
    trace = Trace(jobs=gen.generate(12, interarrival_mean=1.0))
    cluster = Cluster(num_machines=15, slots_per_machine=2)
    simulator = CentralizedSimulator(
        cluster=cluster,
        policy=CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(beta=1.4),
        config=CentralizedConfig(),
        random_source=RandomSource(seed=6),
    )
    simulator.run()
    _assert_index_matches_scan(cluster)
    assert cluster.busy_slots == 0


def test_nth_free_machine_bounds():
    index = ClusterIndex([Machine(machine_id=i) for i in range(3)])
    assert index.nth_free_machine(0) == 0
    assert index.nth_free_machine(2) == 2
    with pytest.raises(IndexError):
        index.nth_free_machine(3)
    with pytest.raises(IndexError):
        index.nth_free_machine(-1)


def test_nth_free_matches_selection_on_sparse_patterns():
    rng = random.Random(99)
    for _ in range(30):
        n = rng.randint(1, 64)
        machines = [
            Machine(machine_id=i, num_slots=1, rack=0) for i in range(n)
        ]
        for m in machines:
            if rng.random() < 0.5:
                m.busy_slots = 1
        index = ClusterIndex(machines)
        free_ids = [m.machine_id for m in machines if m.has_free_slot]
        assert index.free_machine_count == len(free_ids)
        assert index.free_machine_ids() == free_ids
        for k, expected in enumerate(free_ids):
            assert index.nth_free_machine(k) == expected


def test_randrange_selection_equals_choice_on_scan():
    """The bit-identity cornerstone: rng.randrange(count) + nth_free
    consumes the same entropy and picks the same machine as
    rng.choice(scan) did on the scan-based simulator."""
    cluster = Cluster(num_machines=50, slots_per_machine=1)
    for machine_id in range(0, 50, 3):
        cluster.acquire_slot(machine_id)

    rng_a = random.Random(7)
    rng_b = random.Random(7)
    for _ in range(200):
        via_choice = rng_a.choice(cluster.machines_with_free_slots())
        via_index = cluster.index.nth_free_machine(
            rng_b.randrange(cluster.index.free_machine_count)
        )
        assert via_choice.machine_id == via_index
        assert rng_a.getstate() == rng_b.getstate()
