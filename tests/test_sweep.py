"""Tests for the sweep subsystem: RunSpec digests, result serialization,
the on-disk cache, and parallel-vs-serial equivalence."""

import json

import pytest

from repro.experiments.harness import build_trace, run_centralized
from repro.metrics.collector import JobRecord, SimulationResult
from repro.metrics.serialize import (
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
)
from repro.sweep import ResultCache, RunSpec, SweepRunner, WorkloadParams
from repro.sweep.runner import evaluate, set_default_runner


TINY = WorkloadParams(
    profile="spark-facebook",
    num_jobs=10,
    utilization=0.6,
    total_slots=40,
    max_phase_tasks=20,
)


def _tiny_grid():
    return [
        RunSpec("decentralized", "hopper", TINY),
        RunSpec("decentralized", "sparrow-srpt", TINY),
        RunSpec("centralized", "srpt", TINY),
        RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"probe_ratio": 2.0},
        ),
    ]


# -- RunSpec ----------------------------------------------------------------


def test_digest_is_stable_across_constructions():
    a = RunSpec("decentralized", "hopper", TINY, knobs={"epsilon": 0.2})
    b = RunSpec(
        "decentralized",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=10,
            utilization=0.6,
            total_slots=40,
            max_phase_tasks=20,
        ),
        knobs={"epsilon": 0.2},
    )
    assert a.digest() == b.digest()
    assert a == b


def test_digest_ignores_knob_order():
    a = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={"probe_ratio": 4.0, "epsilon": 0.1},
    )
    b = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={"epsilon": 0.1, "probe_ratio": 4.0},
    )
    assert a.digest() == b.digest()


def test_digest_changes_with_any_field():
    base = RunSpec("decentralized", "hopper", TINY)
    variants = [
        RunSpec("decentralized", "sparrow", TINY),
        RunSpec("centralized", "hopper", TINY),
        RunSpec("decentralized", "hopper", TINY, run_seed=8),
        RunSpec("decentralized", "hopper", TINY, speculation="mantri"),
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": 6.0}
        ),
        RunSpec(
            "decentralized",
            "hopper",
            WorkloadParams(
                profile="spark-facebook",
                num_jobs=10,
                utilization=0.6,
                total_slots=40,
                max_phase_tasks=20,
                seed=43,
            ),
        ),
    ]
    digests = {spec.digest() for spec in variants}
    assert base.digest() not in digests
    assert len(digests) == len(variants)


def test_digest_golden_value():
    """The digest is content-addressed storage; changing the canonical
    form silently invalidates every existing cache. Keep it pinned."""
    spec = RunSpec("decentralized", "hopper", TINY)
    assert spec.digest() == (
        "d3d3be63e3a04028e4609f195579c37d"
        "0a8fba17c7b5059505c8c5c54cd37e42"
    )


#: Digests computed on the pre-registry implementation (PR 1). The
#: registry migration must leave every one of them byte-identical, or
#: every existing on-disk cache entry silently becomes unreachable.
GOLDEN_PRE_REGISTRY_DIGESTS = {
    "decentralized/hopper/defaults": (
        RunSpec("decentralized", "hopper", WorkloadParams()),
        "0871e3031296b0e48004b9e031a9610fc11aaa43cf88e74ff08abaaa1a4065a7",
    ),
    "centralized/srpt/fig12-shape": (
        RunSpec(
            "centralized",
            "srpt",
            WorkloadParams(
                profile="facebook",
                num_jobs=200,
                utilization=0.7,
                total_slots=200,
                max_phase_tasks=300,
            ),
        ),
        "2e08174361e0f8ae52037ae08313adaa9f801a5d3b3232696a7e2a049d6636cd",
    ),
    "centralized/hopper/locality-knobs": (
        RunSpec(
            "centralized",
            "hopper",
            WorkloadParams(
                profile="facebook",
                num_jobs=150,
                utilization=0.7,
                total_slots=200,
                max_phase_tasks=200,
                locality_machines=50,
            ),
            knobs={"with_locality": True, "locality_k_percent": 3.0},
        ),
        "8f0f9022cb2d0abc453c73e3ee6555502451a7c3aeff9e701078f50cd0f991be",
    ),
    "decentralized/sparrow/probe-knob": (
        RunSpec(
            "decentralized",
            "sparrow",
            WorkloadParams(
                profile="spark-facebook",
                num_jobs=120,
                utilization=0.8,
                total_slots=300,
            ),
            knobs={"probe_ratio": 2.0},
        ),
        "1370fd4d69dcb7d468a93a406622417822bc2246e34a90a25e0f2ea00a617267",
    ),
    "decentralized/sparrow-srpt/grass": (
        RunSpec(
            "decentralized",
            "sparrow-srpt",
            WorkloadParams(
                profile="spark-bing",
                num_jobs=150,
                utilization=0.6,
                total_slots=400,
            ),
            speculation="grass",
            run_seed=11,
        ),
        "4764c6d73b767fcd95cb3adf7cfab988e6b34bc01a240dff9646907822cd278f",
    ),
    "decentralized/hopper/many-knobs": (
        RunSpec(
            "decentralized",
            "hopper",
            WorkloadParams(
                profile="bing",
                num_jobs=10,
                utilization=0.6,
                total_slots=40,
                max_phase_tasks=20,
            ),
            knobs={
                "epsilon": 0.1,
                "refusal_threshold": 3,
                "num_schedulers": 5,
                "until": 500.0,
            },
        ),
        "e54a50a112b457b64a4db8ff432c372d488ecc57cefc1b28e22a05928354f6cd",
    ),
    "centralized/fair/speculation-mode": (
        RunSpec(
            "centralized",
            "fair",
            WorkloadParams(),
            speculation="none",
            knobs={"speculation_mode": "best_effort", "slots_per_machine": 2},
        ),
        "872cf5a1ed506b9a5a8aa340c9e4df1cd78b5492feb57130653e1742fbfba0c5",
    ),
}


@pytest.mark.parametrize(
    "label", sorted(GOLDEN_PRE_REGISTRY_DIGESTS)
)
def test_pre_registry_digests_survive_the_registry_migration(label):
    spec, expected = GOLDEN_PRE_REGISTRY_DIGESTS[label]
    assert spec.digest() == expected


def test_single_job_digest_golden_value():
    """The new single_job kind's canonical form is cache-keying too —
    pin it the day it is born."""
    spec = RunSpec(
        "single_job",
        "hopper",
        WorkloadParams(
            profile="facebook",
            num_jobs=1,
            utilization=0.5,
            total_slots=1,
            seed=11,
            max_phase_tasks=None,
        ),
        knobs={"beta": 1.4, "num_tasks": 200, "normalized_slots": 1.0},
        run_seed=0,
    )
    assert spec.digest() == (
        "dc8ce770642823eec77d94e9733fd7a399c70284976e4dca2a26ddb589e4210d"
    )


def test_spec_dict_round_trip():
    spec = RunSpec(
        "centralized",
        "hopper",
        TINY,
        speculation="grass",
        run_seed=11,
        knobs={"with_locality": True, "locality_k_percent": 5.0},
    )
    restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert restored.digest() == spec.digest()


def test_spec_validation():
    with pytest.raises(ValueError):
        RunSpec("bogus", "hopper", TINY)
    with pytest.raises(ValueError):
        RunSpec("centralized", "sparrow", TINY)  # decentralized-only
    with pytest.raises(ValueError):
        RunSpec("decentralized", "hopper", TINY, knobs={"bogus": 1})
    with pytest.raises(ValueError):
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": [4.0]}
        )
    with pytest.raises(ValueError):
        WorkloadParams(profile="no-such-profile")


def test_from_dict_rejects_unknown_spec_keys():
    doc = RunSpec("decentralized", "hopper", TINY).to_dict()
    doc["bogus_field"] = 1
    with pytest.raises(ValueError) as excinfo:
        RunSpec.from_dict(doc)
    message = str(excinfo.value)
    assert "bogus_field" in message and "RunSpec" in message


def test_from_dict_rejects_unknown_workload_keys():
    doc = RunSpec("decentralized", "hopper", TINY).to_dict()
    doc["workload"]["bogus_workload_field"] = 7
    with pytest.raises(ValueError) as excinfo:
        RunSpec.from_dict(doc)
    message = str(excinfo.value)
    assert "bogus_workload_field" in message
    assert "WorkloadParams" in message


def test_workload_params_from_dict_strict_and_round_trips():
    params = WorkloadParams.from_dict(TINY.to_dict())
    assert params == TINY
    with pytest.raises(ValueError):
        WorkloadParams.from_dict({**TINY.to_dict(), "stale_key": 0})


def test_execute_matches_direct_harness_call():
    spec = RunSpec("centralized", "srpt", TINY)
    via_spec = spec.execute()
    wspec = TINY.to_workload_spec()
    direct = run_centralized(build_trace(wspec), "srpt", wspec)
    assert via_spec == direct


# -- SimulationResult serialization ----------------------------------------


def _sample_result():
    return SimulationResult(
        scheduler_name="test",
        jobs=[
            JobRecord(
                job_id=1,
                name="a",
                num_tasks=4,
                dag_length=2,
                arrival_time=0.5,
                finish_time=3.25,
            ),
            JobRecord(
                job_id=2,
                name="",
                num_tasks=1,
                dag_length=1,
                arrival_time=1.0,
                finish_time=2.0,
            ),
        ],
        total_copies=7,
        speculative_copies=3,
        speculative_wins=1,
        killed_copies=2,
        wasted_slot_time=1.5,
        useful_slot_time=9.0,
        local_copies=4,
        remote_copies=3,
        messages_sent=120,
        guideline2_decisions=5,
        guideline3_decisions=8,
    )


def test_result_json_round_trip():
    result = _sample_result()
    restored = loads_result(dumps_result(result))
    assert restored == result
    assert restored.jobs[0].duration == result.jobs[0].duration
    assert restored.mean_job_duration == result.mean_job_duration


def test_result_from_dict_rejects_bad_schema():
    doc = result_to_dict(_sample_result())
    doc["schema_version"] = 999
    with pytest.raises(ValueError):
        result_from_dict(doc)


def test_result_from_dict_tolerates_unknown_fields():
    doc = result_to_dict(_sample_result())
    doc["some_future_counter"] = 5
    assert result_from_dict(doc) == _sample_result()


# -- cache ------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    assert cache.get(spec) is None
    result = spec.execute()
    cache.put(spec, result)
    assert cache.get(spec) == result
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.entry_count() == 1


def test_cache_is_keyed_by_version_tag(tmp_path):
    spec = RunSpec("decentralized", "hopper", TINY)
    result = spec.execute()
    ResultCache(root=tmp_path, version_tag="v1").put(spec, result)
    assert ResultCache(root=tmp_path, version_tag="v2").get(spec) is None


def test_cache_discards_corrupt_entries(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    cache.put(spec, spec.execute())
    cache.path_for(spec).write_text("{not json", encoding="utf-8")
    assert cache.get(spec) is None
    assert not cache.path_for(spec).exists()


def test_cache_clear(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    cache.put(spec, spec.execute())
    assert cache.clear() == 1
    assert cache.entry_count() == 0


def _populate(cache: ResultCache, spec: RunSpec, result) -> None:
    cache.put(spec, result)


def test_cache_stats_reports_per_version_rows(tmp_path):
    spec = RunSpec("decentralized", "hopper", TINY)
    result = spec.execute()
    current = ResultCache(root=tmp_path, version_tag="v2")
    stale = ResultCache(root=tmp_path, version_tag="v1")
    _populate(current, spec, result)
    _populate(stale, spec, result)
    rows = current.stats()
    assert [row["version_tag"] for row in rows] == ["v1", "v2"]
    assert all(row["entries"] == 1 for row in rows)
    assert all(row["bytes"] > 0 for row in rows)
    assert [row["current"] for row in rows] == [False, True]
    assert ResultCache(root=tmp_path / "missing").stats() == []


def test_cache_prune_removes_stale_version_namespaces(tmp_path):
    spec = RunSpec("decentralized", "hopper", TINY)
    result = spec.execute()
    current = ResultCache(root=tmp_path, version_tag="v2")
    stale = ResultCache(root=tmp_path, version_tag="v1")
    _populate(current, spec, result)
    _populate(stale, spec, result)
    removed, freed = current.prune()
    assert removed == 1 and freed > 0
    # The stale namespace directory is gone; the current entry survives.
    assert not (tmp_path / "v1").exists()
    assert current.get(spec) == result


def test_cache_prune_older_than_uses_mtimes(tmp_path):
    import os as _os

    cache = ResultCache(root=tmp_path, version_tag="v1")
    old_spec = RunSpec("decentralized", "hopper", TINY)
    new_spec = RunSpec("decentralized", "sparrow-srpt", TINY)
    _populate(cache, old_spec, old_spec.execute())
    _populate(cache, new_spec, new_spec.execute())
    two_days_ago = 1_000_000_000.0
    _os.utime(cache.path_for(old_spec), (two_days_ago, two_days_ago))
    removed, freed = cache.prune(
        older_than_days=1.0, now=two_days_ago + 2 * 86400.0
    )
    assert removed == 1 and freed > 0
    assert cache.get(old_spec) is None
    assert cache.get(new_spec) is not None


def test_cache_prune_rejects_negative_age(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(root=tmp_path).prune(older_than_days=-1)


# -- runner -----------------------------------------------------------------


def test_runner_preserves_order_and_dedups():
    runner = SweepRunner(parallel=False)
    specs = _tiny_grid()
    results = runner.run([specs[0], specs[1], specs[0]])
    assert results[0] == results[2]
    assert results[0].scheduler_name != results[1].scheduler_name
    assert runner.stats.requested == 3
    assert runner.stats.executed == 2
    assert runner.stats.deduplicated == 1


def test_runner_second_pass_is_all_cache_hits(tmp_path):
    specs = _tiny_grid()
    first_runner = SweepRunner(
        parallel=False, cache=ResultCache(root=tmp_path)
    )
    first = first_runner.run(specs)
    assert first_runner.stats.cache_hits == 0

    second_runner = SweepRunner(
        parallel=False, cache=ResultCache(root=tmp_path)
    )
    second = second_runner.run(specs)
    assert second == first
    assert second_runner.stats.executed == 0
    assert second_runner.stats.cache_hits == len(specs)


def test_parallel_and_serial_results_are_identical():
    specs = _tiny_grid()
    serial = SweepRunner(parallel=False).run(specs)
    parallel_runner = SweepRunner(parallel=True, max_workers=2)
    parallel = parallel_runner.run(specs)
    assert parallel == serial
    # Compare the canonical serialized form too (belt and braces).
    assert [result_to_dict(r) for r in parallel] == [
        result_to_dict(r) for r in serial
    ]


def test_figure_function_accepts_explicit_runner(tmp_path):
    from repro.experiments.figures import fig7_job_bins

    runner = SweepRunner(parallel=False, cache=ResultCache(root=tmp_path))
    kwargs = dict(num_jobs=15, total_slots=50)
    first = fig7_job_bins(runner=runner, **kwargs)
    second = fig7_job_bins(runner=runner, **kwargs)
    assert second == first
    assert runner.stats.cache_hits == 2  # both runs served from cache


def test_evaluate_uses_default_runner_override():
    sentinel = SweepRunner(parallel=False)
    set_default_runner(sentinel)
    try:
        evaluate([RunSpec("decentralized", "hopper", TINY)])
        assert sentinel.stats.requested == 1
    finally:
        set_default_runner(None)
