"""Tests for the sweep subsystem: RunSpec digests, result serialization,
the on-disk cache, and parallel-vs-serial equivalence."""

import json

import pytest

from repro.experiments.harness import build_trace, run_centralized
from repro.metrics.collector import JobRecord, SimulationResult
from repro.metrics.serialize import (
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
)
from repro.sweep import ResultCache, RunSpec, SweepRunner, WorkloadParams
from repro.sweep.runner import evaluate, set_default_runner


TINY = WorkloadParams(
    profile="spark-facebook",
    num_jobs=10,
    utilization=0.6,
    total_slots=40,
    max_phase_tasks=20,
)


def _tiny_grid():
    return [
        RunSpec("decentralized", "hopper", TINY),
        RunSpec("decentralized", "sparrow-srpt", TINY),
        RunSpec("centralized", "srpt", TINY),
        RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"probe_ratio": 2.0},
        ),
    ]


# -- RunSpec ----------------------------------------------------------------


def test_digest_is_stable_across_constructions():
    a = RunSpec("decentralized", "hopper", TINY, knobs={"epsilon": 0.2})
    b = RunSpec(
        "decentralized",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=10,
            utilization=0.6,
            total_slots=40,
            max_phase_tasks=20,
        ),
        knobs={"epsilon": 0.2},
    )
    assert a.digest() == b.digest()
    assert a == b


def test_digest_ignores_knob_order():
    a = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={"probe_ratio": 4.0, "epsilon": 0.1},
    )
    b = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={"epsilon": 0.1, "probe_ratio": 4.0},
    )
    assert a.digest() == b.digest()


def test_digest_changes_with_any_field():
    base = RunSpec("decentralized", "hopper", TINY)
    variants = [
        RunSpec("decentralized", "sparrow", TINY),
        RunSpec("centralized", "hopper", TINY),
        RunSpec("decentralized", "hopper", TINY, run_seed=8),
        RunSpec("decentralized", "hopper", TINY, speculation="mantri"),
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": 6.0}
        ),
        RunSpec(
            "decentralized",
            "hopper",
            WorkloadParams(
                profile="spark-facebook",
                num_jobs=10,
                utilization=0.6,
                total_slots=40,
                max_phase_tasks=20,
                seed=43,
            ),
        ),
    ]
    digests = {spec.digest() for spec in variants}
    assert base.digest() not in digests
    assert len(digests) == len(variants)


def test_digest_golden_value():
    """The digest is content-addressed storage; changing the canonical
    form silently invalidates every existing cache. Keep it pinned."""
    spec = RunSpec("decentralized", "hopper", TINY)
    assert spec.digest() == (
        "d3d3be63e3a04028e4609f195579c37d"
        "0a8fba17c7b5059505c8c5c54cd37e42"
    )


def test_spec_dict_round_trip():
    spec = RunSpec(
        "centralized",
        "hopper",
        TINY,
        speculation="grass",
        run_seed=11,
        knobs={"with_locality": True, "locality_k_percent": 5.0},
    )
    restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert restored.digest() == spec.digest()


def test_spec_validation():
    with pytest.raises(ValueError):
        RunSpec("bogus", "hopper", TINY)
    with pytest.raises(ValueError):
        RunSpec("centralized", "sparrow", TINY)  # decentralized-only
    with pytest.raises(ValueError):
        RunSpec("decentralized", "hopper", TINY, knobs={"bogus": 1})
    with pytest.raises(ValueError):
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": [4.0]}
        )
    with pytest.raises(ValueError):
        WorkloadParams(profile="no-such-profile")


def test_execute_matches_direct_harness_call():
    spec = RunSpec("centralized", "srpt", TINY)
    via_spec = spec.execute()
    wspec = TINY.to_workload_spec()
    direct = run_centralized(build_trace(wspec), "srpt", wspec)
    assert via_spec == direct


# -- SimulationResult serialization ----------------------------------------


def _sample_result():
    return SimulationResult(
        scheduler_name="test",
        jobs=[
            JobRecord(
                job_id=1,
                name="a",
                num_tasks=4,
                dag_length=2,
                arrival_time=0.5,
                finish_time=3.25,
            ),
            JobRecord(
                job_id=2,
                name="",
                num_tasks=1,
                dag_length=1,
                arrival_time=1.0,
                finish_time=2.0,
            ),
        ],
        total_copies=7,
        speculative_copies=3,
        speculative_wins=1,
        killed_copies=2,
        wasted_slot_time=1.5,
        useful_slot_time=9.0,
        local_copies=4,
        remote_copies=3,
        messages_sent=120,
        guideline2_decisions=5,
        guideline3_decisions=8,
    )


def test_result_json_round_trip():
    result = _sample_result()
    restored = loads_result(dumps_result(result))
    assert restored == result
    assert restored.jobs[0].duration == result.jobs[0].duration
    assert restored.mean_job_duration == result.mean_job_duration


def test_result_from_dict_rejects_bad_schema():
    doc = result_to_dict(_sample_result())
    doc["schema_version"] = 999
    with pytest.raises(ValueError):
        result_from_dict(doc)


def test_result_from_dict_tolerates_unknown_fields():
    doc = result_to_dict(_sample_result())
    doc["some_future_counter"] = 5
    assert result_from_dict(doc) == _sample_result()


# -- cache ------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    assert cache.get(spec) is None
    result = spec.execute()
    cache.put(spec, result)
    assert cache.get(spec) == result
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.entry_count() == 1


def test_cache_is_keyed_by_version_tag(tmp_path):
    spec = RunSpec("decentralized", "hopper", TINY)
    result = spec.execute()
    ResultCache(root=tmp_path, version_tag="v1").put(spec, result)
    assert ResultCache(root=tmp_path, version_tag="v2").get(spec) is None


def test_cache_discards_corrupt_entries(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    cache.put(spec, spec.execute())
    cache.path_for(spec).write_text("{not json", encoding="utf-8")
    assert cache.get(spec) is None
    assert not cache.path_for(spec).exists()


def test_cache_clear(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = RunSpec("decentralized", "hopper", TINY)
    cache.put(spec, spec.execute())
    assert cache.clear() == 1
    assert cache.entry_count() == 0


# -- runner -----------------------------------------------------------------


def test_runner_preserves_order_and_dedups():
    runner = SweepRunner(parallel=False)
    specs = _tiny_grid()
    results = runner.run([specs[0], specs[1], specs[0]])
    assert results[0] == results[2]
    assert results[0].scheduler_name != results[1].scheduler_name
    assert runner.stats.requested == 3
    assert runner.stats.executed == 2
    assert runner.stats.deduplicated == 1


def test_runner_second_pass_is_all_cache_hits(tmp_path):
    specs = _tiny_grid()
    first_runner = SweepRunner(
        parallel=False, cache=ResultCache(root=tmp_path)
    )
    first = first_runner.run(specs)
    assert first_runner.stats.cache_hits == 0

    second_runner = SweepRunner(
        parallel=False, cache=ResultCache(root=tmp_path)
    )
    second = second_runner.run(specs)
    assert second == first
    assert second_runner.stats.executed == 0
    assert second_runner.stats.cache_hits == len(specs)


def test_parallel_and_serial_results_are_identical():
    specs = _tiny_grid()
    serial = SweepRunner(parallel=False).run(specs)
    parallel_runner = SweepRunner(parallel=True, max_workers=2)
    parallel = parallel_runner.run(specs)
    assert parallel == serial
    # Compare the canonical serialized form too (belt and braces).
    assert [result_to_dict(r) for r in parallel] == [
        result_to_dict(r) for r in serial
    ]


def test_figure_function_accepts_explicit_runner(tmp_path):
    from repro.experiments.figures import fig7_job_bins

    runner = SweepRunner(parallel=False, cache=ResultCache(root=tmp_path))
    kwargs = dict(num_jobs=15, total_slots=50)
    first = fig7_job_bins(runner=runner, **kwargs)
    second = fig7_job_bins(runner=runner, **kwargs)
    assert second == first
    assert runner.stats.cache_hits == 2  # both runs served from cache


def test_evaluate_uses_default_runner_override():
    sentinel = SweepRunner(parallel=False)
    set_default_runner(sentinel)
    try:
        evaluate([RunSpec("decentralized", "hopper", TINY)])
        assert sentinel.stats.requested == 1
    finally:
        set_default_runner(None)
