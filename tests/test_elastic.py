"""Elastic-cluster tests: membership deltas, autoscaler policies, and
mid-run resizes on every scheduler plane.

The hard constraints under test:

* ``Cluster.add_machine`` / ``remove_machine`` are O(log machines)
  *deltas* — after any interleaving with slot traffic the Fenwick index
  and ``_total_slots`` must equal a from-scratch rebuild/rescan;
* the :class:`IncrementalAllocator` floors memo invalidates on a pool
  resize through its existing ``(membership_version, total_slots)`` key
  — no new hooks;
* every plane absorbs scheduled resizes mid-run and still completes the
  full trace (removal rides the kill→requeue path);
* serving-side utilization is computed over *live* capacity, both in
  the decentralized probe and in the windowed aggregator.
"""

import random

import pytest

from repro.centralized.policies import HopperPolicy
from repro.cluster.cluster import Cluster
from repro.cluster.elastic import (
    ReactiveAutoscaler,
    ScheduleAutoscaler,
    parse_resize_schedule,
)
from repro.cluster.index import ClusterIndex
from repro.core.allocation import JobAllocationState
from repro.core.incremental import IncrementalAllocator
from repro.experiments.harness import (
    WorkloadSpec,
    build_decentralized_simulator,
    build_trace,
    run_batch,
    run_centralized,
    run_decentralized,
)
from repro.serving.driver import _PLANE_PROBES
from repro.serving.windows import ServingRegime, WindowedAggregator

# -- schedule parsing --------------------------------------------------------


def test_parse_resize_schedule_round_trip():
    assert parse_resize_schedule("30:+8,90:-8") == ((30.0, 8), (90.0, -8))
    assert parse_resize_schedule("0:1") == ((0.0, 1),)


@pytest.mark.parametrize(
    "text", ["", "  ,  ", "30", "-5:2", "30:0", "abc:1", "30:xyz"]
)
def test_parse_resize_schedule_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_resize_schedule(text)


def test_schedule_autoscaler_validates():
    with pytest.raises(ValueError):
        ScheduleAutoscaler(())
    with pytest.raises(ValueError):
        ScheduleAutoscaler([(5.0, 0)])
    with pytest.raises(ValueError):
        ScheduleAutoscaler([(-1.0, 2)])


def test_reactive_autoscaler_validates_and_decides():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(interval=0.0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(lower=0.9, upper=0.5)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(step=0)
    policy = ReactiveAutoscaler(interval=2.0, upper=0.8, lower=0.2, step=3)
    assert policy.decide(0.0, 9, 10) == 3  # above upper -> grow
    assert policy.decide(0.0, 1, 10) == -3  # below lower -> shrink
    assert policy.decide(0.0, 5, 10) == 0  # inside the band -> hold
    assert policy.decide(0.0, 0, 0) == 3  # empty cluster must grow


# -- membership deltas vs from-scratch rebuild -------------------------------


def _assert_matches_rebuild(cluster: Cluster) -> None:
    """Index and totals must equal what a wholesale recompute reports."""
    rebuilt = ClusterIndex(cluster.machines)
    index = cluster.index
    assert len(index) == len(cluster.machines)
    assert index.free_machine_ids() == rebuilt.free_machine_ids()
    assert index.free_machine_count == rebuilt.free_machine_count
    for k in range(rebuilt.free_machine_count):
        assert index.nth_free_machine(k) == rebuilt.nth_free_machine(k)
    assert index.first_free_machine() == rebuilt.first_free_machine()
    assert cluster.total_slots == cluster._scan_total_slots()


def test_add_machine_appends_fresh_id():
    cluster = Cluster(num_machines=3, slots_per_machine=2)
    machine = cluster.add_machine()
    assert machine.machine_id == 3
    assert machine.num_slots == 2  # defaults from the existing fleet
    assert cluster.total_slots == 8
    _assert_matches_rebuild(cluster)


def test_remove_machine_retires_and_never_resurrects():
    cluster = Cluster(num_machines=4, slots_per_machine=2)
    cluster.acquire_slot(1)
    cluster.remove_machine(1)
    assert cluster.total_slots == 6
    assert 1 not in cluster.index.free_machine_ids()
    with pytest.raises(ValueError):
        cluster.remove_machine(1)
    # Releasing the straggling busy slot must not re-admit the machine.
    cluster.release_slot(1)
    assert 1 not in cluster.index.free_machine_ids()
    _assert_matches_rebuild(cluster)
    # Growth appends a fresh id; the retired id stays dead.
    machine = cluster.add_machine()
    assert machine.machine_id == 4
    assert cluster.live_machine_count() == 4
    _assert_matches_rebuild(cluster)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_membership_and_slot_traffic(seed):
    """Interleave add/remove with acquire/release; after *every* step the
    delta-maintained index and totals equal a from-scratch rebuild."""
    rng = random.Random(seed)
    cluster = Cluster(num_machines=rng.randint(1, 8), slots_per_machine=2)
    busy = []  # machine ids holding a slot we acquired
    for _ in range(250):
        op = rng.random()
        live = [
            m.machine_id
            for m in cluster.machines
            if not m.retired and not m.blacklisted
        ]
        if op < 0.15:
            cluster.add_machine(num_slots=rng.randint(1, 3))
        elif op < 0.30 and len(live) > 1:
            cluster.remove_machine(rng.choice(live))
        elif op < 0.65 and cluster.index.free_machine_count:
            free_ids = cluster.index.free_machine_ids()
            machine_id = rng.choice(free_ids)
            cluster.acquire_slot(machine_id)
            busy.append(machine_id)
        elif busy:
            # May release on a since-retired machine: the index must
            # keep it out even though a slot freed up.
            cluster.release_slot(busy.pop(rng.randrange(len(busy))))
        _assert_matches_rebuild(cluster)


# -- floors memo invalidation ------------------------------------------------


def _states(n):
    return [
        JobAllocationState(job_id=i, virtual_size=4.0, remaining_tasks=2)
        for i in range(n)
    ]


def test_floors_memo_invalidates_on_pool_resize():
    """The floors memo key is (membership_version, total_slots): a resize
    changes the slot pool and must recompute floors with no extra hook."""
    allocator = IncrementalAllocator(HopperPolicy(epsilon=0.5))
    for state in _states(3):
        allocator.reserve(state.job_id)
        allocator.upsert(state)
    floors_100 = allocator._fairness_floors(100)
    assert floors_100 is allocator._fairness_floors(100)  # memo hit
    assert allocator._floors_key == (allocator._membership_version, 100)
    floors_60 = allocator._fairness_floors(60)
    assert allocator._floors_key == (allocator._membership_version, 60)
    # Hopper floors are epsilon-scaled slot shares: a smaller pool means
    # strictly smaller floors, proving a real recompute happened.
    assert sum(floors_60.values()) < sum(floors_100.values())


def test_floors_memo_invalidates_on_membership_change():
    allocator = IncrementalAllocator(HopperPolicy(epsilon=0.5))
    states = _states(2)
    for state in states:
        allocator.reserve(state.job_id)
        allocator.upsert(state)
    before = allocator._fairness_floors(100)
    allocator.remove(states[0].job_id)
    after = allocator._fairness_floors(100)
    assert set(after) != set(before)
    assert allocator._floors_key == (allocator._membership_version, 100)


# -- mid-run resizes on every plane ------------------------------------------

_SPEC = WorkloadSpec(num_jobs=12, utilization=0.6, total_slots=48, seed=9)

_RUNNERS = {
    "centralized": run_centralized,
    "batch": run_batch,
    "decentralized": run_decentralized,
}


@pytest.mark.parametrize("plane", sorted(_RUNNERS))
def test_planes_complete_trace_through_shrink_and_grow(plane):
    """A shrink mid-run kills running copies; the kill→requeue path must
    still complete every job once capacity returns, on every plane."""
    trace = build_trace(_SPEC)
    result = _RUNNERS[plane](
        trace,
        "hopper",
        _SPEC,
        autoscaler="schedule",
        resize_schedule="2:-4,10:+4",
    )
    assert len(result.jobs) == _SPEC.num_jobs
    baseline = _RUNNERS[plane](trace, "hopper", _SPEC)
    assert len(baseline.jobs) == _SPEC.num_jobs
    # The resize is not inert: some job's completion time moved.
    resized = {r.job_id: r.finish_time for r in result.jobs}
    static = {r.job_id: r.finish_time for r in baseline.jobs}
    assert resized != static


def test_centralized_shrink_only_leaves_smaller_cluster():
    trace = build_trace(_SPEC)
    from repro.experiments.harness import build_centralized_simulator

    simulator = build_centralized_simulator(
        trace,
        "hopper",
        _SPEC,
        autoscaler=ScheduleAutoscaler([(2.0, -3)]),
    )
    before = simulator.cluster.total_slots
    result = simulator.run()
    assert len(result.jobs) == _SPEC.num_jobs
    assert simulator.cluster.total_slots == before - 3 * 4
    assert simulator._elastic.machines_removed == 3
    assert simulator._elastic.resizes_applied == 1


def test_reactive_autoscaler_grows_overloaded_centralized_cluster():
    """A tiny cluster at high offered load sits above the upper
    threshold, so the reactive sampler must add machines mid-run."""
    spec = WorkloadSpec(num_jobs=12, utilization=0.85, total_slots=16, seed=9)
    trace = build_trace(spec)
    from repro.experiments.harness import build_centralized_simulator

    simulator = build_centralized_simulator(
        trace,
        "hopper",
        spec,
        autoscaler="reactive",
        scale_interval=1.0,
        scale_up_threshold=0.5,
        # lower=0 never fires: the run's draining tail must not shrink
        # the cluster back down and mask the growth under test.
        scale_down_threshold=0.0,
        scale_step=2,
    )
    before = simulator.cluster.total_slots
    result = simulator.run()
    assert len(result.jobs) == spec.num_jobs
    assert simulator._elastic.machines_added > 0
    assert simulator.cluster.total_slots > before


def test_remove_clamps_at_min_machines():
    spec = WorkloadSpec(num_jobs=4, utilization=0.5, total_slots=12, seed=3)
    trace = build_trace(spec)
    from repro.experiments.harness import build_centralized_simulator

    simulator = build_centralized_simulator(
        trace,
        "hopper",
        spec,
        autoscaler=ScheduleAutoscaler([(1.0, -100)], min_machines=2),
    )
    simulator.run()
    assert simulator.cluster.live_machine_count() == 2


# -- serving-side live capacity (the foregrounded bugfix) --------------------


def test_decentralized_probe_reports_live_capacity():
    """Regression: the serving probe once summed ``worker.num_slots``
    over *all* workers, counting evicted/retired capacity. It must track
    the live slot pool through a mid-serving shrink and grow-back."""
    spec = WorkloadSpec(num_jobs=6, utilization=0.5, total_slots=20, seed=4)
    trace = build_trace(spec)
    simulator = build_decentralized_simulator(
        trace,
        "hopper",
        spec,
        autoscaler=ScheduleAutoscaler([(1.0, -5)]),
    )
    probe = _PLANE_PROBES["decentralized"](simulator)
    assert probe.total_slots() == 20
    removed = simulator._autoscale_remove(5)
    assert removed == 5
    dead_sum = sum(w.num_slots for w in simulator.workers)
    assert dead_sum == 20  # the buggy denominator would still say 20
    assert probe.total_slots() == 15
    added = simulator._autoscale_add(2)
    assert added == 2
    assert probe.total_slots() == 17


def test_centralized_probe_tracks_resized_cluster():
    spec = WorkloadSpec(num_jobs=6, utilization=0.5, total_slots=20, seed=4)
    trace = build_trace(spec)
    from repro.experiments.harness import build_centralized_simulator

    simulator = build_centralized_simulator(
        trace,
        "hopper",
        spec,
        autoscaler=ScheduleAutoscaler([(1.0, -2)]),
    )
    probe = _PLANE_PROBES["centralized"](simulator)
    assert probe.total_slots() == 20
    simulator._autoscale_remove(2)
    assert probe.total_slots() == 12  # 2 machines x 4 slots gone


# -- windowed utilization under capacity change ------------------------------


def _regime():
    return ServingRegime(warmup=0.0, horizon=40.0, cooldown=0.0, window=10.0)


def test_windowed_utilization_constant_capacity_is_mean_of_ratios():
    aggregator = WindowedAggregator(_regime())
    aggregator.sample(0, 3, 10)
    aggregator.sample(0, 7, 10)
    overall = aggregator.finalize()["overall"]
    assert overall["mean_utilization"] == pytest.approx((0.3 + 0.7) / 2)


def test_windowed_utilization_weights_by_live_capacity():
    """A mid-window shrink must not let utilization exceed 1.0: the
    constant-denominator mean would report 14/20 + 6/5 style nonsense;
    the capacity-weighted mean stays a true slot-seconds ratio."""
    aggregator = WindowedAggregator(_regime())
    aggregator.sample(0, 14, 20)  # before the shrink
    aggregator.sample(0, 5, 5)  # after: 5 live slots, all busy
    overall = aggregator.finalize()["overall"]
    assert overall["mean_utilization"] == pytest.approx(19 / 25)
    assert overall["mean_utilization"] <= 1.0


def test_windowed_utilization_handles_zero_capacity_samples():
    aggregator = WindowedAggregator(_regime())
    aggregator.sample(0, 0, 0)
    assert aggregator.finalize()["overall"]["mean_utilization"] == 0.0
    varying = WindowedAggregator(_regime())
    varying.sample(0, 4, 8)
    varying.sample(0, 0, 0)  # cluster fully retired for one sample
    overall = varying.finalize()["overall"]
    assert overall["mean_utilization"] == pytest.approx(0.5)
