"""Tests for the shared runtime core (repro.runtime).

The JobRuntime locality buckets and the view's live-speculative index
are fast paths over behavior the golden digests pin, so every test here
checks *equivalence with the reference scan*, not just plausibility.
"""

import random
from collections import deque

from repro.estimation.beta import OnlineBetaEstimator
from repro.metrics.collector import MetricsCollector
from repro.runtime import CopyLedger, JobRuntime, LocalityJobRuntime
from repro.simulation.engine import Simulator
from repro.speculation.base import JobExecutionView
from repro.stragglers.progress import TaskCopy
from repro.workload.job import make_chain_job, make_single_phase_job
from repro.workload.task import Task, TaskState


def _job_with_tasks(num_tasks, preferred=None, job_id=0):
    return make_single_phase_job(
        job_id, 0.0, [1.0] * num_tasks, preferred=preferred
    )


# -- JobRuntime: pending queue + phase activation ---------------------------


def test_activation_queues_only_runnable_phases():
    job = make_chain_job(0, 0.0, [[1.0] * 3, [1.0] * 2], [100.0, 0.0])
    jr = JobRuntime(job)
    fresh = jr.activate_runnable_phases()
    assert [t.task_id for t in fresh] == [t.task_id for t in job.phases[0].tasks]
    assert jr.pending_ids == {t.task_id for t in job.phases[0].tasks}
    # Re-activation is idempotent until the phase becomes runnable.
    assert jr.activate_runnable_phases() == []


def test_pop_pending_prunes_finished_tasks():
    job = _job_with_tasks(3)
    jr = JobRuntime(job)
    jr.activate_runnable_phases()
    job.phases[0].tasks[0].state = TaskState.FINISHED
    popped = jr.pop_pending()
    assert popped is job.phases[0].tasks[1]
    assert job.phases[0].tasks[0].task_id not in jr.pending_ids


def _reference_pop(pending, prefer_machine):
    """The pre-runtime bounded-scan pop (verbatim semantics)."""
    while pending and pending[0].is_finished:
        pending.popleft()
    if not pending:
        return None
    if prefer_machine is not None:
        scan_limit = min(len(pending), 64)
        for i in range(scan_limit):
            task = pending[i]
            if not task.is_finished and task.prefers(prefer_machine):
                del pending[i]
                return task
    return pending.popleft()


def _reference_has_local(pending, machine_id):
    scan_limit = min(len(pending), 64)
    for i in range(scan_limit):
        task = pending[i]
        if not task.is_finished and task.prefers(machine_id):
            return True
    return False


def _random_locality_job(rng, num_tasks, num_machines, job_id=0):
    preferred = []
    for _ in range(num_tasks):
        if rng.random() < 0.5:
            preferred.append(
                tuple(
                    rng.sample(
                        range(num_machines),
                        rng.randint(1, min(3, num_machines)),
                    )
                )
            )
        else:
            preferred.append(())  # wildcard: prefers every machine
    return make_single_phase_job(
        job_id, 0.0, [1.0] * num_tasks, preferred=preferred
    )


def test_pop_pending_matches_reference_bounded_scan():
    """Property: with the bucket fast-reject in front, pop_pending picks
    exactly the task the reference 64-entry scan picks, for randomized
    queues, preferences, finished flags, and machine choices."""
    rng = random.Random(42)
    for _ in range(60):
        num_machines = rng.randint(1, 8)
        num_tasks = rng.randint(1, 90)
        job = _random_locality_job(rng, num_tasks, num_machines)
        jr = LocalityJobRuntime(job)
        jr.activate_runnable_phases()
        reference = deque(jr.pending)
        # Randomly finish some tasks mid-queue (the scan must skip them).
        for task in job.phases[0].tasks:
            if rng.random() < 0.2:
                task.state = TaskState.FINISHED
        while True:
            prefer = (
                rng.randrange(num_machines) if rng.random() < 0.8 else None
            )
            expected = _reference_pop(reference, prefer)
            actual = jr.pop_pending(prefer_machine=prefer)
            assert actual is expected
            if actual is None:
                break


def test_has_pending_local_to_matches_reference():
    rng = random.Random(7)
    for _ in range(40):
        num_machines = rng.randint(1, 6)
        job = _random_locality_job(rng, rng.randint(1, 80), num_machines)
        jr = LocalityJobRuntime(job)
        jr.activate_runnable_phases()
        for task in job.phases[0].tasks:
            if rng.random() < 0.3:
                task.state = TaskState.FINISHED
        # Pop a few to churn the buckets.
        for _ in range(rng.randint(0, 5)):
            jr.pop_pending(
                prefer_machine=rng.randrange(num_machines)
                if rng.random() < 0.5
                else None
            )
        for machine_id in range(num_machines):
            assert jr.has_pending_local_to(machine_id) == _reference_has_local(
                jr.pending, machine_id
            )


def test_bucket_fast_reject_is_exact_without_wildcards():
    job = _job_with_tasks(4, preferred=[(1,), (1,), (2,), (2,)])
    jr = LocalityJobRuntime(job)
    jr.activate_runnable_phases()
    assert not jr.may_have_local_pending(0)
    assert jr.may_have_local_pending(1)
    # Draining machine 1's tasks empties its bucket.
    assert jr.pop_pending(prefer_machine=1).prefers(1)
    assert jr.pop_pending(prefer_machine=1).prefers(1)
    assert not jr.may_have_local_pending(1)
    assert not jr.has_pending_local_to(1)
    assert jr.has_pending_local_to(2)


def test_speculation_candidate_cache_throttles():
    class CountingPolicy:
        def __init__(self):
            self.calls = 0

        def speculation_candidates(self, view, now):
            self.calls += 1
            return ["sentinel"]

    policy = CountingPolicy()
    jr = JobRuntime(_job_with_tasks(1), policy)
    assert jr.speculation_candidates(0.0, 0.25) == ["sentinel"]
    assert jr.speculation_candidates(0.1, 0.25) == ["sentinel"]
    assert policy.calls == 1  # throttled: cache fresh, not dirty
    jr.mark_copies_changed()
    jr.speculation_candidates(0.1, 0.25)
    assert policy.calls == 2  # dirty bit forces re-evaluation
    jr.speculation_candidates(0.4, 0.25)
    assert policy.calls == 3  # interval elapsed


# -- JobExecutionView: live-speculative index -------------------------------


def _reference_victims(view):
    return [
        c
        for copies in view.copies_by_task.values()
        for c in copies
        if c.speculative and len(copies) > 1
    ]


def test_live_speculative_copies_matches_reference_scan():
    """Property: after randomized register/remove sequences the indexed
    enumeration equals the full copies_by_task walk, element for element
    (order included — preemption victim ties break on it)."""
    rng = random.Random(3)
    for _ in range(40):
        num_tasks = rng.randint(1, 12)
        job = _job_with_tasks(num_tasks)
        view = JobExecutionView(job=job)
        live = []
        next_copy_id = 0
        for _ in range(rng.randint(1, 60)):
            if live and rng.random() < 0.4:
                copy = live.pop(rng.randrange(len(live)))
                if rng.random() < 0.5:
                    copy.killed = True
                else:
                    copy.finished = True
                view.remove_copy(copy)
            else:
                task = job.phases[0].tasks[rng.randrange(num_tasks)]
                copy = TaskCopy(
                    copy_id=next_copy_id,
                    task=task,
                    machine_id=rng.randrange(4),
                    start_time=float(rng.randint(0, 5)),
                    duration=rng.random() + 0.1,
                    speculative=rng.random() < 0.5,
                )
                next_copy_id += 1
                view.register_copy(copy)
                live.append(copy)
            assert view.live_speculative_copies() == _reference_victims(view)


# -- CopyLedger -------------------------------------------------------------


def _ledger():
    engine = Simulator()
    metrics = MetricsCollector(scheduler_name="test")
    beta = OnlineBetaEstimator(default_beta=1.5)
    return engine, metrics, CopyLedger(engine, metrics, beta)


def test_ledger_launch_finish_lifecycle():
    engine, metrics, ledger = _ledger()
    job = _job_with_tasks(1)
    view = JobExecutionView(job=job)
    task = job.phases[0].tasks[0]
    finished = []

    def on_finish(copy):
        won = ledger.finish(copy, view)
        finished.append((copy, won))
        if won:
            assert ledger.finish_task(view, copy) == []

    copy = ledger.launch(view, task, 0, 2.0, False, True, on_finish)
    assert copy.copy_id == 0
    assert view.copies_of(task) == [copy]
    assert copy.copy_id in ledger.events
    engine.run()
    assert finished == [(copy, True)]
    assert copy.finished and copy.end_time == 2.0
    assert copy.copy_id not in ledger.events
    assert view.copies_of(task) == []
    assert task.is_finished and task.finish_time == 2.0
    assert metrics.result.total_copies == 1


def test_ledger_race_kills_losers_and_accounts_waste():
    engine, metrics, ledger = _ledger()
    job = _job_with_tasks(1)
    view = JobExecutionView(job=job)
    task = job.phases[0].tasks[0]

    def on_finish(copy):
        if ledger.finish(copy, view):
            for loser in ledger.finish_task(view, copy):
                ledger.kill(loser, view)

    ledger.launch(view, task, 0, 5.0, False, True, on_finish)
    speculative = ledger.launch(view, task, 1, 1.0, True, True, on_finish)
    engine.run()
    assert task.is_finished and task.completed_by_speculative
    assert speculative.finished
    result = metrics.result
    assert result.speculative_copies == 1
    assert result.killed_copies == 1
    assert result.speculative_wins == 1
    # The loser ran [0, 1.0] before being killed: wasted slot-time.
    assert result.wasted_slot_time == 1.0
    # Engine never fires the cancelled loser event.
    assert engine.events_processed == 1


def test_ledger_copy_ids_are_unique_and_monotonic():
    engine, _, ledger = _ledger()
    job = _job_with_tasks(3)
    view = JobExecutionView(job=job)
    ids = [
        ledger.launch(
            view, task, 0, 1.0, False, True, lambda c: None
        ).copy_id
        for task in job.phases[0].tasks
    ]
    assert ids == [0, 1, 2]
    del engine


def test_ledger_record_job_completion_stamps_job():
    engine, metrics, ledger = _ledger()
    job = _job_with_tasks(1)
    engine.schedule(3.0, lambda: None)
    engine.run()
    ledger.record_job_completion(job)
    assert job.finish_time == 3.0
    assert metrics.result.num_jobs == 1
    assert metrics.result.jobs[0].job_id == job.job_id


# -- mid-run eviction: kill -> requeue -> completion lifecycle ---------------


def _machine_copy_census(simulator):
    """machine_id -> live copies, via the per-job views (both planes
    prune finished/killed copies synchronously)."""
    per_machine = {}
    for jr in simulator._jobs.values():
        for copies in jr.view.copies_by_task.values():
            for c in copies:
                per_machine.setdefault(c.machine_id, []).append(c)
    return per_machine


def _centralized_sim(num_machines=6, slots_per_machine=2, num_jobs=6):
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.registry import CENTRALIZED_SYSTEMS
    from repro.simulation.rng import RandomSource
    from repro.speculation import LATE
    from repro.stragglers.model import ParetoStragglerModel
    from repro.workload.generator import FACEBOOK_PROFILE, TraceGenerator
    from repro.workload.traces import Trace

    gen = TraceGenerator(
        FACEBOOK_PROFILE,
        random_source=RandomSource(seed=11),
        max_phase_tasks=30,
    )
    trace = Trace(jobs=gen.generate(num_jobs, interarrival_mean=1.0))
    return CentralizedSimulator(
        cluster=Cluster(
            num_machines=num_machines, slots_per_machine=slots_per_machine
        ),
        policy=CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=ParetoStragglerModel(straggler_prob=0.5),
        config=CentralizedConfig(
            speculation_mode=SpeculationMode.INTEGRATED
        ),
        random_source=RandomSource(seed=12),
    )


def test_centralized_eviction_kills_requeues_and_completes():
    """Evicting a machine with running original + speculative copies
    drives the ledger through kill -> requeue -> completion: every job
    still finishes, no ledger entries or heap events leak, and the
    evicted machine ends idle and blacklisted."""
    simulator = _centralized_sim()
    evicted = []

    def evict_mixed_machine():
        per_machine = _machine_copy_census(simulator)
        target = None
        for machine_id, copies in sorted(per_machine.items()):
            has_spec = any(c.speculative for c in copies)
            has_orig = any(not c.speculative for c in copies)
            if has_spec and has_orig:
                target = machine_id
                break
        if target is None and per_machine:  # fall back: any busy machine
            target = sorted(per_machine)[0]
        if target is not None:
            evicted.append((target, list(per_machine[target])))
            simulator._evict_machine(target)

    # Let load build up, then evict a machine racing an original and a
    # speculative copy of some task (t=10 is past the first LATE scan
    # that launches a speculative copy on this trace/seed).
    simulator.sim.schedule(10.0, evict_mixed_machine)
    result = simulator.run()

    assert evicted, "eviction hook never fired"
    machine_id, killed = evicted[0]
    assert any(c.speculative for c in killed)
    assert any(not c.speculative for c in killed)
    # Every killed copy was settled through the ledger.
    assert all(c.killed for c in killed)
    assert result.killed_copies >= len(killed)
    # Requeue -> completion: the trace still finishes every job.
    assert result.num_jobs == 6
    for job in simulator.trace:
        assert job.is_complete
    # No leaked ledger entries or heap events.
    assert simulator.ledger.events == {}
    assert simulator.sim.pending_events == 0
    # The machine stayed out: idle, blacklisted, excluded from totals.
    machine = simulator.cluster.machine(machine_id)
    assert machine.blacklisted and machine.busy_slots == 0
    assert simulator.cluster.busy_slots == 0
    assert simulator.cluster.total_slots == sum(
        m.num_slots for m in simulator.cluster.machines if not m.blacklisted
    )
    assert simulator.cluster.index.free_machine_ids() == [
        m.machine_id
        for m in simulator.cluster.machines
        if m.has_free_slot
    ]


def test_centralized_eviction_requeues_only_copyless_tasks():
    """A task whose original died in the eviction but whose speculative
    sibling survives elsewhere is NOT requeued (the sibling carries it);
    a task that lost its only copy is requeued and eventually runs."""
    simulator = _centralized_sim()
    observed = []

    def evict_and_audit():
        per_machine = _machine_copy_census(simulator)
        if not per_machine:
            return
        target = sorted(per_machine)[0]
        victims = per_machine[target]
        jobs = {
            c.task.task_id: jr
            for jr in simulator._jobs.values()
            for copies in jr.view.copies_by_task.values()
            for c in copies
        }
        simulator._evict_machine(target)
        for c in victims:
            jr = jobs[c.task.task_id]
            survivors = jr.view.num_live_copies(c.task)
            queued = c.task.task_id in jr.pending_ids
            observed.append((survivors, queued, c.task.is_finished))

    simulator.sim.schedule(4.0, evict_and_audit)
    simulator.run()
    assert observed
    for survivors, queued, finished in observed:
        if finished:
            continue
        # Requeued exactly when no live copy survived the eviction.
        assert queued == (survivors == 0)


def test_decentralized_eviction_kills_requeues_and_completes():
    from repro.cluster.policy import StrikeBlacklistPolicy
    from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
    from repro.decentralized.simulator import DecentralizedSimulator
    from repro.simulation.rng import RandomSource
    from repro.speculation import LATE
    from repro.stragglers.model import ParetoStragglerModel
    from repro.workload.generator import FACEBOOK_PROFILE, TraceGenerator
    from repro.workload.traces import Trace

    gen = TraceGenerator(
        FACEBOOK_PROFILE,
        random_source=RandomSource(seed=11),
        max_phase_tasks=30,
    )
    trace = Trace(jobs=gen.generate(6, interarrival_mean=1.0))
    num_workers = 12
    simulator = DecentralizedSimulator(
        num_workers=num_workers,
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=ParetoStragglerModel(straggler_prob=0.5),
        config=DecentralizedConfig(
            worker_policy=WorkerPolicy.HOPPER, probe_ratio=4.0, epsilon=0.1
        ),
        random_source=RandomSource(seed=12),
        # Inert policy (threshold out of reach): exercises the observe
        # path while letting the test trigger the eviction itself.
        blacklist_policy=StrikeBlacklistPolicy(
            num_workers, strike_threshold=10**6
        ),
    )
    evicted = []

    def evict_busiest_worker():
        busiest = max(
            simulator.workers, key=lambda w: len(w.running), default=None
        )
        if busiest is not None and busiest.running:
            evicted.append((busiest, list(busiest.running)))
            simulator._evict_worker(busiest.worker_id)

    simulator.sim.schedule(4.0, evict_busiest_worker)
    result = simulator.run()

    assert evicted, "eviction hook never fired"
    worker, killed = evicted[0]
    assert all(c.killed for c in killed)
    assert result.killed_copies >= len(killed)
    # Requeue -> completion: every job still finishes.
    assert result.num_jobs == 6
    for job in simulator.trace:
        assert job.is_complete
    # No leaked ledger entries, heap events, queued requests or slots.
    assert simulator.ledger.events == {}
    assert simulator.sim.pending_events == 0
    assert worker.evicted and worker.queue == [] and worker.running == []
    assert worker.busy_slots == 0
    assert simulator._request_holders == {}
    # The mirror substrate recorded the eviction and rebuilt its index.
    assert simulator.cluster.blacklist.is_blacklisted(worker.worker_id)
    assert worker.worker_id not in simulator.cluster.index.free_machine_ids()
    assert worker not in simulator._sample_pool
    assert len(simulator._sample_pool) == num_workers - 1
