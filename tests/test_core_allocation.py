"""Tests for virtual sizes and the Hopper/SRPT/Fair allocation rules,
including property-based invariants."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    is_capacity_constrained,
    srpt_allocation,
)
from repro.core.fairness import fairness_floors, slowdown_vs_fair
from repro.core.locality import locality_window, pick_job_with_locality
from repro.core.virtual_size import threshold_multiplier, virtual_size


def _job(job_id, remaining, beta=1.4, alpha=1.0, weight=1.0):
    return JobAllocationState(
        job_id=job_id,
        virtual_size=virtual_size(remaining, beta, alpha),
        remaining_tasks=remaining,
        weight=weight,
    )


# -- virtual size ---------------------------------------------------------------

def test_threshold_multiplier_formula():
    assert threshold_multiplier(1.4) == pytest.approx(2.0 / 1.4)
    assert threshold_multiplier(1.6) == pytest.approx(1.25)
    assert threshold_multiplier(2.5) == 1.0  # clamped below at 1


def test_threshold_multiplier_rejects_nonpositive():
    with pytest.raises(ValueError):
        threshold_multiplier(0.0)


def test_virtual_size_scales_remaining_tasks():
    assert virtual_size(10, beta=1.4) == pytest.approx(10 * 2.0 / 1.4)
    assert virtual_size(0, beta=1.4) == 0.0


def test_virtual_size_alpha_sqrt_scaling():
    base = virtual_size(10, beta=1.4, alpha=1.0)
    scaled = virtual_size(10, beta=1.4, alpha=4.0)
    assert scaled == pytest.approx(2.0 * base)


def test_virtual_size_never_below_remaining():
    assert virtual_size(10, beta=1.4, alpha=0.01) == 10.0


def test_virtual_size_validation():
    with pytest.raises(ValueError):
        virtual_size(-1, 1.4)
    with pytest.raises(ValueError):
        virtual_size(1, 1.4, alpha=0.0)


# -- hopper allocation -----------------------------------------------------------

def test_capacity_constrained_predicate():
    jobs = [_job(0, 10), _job(1, 10)]  # sum V ~ 28.6
    assert is_capacity_constrained(jobs, 20)
    assert not is_capacity_constrained(jobs, 40)


def test_guideline2_smallest_jobs_get_virtual_size():
    jobs = [_job(0, 4), _job(1, 100)]  # V = 5.7, 142.9
    alloc = hopper_allocation(jobs, total_slots=20, epsilon=1.0)
    assert alloc[0] == int(virtual_size(4, 1.4))  # 5 slots: speculation room
    assert alloc[0] + alloc[1] <= 20
    assert alloc[1] == 20 - alloc[0]


def test_guideline2_serves_in_ascending_order_until_exhausted():
    jobs = [_job(i, 10) for i in range(5)]  # each V ~ 14.3
    alloc = hopper_allocation(jobs, total_slots=30, epsilon=1.0)
    # two smallest ids fully served, remainder gets leftovers
    assert alloc[0] == 14
    assert alloc[1] == 14
    assert sum(alloc.values()) <= 30


def test_guideline3_proportional_to_virtual_sizes():
    jobs = [_job(0, 10), _job(1, 30)]
    alloc = hopper_allocation(jobs, total_slots=100, epsilon=1.0)
    # proportional 25/75 within rounding and caps
    assert alloc[0] >= 20
    assert alloc[1] >= alloc[0] * 2
    assert sum(alloc.values()) <= 100


def test_guideline3_respects_caps():
    jobs = [_job(0, 2), _job(1, 2)]
    alloc = hopper_allocation(jobs, total_slots=100, epsilon=1.0)
    for state in jobs:
        assert alloc[state.job_id] <= state.cap


def test_epsilon_fairness_floor_is_respected():
    jobs = [_job(0, 2), _job(1, 500)]
    alloc = hopper_allocation(jobs, total_slots=100, epsilon=0.2)
    floor = int((1 - 0.2) * 100 / 2)
    assert alloc[1] >= min(floor, jobs[1].cap)


def test_epsilon_zero_gives_equal_floors():
    jobs = [_job(0, 50), _job(1, 50), _job(2, 50), _job(3, 50)]
    alloc = hopper_allocation(jobs, total_slots=100, epsilon=0.0)
    assert all(v == 25 for v in alloc.values())


def test_empty_and_zero_slot_cases():
    assert hopper_allocation([], 10) == {}
    jobs = [_job(0, 5)]
    assert hopper_allocation(jobs, 0) == {0: 0}


def test_jobs_with_no_remaining_tasks_are_dropped():
    jobs = [_job(0, 0), _job(1, 5)]
    alloc = hopper_allocation(jobs, 10, epsilon=1.0)
    assert 0 not in alloc


def test_priority_size_overrides_ordering():
    small_v_big_priority = JobAllocationState(
        job_id=0, virtual_size=5.0, remaining_tasks=4, priority_size=100.0
    )
    big_v = JobAllocationState(
        job_id=1, virtual_size=50.0, remaining_tasks=40
    )
    alloc = hopper_allocation(
        [small_v_big_priority, big_v], total_slots=30, epsilon=1.0
    )
    # job 1 ordered first now (priority 50 < 100)
    assert alloc[1] == 30 or alloc[1] >= alloc[0]


# -- srpt / fair -----------------------------------------------------------------

def test_srpt_serves_smallest_first():
    jobs = [_job(0, 10), _job(1, 3), _job(2, 50)]
    alloc = srpt_allocation(jobs, total_slots=15, best_effort_speculation=False)
    assert alloc[1] == 3
    assert alloc[0] == 10
    assert alloc[2] == 2


def test_srpt_best_effort_gives_leftovers_for_speculation():
    jobs = [_job(0, 4)]
    alloc = srpt_allocation(jobs, total_slots=10, best_effort_speculation=True)
    assert alloc[0] > 4  # leftover slots available for speculative copies
    assert alloc[0] <= jobs[0].cap


def test_fair_splits_equally():
    jobs = [_job(0, 100), _job(1, 100)]
    alloc = fair_allocation(jobs, total_slots=50)
    assert alloc[0] == 25 and alloc[1] == 25


def test_fair_respects_weights():
    jobs = [_job(0, 100, weight=3.0), _job(1, 100, weight=1.0)]
    alloc = fair_allocation(jobs, total_slots=40)
    assert alloc[0] == pytest.approx(30, abs=1)
    assert alloc[1] == pytest.approx(10, abs=1)


def test_fair_redistributes_capped_share():
    jobs = [_job(0, 1), _job(1, 100)]
    alloc = fair_allocation(jobs, total_slots=50)
    assert alloc[0] == jobs[0].cap  # water-filled to its cap
    assert alloc[1] == 50 - alloc[0]


def test_allocation_validation():
    with pytest.raises(ValueError):
        hopper_allocation([_job(0, 1)], -1)
    with pytest.raises(ValueError):
        srpt_allocation([_job(0, 1)], -1)
    with pytest.raises(ValueError):
        fair_allocation([_job(0, 1)], -1)
    with pytest.raises(ValueError):
        JobAllocationState(job_id=0, virtual_size=-1.0, remaining_tasks=1)
    with pytest.raises(ValueError):
        JobAllocationState(job_id=0, virtual_size=1.0, remaining_tasks=1, weight=0)


# -- fairness helpers -------------------------------------------------------------

def test_fairness_floors_sum_within_budget():
    jobs = [_job(i, 10) for i in range(7)]
    floors = fairness_floors(jobs, total_slots=100, epsilon=0.1)
    assert sum(floors.values()) <= 100
    assert all(f == int((0.9 * 100) / 7) for f in floors.values())


def test_fairness_floors_epsilon_one_is_zero():
    jobs = [_job(0, 10)]
    assert fairness_floors(jobs, 100, 1.0) == {0: 0}


def test_fairness_floor_validation():
    with pytest.raises(ValueError):
        fairness_floors([_job(0, 1)], 10, epsilon=1.5)


def test_slowdown_vs_fair():
    assert slowdown_vs_fair(110.0, 100.0) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        slowdown_vs_fair(1.0, 0.0)


# -- locality ---------------------------------------------------------------------

def test_locality_window_sizes():
    assert locality_window(100, 5.0) == 5
    assert locality_window(10, 0.0) == 1
    assert locality_window(0, 5.0) == 0
    with pytest.raises(ValueError):
        locality_window(10, 200.0)


def test_pick_job_with_locality_prefers_local_within_window():
    jobs = ["a", "b", "c", "d"]
    picked = pick_job_with_locality(jobs, 50.0, lambda j: j == "b")
    assert picked == "b"


def test_pick_job_with_locality_falls_back_to_smallest():
    jobs = ["a", "b", "c", "d"]
    picked = pick_job_with_locality(jobs, 50.0, lambda j: False)
    assert picked == "a"


def test_pick_job_with_locality_ignores_local_outside_window():
    jobs = ["a", "b", "c", "d"]
    picked = pick_job_with_locality(jobs, 25.0, lambda j: j == "d")
    assert picked == "a"


def test_pick_job_empty():
    assert pick_job_with_locality([], 5.0, lambda j: True) is None


# -- property-based invariants ------------------------------------------------------

job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),  # remaining
        st.floats(min_value=1.05, max_value=2.0),  # beta
    ),
    min_size=1,
    max_size=12,
)


@given(jobs=job_lists, slots=st.integers(min_value=0, max_value=2000),
       epsilon=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_hopper_allocation_invariants(jobs, slots, epsilon):
    states = [_job(i, r, beta=b) for i, (r, b) in enumerate(jobs)]
    alloc = hopper_allocation(states, slots, epsilon=epsilon)
    # never exceeds capacity
    assert sum(alloc.values()) <= slots
    for state in states:
        # non-negative and capped
        assert 0 <= alloc[state.job_id] <= state.cap
        # fairness floor honoured (cap permitting)
        floor = int((1 - epsilon) * slots * state.weight
                    / sum(s.weight for s in states))
        assert alloc[state.job_id] >= min(floor, state.cap)


@given(jobs=job_lists, slots=st.integers(min_value=1, max_value=2000))
@settings(max_examples=200, deadline=None)
def test_hopper_uses_all_slots_when_demand_exists(jobs, slots):
    states = [_job(i, r, beta=b) for i, (r, b) in enumerate(jobs)]
    alloc = hopper_allocation(states, slots, epsilon=1.0)
    total_cap = sum(s.cap for s in states)
    # Work conservation at the allocation level: all slots are handed out
    # unless every job is capped.
    assert sum(alloc.values()) == min(slots, total_cap)


@given(jobs=job_lists, slots=st.integers(min_value=0, max_value=2000))
@settings(max_examples=200, deadline=None)
def test_srpt_allocation_invariants(jobs, slots):
    states = [_job(i, r, beta=b) for i, (r, b) in enumerate(jobs)]
    alloc = srpt_allocation(states, slots)
    assert sum(alloc.values()) <= slots
    # SRPT property: if any job got fewer originals than its remaining
    # tasks, then no strictly larger job received more than its size.
    by_remaining = sorted(states, key=lambda s: (s.remaining_tasks, s.job_id))
    exhausted = False
    for state in by_remaining:
        if alloc[state.job_id] < state.remaining_tasks:
            exhausted = True
        elif exhausted:
            # a later (larger) job got its full remaining while an earlier
            # one did not -> violation unless leftovers (best effort) flow
            assert alloc[state.job_id] <= state.cap


@given(jobs=job_lists, slots=st.integers(min_value=0, max_value=500))
@settings(max_examples=200, deadline=None)
def test_fair_allocation_invariants(jobs, slots):
    states = [_job(i, r, beta=b) for i, (r, b) in enumerate(jobs)]
    alloc = fair_allocation(states, slots)
    assert sum(alloc.values()) <= slots
    for state in states:
        assert 0 <= alloc[state.job_id] <= state.cap
