"""Smoke tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


def test_list_prints_every_figure(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig3", "fig6", "fig12", "headline"):
        assert name in out


def test_run_rejects_unknown_figure(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_run_quick_figure_with_cache(tmp_path, capsys):
    args = [
        "run",
        "fig7",
        "--quick",
        "--serial",
        "--cache",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "Fig 7" in first
    assert "2 executed" in first

    assert main(args) == 0
    second = capsys.readouterr().out
    assert "2 cache hit(s)" in second
    assert "0 executed" in second
    # The measured table itself is identical across cached re-runs.
    assert [l for l in first.splitlines() if "===" in l or "." in l][:5] == [
        l for l in second.splitlines() if "===" in l or "." in l
    ][:5]


def test_sweep_command(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--systems",
                "hopper",
                "--utilizations",
                "0.6",
                "--seeds",
                "42",
                "--num-jobs",
                "10",
                "--total-slots",
                "40",
                "--serial",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "hopper" in out and "1 runs requested" in out


def test_sweep_rejects_unknown_system(capsys):
    assert main(["sweep", "--systems", "bogus"]) == 2
    assert "unknown decentralized system" in capsys.readouterr().err


def test_cache_info_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path)
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries         : 0" in capsys.readouterr().out
    main(
        [
            "run",
            "fig7",
            "--quick",
            "--serial",
            "--cache",
            "--cache-dir",
            cache_dir,
        ]
    )
    capsys.readouterr()
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries         : 2" in capsys.readouterr().out
    assert main(["cache", "--clear", "--cache-dir", cache_dir]) == 0
    assert "removed 2" in capsys.readouterr().out
