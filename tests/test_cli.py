"""Smoke tests for the ``python -m repro`` CLI."""


from repro.cli import main


def test_list_prints_every_figure(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig3", "fig6", "fig12", "headline"):
        assert name in out


def test_run_rejects_unknown_figure(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_run_quick_figure_with_cache(tmp_path, capsys):
    args = [
        "run",
        "fig7",
        "--quick",
        "--serial",
        "--cache",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "Fig 7" in first
    assert "2 executed" in first

    assert main(args) == 0
    second = capsys.readouterr().out
    assert "2 cache hit(s)" in second
    assert "0 executed" in second
    # The measured table itself is identical across cached re-runs.
    assert [l for l in first.splitlines() if "===" in l or "." in l][:5] == [
        l for l in second.splitlines() if "===" in l or "." in l
    ][:5]


def test_sweep_command(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--systems",
                "hopper",
                "--utilizations",
                "0.6",
                "--seeds",
                "42",
                "--num-jobs",
                "10",
                "--total-slots",
                "40",
                "--serial",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "hopper" in out and "1 runs requested" in out


def test_sweep_rejects_unknown_system(capsys):
    assert main(["sweep", "--systems", "bogus"]) == 2
    assert "unknown decentralized system" in capsys.readouterr().err


def test_cache_stats_and_prune_commands(tmp_path, capsys):
    cache_dir = str(tmp_path)
    main(
        [
            "run",
            "fig7",
            "--quick",
            "--serial",
            "--cache",
            "--cache-dir",
            cache_dir,
        ]
    )
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "Cache stats" in out
    assert "2 entr(ies)" in out

    # A stale version namespace appears in stats and prune removes it.
    from repro.sweep import ResultCache, RunSpec, WorkloadParams

    stale = ResultCache(root=cache_dir, version_tag="v0.0.0-stale")
    spec = RunSpec(
        "decentralized",
        "hopper",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=10,
            utilization=0.6,
            total_slots=40,
            max_phase_tasks=20,
        ),
    )
    stale.put(spec, spec.execute())
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "v0.0.0-stale" in capsys.readouterr().out

    assert main(["cache", "prune", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 entr(ies)" in out
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries         : 2" in capsys.readouterr().out

    assert (
        main(
            [
                "cache",
                "prune",
                "--older-than",
                "0",
                "--cache-dir",
                cache_dir,
            ]
        )
        == 0
    )
    assert "pruned 2 entr(ies)" in capsys.readouterr().out


def test_cache_rejects_conflicting_flags(tmp_path, capsys):
    cache_dir = str(tmp_path)
    assert main(["cache", "stats", "--clear", "--cache-dir", cache_dir]) == 2
    assert "--clear" in capsys.readouterr().err
    assert main(["cache", "prune", "--clear", "--cache-dir", cache_dir]) == 2
    capsys.readouterr()
    assert (
        main(["cache", "--older-than", "30", "--cache-dir", cache_dir]) == 2
    )
    assert "--older-than" in capsys.readouterr().err


def test_cache_info_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path)
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries         : 0" in capsys.readouterr().out
    main(
        [
            "run",
            "fig7",
            "--quick",
            "--serial",
            "--cache",
            "--cache-dir",
            cache_dir,
        ]
    )
    capsys.readouterr()
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries         : 2" in capsys.readouterr().out
    assert main(["cache", "--clear", "--cache-dir", cache_dir]) == 0
    assert "removed 2" in capsys.readouterr().out


def test_trace_capture_and_export(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.jsonl")
    chrome_path = str(tmp_path / "trace.chrome.json")
    assert main(
        [
            "trace", "capture",
            "--num-jobs", "8",
            "--total-slots", "40",
            "--output", trace_path,
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "trace record(s)" in out

    assert main(
        ["trace", "export", trace_path, "--output", chrome_path]
    ) == 0
    out = capsys.readouterr().out
    assert "trace event(s)" in out
    import json

    doc = json.loads(open(chrome_path).read())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i"}


def test_trace_capture_rejects_unknown_system(capsys):
    assert main(["trace", "capture", "--system", "bogus"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_trace_export_rejects_missing_input(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert main(["trace", "export", missing]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_study_profile_prints_phase_table(capsys, monkeypatch):
    import os

    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert main(
        ["study", "fig6", "--quick", "--serial", "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine.dispatch" in out
    assert "msg.sent" in out
    # The env toggle must not leak past the command.
    assert "REPRO_OBS" not in os.environ


def test_batch_study_profile_reports_allocation_phases(capsys, monkeypatch):
    # The batch plane rides the incremental allocation engine; its
    # profile must break out the per-round allocation cost (state
    # refresh + policy solve) so regressions there are visible.
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert main(
        ["study", "batch_rounds", "--quick", "--serial", "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "policy.allocate" in out
    assert "alloc.refresh" in out


def test_bench_trajectory_reports_committed_history(tmp_path, capsys):
    # The repo's own history carries BENCH_scale.json points.
    report_path = str(tmp_path / "trajectory.md")
    assert main(["bench", "trajectory", "--output", report_path]) == 0
    out = capsys.readouterr().out
    assert "BENCH_scale.json" in out
    assert "# Benchmark trajectory" in open(report_path).read()


def test_bench_trajectory_outside_git_is_nonfatal(tmp_path, capsys):
    assert main(
        ["bench", "trajectory", "--repo-root", str(tmp_path)]
    ) == 0
    assert "unavailable" in capsys.readouterr().err


def test_workload_preview_prints_calibration_and_arrival_table(capsys):
    assert main(
        [
            "workload",
            "preview",
            "spark-facebook",
            "--rho",
            "0.85",
            "--total-slots",
            "80",
            "--windows",
            "4",
            "--window",
            "5",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "calibrated rate" in out
    assert "expected utilization : 85%" in out
    for name in ("poisson", "diurnal", "bursty"):
        assert name in out
    # 4 preview windows plus the totals row.
    assert "[15, 20)" in out
    assert "total" in out


def test_workload_preview_is_deterministic(capsys):
    args = ["workload", "preview", "spark-facebook", "--rho", "0.9"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_workload_preview_rejects_bad_inputs(capsys):
    assert main(["workload", "preview", "no-such-profile"]) == 2
    assert "unknown workload profile" in capsys.readouterr().err
    assert main(
        ["workload", "preview", "spark-facebook", "--rho", "1.5"]
    ) == 2
    assert "--rho must be in (0, 1)" in capsys.readouterr().err


def test_bench_trajectory_default_names_include_serving():
    from repro.cli import build_parser
    from repro.obs.trajectory import DEFAULT_BENCH_NAMES

    args = build_parser().parse_args(["bench", "trajectory"])
    assert "serving" in DEFAULT_BENCH_NAMES
    assert args.names == ",".join(DEFAULT_BENCH_NAMES)
