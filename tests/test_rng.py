"""Tests for the reproducible random-source hierarchy."""

from repro.simulation.rng import RandomSource


def test_same_seed_same_stream():
    a = RandomSource(seed=1)
    b = RandomSource(seed=1)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RandomSource(seed=1)
    b = RandomSource(seed=2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_child_streams_are_stable_across_parent_draws():
    a = RandomSource(seed=5)
    child_before = a.child("x")
    first = child_before.random()

    b = RandomSource(seed=5)
    for _ in range(100):
        b.random()  # drain the parent
    child_after = b.child("x")
    assert child_after.random() == first


def test_child_is_cached():
    source = RandomSource(seed=0)
    assert source.child("a") is source.child("a")


def test_children_with_different_names_are_independent():
    source = RandomSource(seed=0)
    xs = [source.child("a").random() for _ in range(5)]
    ys = [source.child("b").random() for _ in range(5)]
    assert xs != ys


def test_child_seed_is_process_stable():
    # sha256-derived, not hash()-derived: a known-good pinned value.
    source = RandomSource(seed=0)
    child = source.child("generator")
    again = RandomSource(seed=0).child("generator")
    assert child.seed == again.seed


def test_nested_children():
    source = RandomSource(seed=3)
    grandchild = source.child("a").child("b")
    same = RandomSource(seed=3).child("a").child("b")
    assert grandchild.random() == same.random()


def test_passthrough_helpers():
    source = RandomSource(seed=9)
    assert 0.0 <= source.random() <= 1.0
    assert 1 <= source.randint(1, 5) <= 5
    assert 2.0 <= source.uniform(2.0, 3.0) <= 3.0
    assert source.choice([7]) == 7
    assert sorted(source.sample(range(10), 3))[0] >= 0
    items = [1, 2, 3]
    source.shuffle(items)
    assert sorted(items) == [1, 2, 3]
    assert source.expovariate(1.0) >= 0.0
