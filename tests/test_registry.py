"""Tests for repro.registry: lookup errors, knob schemas, pluggability,
and CLI agreement with registry contents."""

import pytest

from repro import registry
from repro.cli import main
from repro.speculation import make_speculation_policy
from repro.stragglers import make_straggler_model
from repro.stragglers.model import NoStragglerModel, ParetoRedrawStragglerModel
from repro.sweep import RunSpec, WorkloadParams
from repro.workload.generator import FACEBOOK_PROFILE, profile_by_name


TINY = WorkloadParams(
    profile="spark-facebook",
    num_jobs=10,
    utilization=0.6,
    total_slots=40,
    max_phase_tasks=20,
)


# -- unknown-name errors ----------------------------------------------------


def test_unknown_kind_error_names_registry_and_lists_entries():
    with pytest.raises(ValueError) as excinfo:
        RunSpec("bogus-kind", "hopper", TINY)
    message = str(excinfo.value)
    assert "spec kind" in message
    assert "'bogus-kind'" in message
    for kind in ("centralized", "decentralized", "single_job"):
        assert kind in message


def test_unknown_system_error_names_registry_and_lists_entries():
    with pytest.raises(ValueError) as excinfo:
        RunSpec("decentralized", "bogus-system", TINY)
    message = str(excinfo.value)
    assert "decentralized system" in message
    for system in ("sparrow", "sparrow-srpt", "hopper"):
        assert system in message


def test_unknown_speculation_error_lists_entries():
    with pytest.raises(ValueError) as excinfo:
        make_speculation_policy("bogus-speculation")
    message = str(excinfo.value)
    assert "speculation policy" in message
    for name in ("late", "mantri", "grass", "none"):
        assert name in message


def test_unknown_profile_error_lists_entries():
    with pytest.raises(ValueError) as excinfo:
        profile_by_name("bogus-profile")
    message = str(excinfo.value)
    assert "workload profile" in message
    assert "facebook" in message and "bing" in message


def test_unknown_straggler_model_error():
    with pytest.raises(ValueError) as excinfo:
        make_straggler_model("bogus-model")
    message = str(excinfo.value)
    assert "straggler model" in message
    assert "pareto-redraw" in message


def test_unknown_study_error():
    with pytest.raises(ValueError) as excinfo:
        registry.studies().get("bogus-study")
    message = str(excinfo.value)
    assert "study" in message
    assert "fig6" in message


# -- registration rules -----------------------------------------------------


def test_duplicate_registration_raises():
    reg = registry.Registry("test thing")
    reg.register("alpha", object(), description="first")
    with pytest.raises(registry.DuplicateEntryError) as excinfo:
        reg.register("alpha", object(), description="second")
    assert "test thing" in str(excinfo.value)
    assert "alpha" in str(excinfo.value)
    # replace=True is the explicit override path.
    reg.register("alpha", object(), description="third", replace=True)
    assert reg.get("alpha").description == "third"


def test_registry_rejects_bad_names():
    reg = registry.Registry("test thing")
    with pytest.raises(registry.RegistryError):
        reg.register("", object())
    with pytest.raises(registry.RegistryError):
        reg.register(None, object())


def test_unregister_removes_entry():
    reg = registry.Registry("test thing")
    reg.register("alpha", object())
    assert "alpha" in reg
    reg.unregister("alpha")
    assert "alpha" not in reg
    reg.unregister("alpha")  # idempotent


def test_registry_iteration_and_order():
    reg = registry.Registry("test thing")
    reg.register("b", 1)
    reg.register("a", 2)
    assert reg.names() == ("b", "a")  # insertion order, not sorted
    assert list(reg) == ["b", "a"]
    assert len(reg) == 2


# -- knob schemas -----------------------------------------------------------


def test_knob_schema_rejects_wrong_types():
    with pytest.raises(ValueError, match="probe_ratio"):
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": "fast"}
        )
    with pytest.raises(ValueError, match="with_locality"):
        RunSpec(
            "centralized", "hopper", TINY, knobs={"with_locality": 1}
        )  # int is not a flag
    with pytest.raises(ValueError, match="refusal_threshold"):
        RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"refusal_threshold": 2.5},
        )
    # int where float is expected is fine
    RunSpec("decentralized", "hopper", TINY, knobs={"probe_ratio": 4})


def test_knob_validator_rejects_out_of_range():
    with pytest.raises(ValueError, match="probe_ratio"):
        RunSpec(
            "decentralized", "hopper", TINY, knobs={"probe_ratio": -1.0}
        )
    with pytest.raises(ValueError, match="epsilon"):
        RunSpec("centralized", "hopper", TINY, knobs={"epsilon": 3.0})
    with pytest.raises(ValueError, match="speculation_mode"):
        RunSpec(
            "centralized",
            "hopper",
            TINY,
            knobs={"speculation_mode": "warp-speed"},
        )


def test_unknown_knob_error_lists_schema():
    with pytest.raises(ValueError) as excinfo:
        RunSpec("decentralized", "hopper", TINY, knobs={"bogus_knob": 1})
    message = str(excinfo.value)
    assert "bogus_knob" in message
    assert "probe_ratio" in message


def test_unknown_registry_name_knob_error_lists_family_members():
    """A knob naming a registry entry must list the registered names of
    that family on rejection, not just echo the bad name."""
    with pytest.raises(registry.KnobError) as excinfo:
        RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"straggler_model": "bogus"},
        )
    message = str(excinfo.value)
    assert "'bogus'" in message
    for name in registry.STRAGGLER_MODELS.names():
        assert name in message

    with pytest.raises(registry.KnobError) as excinfo:
        RunSpec(
            "centralized",
            "hopper",
            TINY,
            knobs={"blacklist_policy": "bogus"},
        )
    message = str(excinfo.value)
    assert "'bogus'" in message
    for name in registry.BLACKLIST_POLICIES.names():
        assert name in message


def test_knob_choices_track_late_registrations():
    """The choices listing is live: a policy registered after the knob
    schema was built validates (and appears in the error message)."""
    registry.BLACKLIST_POLICIES.register(
        "plugin-policy", lambda num_machines=None, **k: None,
        description="test plugin",
    )
    try:
        spec = RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"blacklist_policy": "plugin-policy"},
        )
        assert dict(spec.knobs)["blacklist_policy"] == "plugin-policy"
        with pytest.raises(registry.KnobError) as excinfo:
            RunSpec(
                "decentralized",
                "hopper",
                TINY,
                knobs={"blacklist_policy": "bogus"},
            )
        assert "plugin-policy" in str(excinfo.value)
    finally:
        registry.BLACKLIST_POLICIES.unregister("plugin-policy")


def test_blacklist_knobs_are_validated():
    for knobs in (
        {"strike_threshold": 0},
        {"strike_window": 0.0},
        {"eviction_cap": 0.0},
        {"eviction_cap": 1.5},
        {"strike_threshold": 2.5},
    ):
        with pytest.raises(registry.KnobError):
            RunSpec("centralized", "hopper", TINY, knobs=knobs)
    spec = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={
            "blacklist_policy": "strikes",
            "strike_threshold": 2,
            "strike_window": 5.0,
            "eviction_cap": 0.1,
        },
    )
    assert dict(spec.knobs)["blacklist_policy"] == "strikes"


def test_make_blacklist_policy_factory():
    from repro.cluster.policy import StrikeBlacklistPolicy

    assert registry.make_blacklist_policy("none") is None
    policy = registry.make_blacklist_policy(
        "strikes", num_machines=100, strike_threshold=2, eviction_cap=0.5
    )
    assert isinstance(policy, StrikeBlacklistPolicy)
    assert policy.max_evictions == 50
    assert policy.probation == 0.0
    probation = registry.make_blacklist_policy(
        "strikes-probation", num_machines=100, strike_window=5.0
    )
    assert probation.probation == 20.0  # four evidence windows
    with pytest.raises(registry.KnobError, match="num_machines"):
        registry.make_blacklist_policy("strikes")


def test_straggler_model_knob_is_validated_and_runs():
    with pytest.raises(ValueError, match="straggler_model"):
        RunSpec(
            "decentralized",
            "hopper",
            TINY,
            knobs={"straggler_model": "bogus"},
        )
    spec = RunSpec(
        "decentralized",
        "hopper",
        TINY,
        knobs={"straggler_model": "none"},
    )
    result = spec.execute()
    assert result.num_jobs == TINY.num_jobs


# -- factories --------------------------------------------------------------


def test_make_straggler_model_builds_profile_parameterized_models():
    model = make_straggler_model("pareto-redraw", FACEBOOK_PROFILE)
    assert isinstance(model, ParetoRedrawStragglerModel)
    assert model.beta == FACEBOOK_PROFILE.beta
    assert isinstance(make_straggler_model("none"), NoStragglerModel)


def test_speculation_off_is_alias_of_none():
    from repro.speculation.none import NoSpeculation

    assert isinstance(make_speculation_policy("off"), NoSpeculation)
    assert isinstance(make_speculation_policy("none"), NoSpeculation)


# -- pluggability -----------------------------------------------------------


def test_registered_system_is_usable_end_to_end():
    """A system registered after import is constructible as a RunSpec
    and executable through the harness with no other edits."""
    from repro.centralized.policies import FairPolicy

    registry.CENTRALIZED_SYSTEMS.register(
        "test-fair-clone",
        lambda epsilon: FairPolicy(),
        description="test-only clone of the fair policy",
    )
    try:
        spec = RunSpec("centralized", "test-fair-clone", TINY)
        clone = spec.execute()
        reference = RunSpec("centralized", "fair", TINY).execute()
        assert clone.jobs == reference.jobs
    finally:
        registry.CENTRALIZED_SYSTEMS.unregister("test-fair-clone")
    with pytest.raises(ValueError):
        RunSpec("centralized", "test-fair-clone", TINY)


def test_registered_speculation_policy_is_resolvable():
    from repro.speculation.none import NoSpeculation

    registry.SPECULATION_POLICIES.register(
        "test-noop", lambda **kwargs: NoSpeculation()
    )
    try:
        assert isinstance(
            make_speculation_policy("test-noop"), NoSpeculation
        )
        spec = RunSpec(
            "decentralized", "hopper", TINY, speculation="test-noop"
        )
        assert spec.speculation == "test-noop"
    finally:
        registry.SPECULATION_POLICIES.unregister("test-noop")


def test_registered_profile_is_resolvable_by_workload_params():
    from repro.workload.generator import WorkloadProfile

    profile = WorkloadProfile(
        name="test-profile",
        beta=1.5,
        task_scale=1.0,
        job_size=FACEBOOK_PROFILE.job_size,
        dag_length=FACEBOOK_PROFILE.dag_length,
    )
    registry.WORKLOAD_PROFILES.register("test-profile", profile)
    try:
        assert profile_by_name("test-profile") is profile
        params = WorkloadParams(profile="test-profile", num_jobs=5)
        assert params.to_workload_spec().profile is profile
    finally:
        registry.WORKLOAD_PROFILES.unregister("test-profile")


# -- CLI agreement ----------------------------------------------------------


def test_repro_list_output_matches_registry_contents(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for kind_entry in registry.SPEC_KINDS.entries():
        kind = kind_entry.factory
        assert kind.name in out
        for system in kind.systems.names():
            assert system in out
        for knob in kind.knobs:
            assert knob in out
    for name in registry.SPECULATION_POLICIES.names():
        assert name in out
    for name in registry.STRAGGLER_MODELS.names():
        assert name in out
    for name in registry.WORKLOAD_PROFILES.names():
        assert name in out
    for name in registry.studies().names():
        assert name in out


# -- plane-tagged systems table ---------------------------------------------


def test_systems_table_planes_are_live_views():
    """SYSTEMS is a view over the per-plane registries, not a copy:
    the old names keep working and stay in sync."""
    assert registry.SYSTEMS.plane("centralized") is registry.CENTRALIZED_SYSTEMS
    assert (
        registry.SYSTEMS.plane("decentralized")
        is registry.DECENTRALIZED_SYSTEMS
    )
    assert registry.SYSTEMS.plane("batch") is registry.BATCH_SYSTEMS
    assert registry.SYSTEMS.plane("serving") is registry.SERVING_SYSTEMS
    with pytest.raises(registry.UnknownEntryError, match="scheduler plane"):
        registry.SYSTEMS.plane("bogus-plane")


def test_systems_table_entries_carry_planes():
    entries = registry.SYSTEMS.entries()
    by_qualified = {entry.qualified: entry for entry in entries}
    assert "centralized/hopper" in by_qualified
    assert "decentralized/sparrow-lb" in by_qualified
    assert "decentralized/sparrow-po2" in by_qualified
    assert "batch/hopper" in by_qualified
    for plane in ("centralized", "decentralized", "batch"):
        view = registry.SYSTEMS.plane(plane)
        tagged = [e.name for e in entries if e.plane == plane]
        assert tagged == list(view.names())


def test_systems_table_get_resolves_qualified_and_bare_names():
    entry = registry.SYSTEMS.get("batch/hopper")
    assert entry.plane == "batch"
    assert entry.name == "hopper"
    assert registry.SYSTEMS.get("hopper", plane="batch").qualified == (
        "batch/hopper"
    )
    # sparrow-lb exists on exactly one plane -> bare name is enough.
    assert registry.SYSTEMS.get("sparrow-lb").plane == "decentralized"


def test_systems_table_ambiguous_bare_name_lists_candidates():
    with pytest.raises(registry.RegistryError) as excinfo:
        registry.SYSTEMS.get("hopper")
    message = str(excinfo.value)
    assert "centralized/hopper" in message
    assert "batch/hopper" in message


def test_systems_table_unknown_names_raise():
    with pytest.raises(registry.UnknownEntryError):
        registry.SYSTEMS.get("bogus-system")
    with pytest.raises(registry.UnknownEntryError):
        registry.SYSTEMS.get("bogus-plane/hopper")


def test_systems_table_register_through_table_is_visible_in_view():
    registry.SYSTEMS.register(
        "batch", "test-system", object(), description="temp"
    )
    try:
        assert "test-system" in registry.BATCH_SYSTEMS
        assert registry.SYSTEMS.get("batch/test-system").description == "temp"
    finally:
        registry.BATCH_SYSTEMS.unregister("test-system")
    with pytest.raises(registry.UnknownEntryError):
        registry.SYSTEMS.get("batch/test-system")


def test_repro_plane_info_resolves_qualified_system(capsys):
    assert main(["plane", "info", "batch/hopper"]) == 0
    out = capsys.readouterr().out
    assert "batch" in out
    assert "hopper" in out
    assert "round_interval" in out


def test_repro_plane_info_rejects_ambiguous_bare_name(capsys):
    assert main(["plane", "info", "hopper"]) == 2
    err = capsys.readouterr().err
    assert "several planes" in err
