"""Tests for the synthetic trace generators and traces."""

import pytest

from repro.simulation.rng import RandomSource
from repro.workload.generator import (
    FACEBOOK_PROFILE,
    SPARK_FACEBOOK_PROFILE,
    BinnedJobSizeDistribution,
    TraceGenerator,
    WorkloadProfile,
    bin_index_for_size,
    bin_label,
)
from repro.workload.traces import Trace, arrival_rate_for_utilization, merge_traces


def test_bin_index_matches_paper_bins():
    assert bin_index_for_size(1) == 0
    assert bin_index_for_size(50) == 0
    assert bin_index_for_size(51) == 1
    assert bin_index_for_size(150) == 1
    assert bin_index_for_size(151) == 2
    assert bin_index_for_size(500) == 2
    assert bin_index_for_size(501) == 3
    assert bin_index_for_size(100000) == 3


def test_bin_labels():
    assert bin_label(0) == "1-50"
    assert bin_label(3).startswith(">")


def test_binned_job_sizes_cover_all_bins():
    dist = BinnedJobSizeDistribution(bin_weights=(0.25, 0.25, 0.25, 0.25))
    rng = RandomSource(seed=0).rng
    seen = set()
    for _ in range(2000):
        seen.add(bin_index_for_size(int(round(dist.sample(rng)))))
    assert seen == {0, 1, 2, 3}


def test_binned_job_sizes_validates_weights():
    with pytest.raises(ValueError):
        BinnedJobSizeDistribution(bin_weights=(1.0, 1.0))
    with pytest.raises(ValueError):
        BinnedJobSizeDistribution(bin_weights=(0.0, 0.0, 0.0, 0.0))


def test_generator_is_deterministic():
    a = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=5))
    b = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=5))
    jobs_a = a.generate(20, interarrival_mean=1.0)
    jobs_b = b.generate(20, interarrival_mean=1.0)
    assert [j.num_tasks for j in jobs_a] == [j.num_tasks for j in jobs_b]
    assert [j.arrival_time for j in jobs_a] == [j.arrival_time for j in jobs_b]


def test_generator_task_ids_are_globally_unique():
    gen = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=1))
    jobs = gen.generate(20, interarrival_mean=1.0)
    ids = [t.task_id for j in jobs for t in j.all_tasks()]
    assert len(ids) == len(set(ids))


def test_generator_respects_max_phase_tasks():
    gen = TraceGenerator(
        FACEBOOK_PROFILE,
        random_source=RandomSource(seed=2),
        max_phase_tasks=40,
    )
    jobs = gen.generate(30, interarrival_mean=1.0)
    for job in jobs:
        assert job.phases[0].num_tasks <= 40


def test_generator_dag_shrinks_downstream():
    gen = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=3))
    jobs = gen.generate(40, interarrival_mean=1.0)
    for job in jobs:
        sizes = [p.num_tasks for p in job.phases]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))


def test_generator_intermediate_data_only_on_non_final_phases():
    gen = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=4))
    for job in gen.generate(30, interarrival_mean=1.0):
        assert job.phases[-1].output_data == 0.0
        for phase in job.phases[:-1]:
            assert phase.output_data > 0.0


def test_generator_recurring_names():
    profile = WorkloadProfile(
        name="t",
        beta=1.5,
        task_scale=1.0,
        job_size=FACEBOOK_PROFILE.job_size,
        dag_length=FACEBOOK_PROFILE.dag_length,
        recurring_fraction=1.0,
        num_recurring_families=3,
    )
    gen = TraceGenerator(profile, random_source=RandomSource(seed=5))
    names = {j.name for j in gen.generate(30, interarrival_mean=1.0)}
    assert len(names) <= 3


def test_generator_locality_placement():
    gen = TraceGenerator(
        FACEBOOK_PROFILE,
        random_source=RandomSource(seed=6),
        num_machines=20,
        replicas=3,
    )
    job = gen.next_job(0.0)
    for task in job.phases[0].tasks:
        assert len(task.preferred_machines) == 3
        assert all(0 <= m < 20 for m in task.preferred_machines)


def test_mean_job_work_positive_and_stable():
    gen = TraceGenerator(FACEBOOK_PROFILE, random_source=RandomSource(seed=7))
    w1 = gen.mean_job_work(samples=100)
    w2 = gen.mean_job_work(samples=100)
    assert w1 > 0
    assert w1 == w2  # same probe stream


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad",
            beta=-1.0,
            task_scale=1.0,
            job_size=FACEBOOK_PROFILE.job_size,
            dag_length=FACEBOOK_PROFILE.dag_length,
        )


# -- traces --------------------------------------------------------------------

def _small_trace(seed=0, n=30):
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE, random_source=RandomSource(seed=seed)
    )
    return Trace(jobs=gen.generate(n, interarrival_mean=1.0))


def test_trace_sorted_by_arrival():
    trace = _small_trace()
    arrivals = [j.arrival_time for j in trace]
    assert arrivals == sorted(arrivals)


def test_arrival_rate_for_utilization():
    rate = arrival_rate_for_utilization(
        mean_job_work=100.0, total_slots=50, utilization=0.5
    )
    assert rate == pytest.approx(0.25)
    with pytest.raises(ValueError):
        arrival_rate_for_utilization(0.0, 50, 0.5)
    with pytest.raises(ValueError):
        arrival_rate_for_utilization(10.0, 50, 1.5)


def test_rescaled_to_utilization_hits_target():
    trace = _small_trace(n=60)
    rescaled = trace.rescaled_to_utilization(total_slots=100, utilization=0.7)
    assert rescaled.offered_utilization(100) == pytest.approx(0.7, rel=1e-6)


def test_rescaled_preserves_job_count_and_work():
    trace = _small_trace(n=40)
    rescaled = trace.rescaled_to_utilization(total_slots=100, utilization=0.5)
    assert len(rescaled) == len(trace)
    assert rescaled.total_work == pytest.approx(trace.total_work)


def test_fresh_copy_clears_runtime_state():
    trace = _small_trace(n=5)
    job = trace.jobs[0]
    job.finish_time = 1.0
    task = job.phases[0].tasks[0]
    from repro.workload.task import TaskState

    task.state = TaskState.FINISHED
    job.phases[0].mark_task_finished(task.size)
    fresh = trace.fresh_copy()
    assert fresh.jobs[0].finish_time is None
    assert fresh.jobs[0].remaining_tasks() == job.num_tasks
    # original untouched
    assert trace.jobs[0].finish_time == 1.0


def test_merge_traces_interleaves():
    a = _small_trace(seed=1, n=10)
    b = _small_trace(seed=2, n=10)
    merged = merge_traces([a, b])
    assert len(merged) == 20
    arrivals = [j.arrival_time for j in merged]
    assert arrivals == sorted(arrivals)


def test_merge_traces_does_not_share_jobs_with_sources():
    """Regression: replaying a merged trace must not mutate the originals."""
    from repro.workload.task import TaskState

    a = _small_trace(seed=1, n=5)
    b = _small_trace(seed=2, n=5)
    merged = merge_traces([a, b])
    assert all(
        merged_job is not source_job
        for merged_job in merged.jobs
        for source_job in list(a.jobs) + list(b.jobs)
    )
    # Simulate a replay mutating the merged trace's runtime state.
    for job in merged.jobs:
        job.finish_time = 99.0
        task = job.phases[0].tasks[0]
        task.state = TaskState.FINISHED
        job.phases[0].mark_task_finished(task.size)
    for source_job in list(a.jobs) + list(b.jobs):
        assert source_job.finish_time is None
        assert source_job.remaining_tasks() == source_job.num_tasks
        assert all(
            t.state is TaskState.PENDING for t in source_job.all_tasks()
        )


def test_merge_traces_copies_per_occurrence():
    """merge([a, a]) must yield distinct Job objects with unique ids,
    not two aliases of the same clone."""
    a = _small_trace(seed=1, n=5)
    merged = merge_traces([a, a])
    assert len(merged) == 10
    assert len({id(j) for j in merged.jobs}) == 10
    ids = [j.job_id for j in merged.jobs]
    assert len(set(ids)) == 10


def test_merge_traces_renumbers_colliding_job_ids():
    """Traces from independent generators both number jobs from 0; the
    merged (copied) jobs must get unique ids so a replay can key by id."""
    a = _small_trace(seed=1, n=5)
    b = _small_trace(seed=2, n=5)
    merged = merge_traces([a, b])
    ids = [j.job_id for j in merged.jobs]
    assert len(set(ids)) == len(ids)
    for job in merged.jobs:
        assert all(t.job_id == job.job_id for t in job.all_tasks())
    # sources keep their original numbering
    assert sorted(j.job_id for j in a.jobs) == list(range(5))
    assert sorted(j.job_id for j in b.jobs) == list(range(5))


def test_merge_traces_resets_runtime_state():
    """Merging already-replayed traces yields a replayable trace."""
    a = _small_trace(seed=3, n=4)
    a.jobs[0].finish_time = 12.0
    merged = merge_traces([a])
    assert all(j.finish_time is None for j in merged.jobs)
    assert all(
        j.remaining_tasks() == j.num_tasks for j in merged.jobs
    )
