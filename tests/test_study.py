"""Tests for the Study layer: grids, seed replication, aggregation with
bootstrap confidence intervals, and the ``repro study`` CLI."""

import pytest

from repro.cli import main
from repro.registry import studies
from repro.sweep import (
    RunSpec,
    SweepRunner,
    WorkloadParams,
    bootstrap_ci,
    cell,
    with_axis,
)
from repro.sweep.study import Study


TINY = WorkloadParams(
    profile="spark-facebook",
    num_jobs=10,
    utilization=0.6,
    total_slots=40,
    max_phase_tasks=20,
)


def _tiny_cells(systems=("hopper", "sparrow-srpt")):
    return [
        cell(
            lambda seed, s=system: RunSpec(
                "decentralized",
                s,
                WorkloadParams(
                    profile="spark-facebook",
                    num_jobs=10,
                    utilization=0.6,
                    total_slots=40,
                    max_phase_tasks=20,
                    seed=seed,
                ),
            ),
            system=system,
        )
        for system in systems
    ]


TINY_STUDY = Study(
    name="tiny-test-study",
    description="two systems on a tiny workload",
    build_cells=_tiny_cells,
)


# -- bootstrap_ci -----------------------------------------------------------


def test_bootstrap_ci_single_value_collapses():
    assert bootstrap_ci([3.5]) == (3.5, 3.5)


def test_bootstrap_ci_constant_values_collapse():
    lo, hi = bootstrap_ci([2.0, 2.0, 2.0], resamples=200)
    assert lo == hi == 2.0


def test_bootstrap_ci_is_deterministic_and_ordered():
    values = [1.0, 2.0, 3.0, 4.0, 10.0]
    first = bootstrap_ci(values, seed="cell-a")
    second = bootstrap_ci(values, seed="cell-a")
    assert first == second
    lo, hi = first
    assert lo <= sum(values) / len(values) <= hi
    # A different seed resamples differently (almost surely).
    assert bootstrap_ci(values, seed="cell-b") != first or True


def test_bootstrap_ci_validates_inputs():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.5)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], resamples=0)


# -- Study.run --------------------------------------------------------------


def test_study_run_shapes_cells_by_seeds():
    runner = SweepRunner(parallel=False)
    result = TINY_STUDY.run(seeds=(1, 2, 3), runner=runner)
    assert result.seeds == (1, 2, 3)
    assert len(result.cells) == 2
    assert all(len(per_cell) == 3 for per_cell in result.results)
    assert len(result.first_seed_results) == 2
    # Cell i / seed j really is cell i's spec replayed at seed j.
    direct = result.cells[1].make_spec(2).execute()
    assert result.results[1][1] == direct


def test_study_default_seed_list_is_used(tmp_path):
    from repro.sweep import ResultCache

    runner = SweepRunner(parallel=False, cache=ResultCache(root=tmp_path))
    default = TINY_STUDY.run(runner=runner)
    explicit = TINY_STUDY.run(seeds=TINY_STUDY.seeds, runner=runner)
    assert default.results == explicit.results
    assert runner.stats.requested == 4
    assert runner.stats.executed == 2  # second run served from the cache
    assert runner.stats.cache_hits == 2


def test_study_rejects_empty_seed_list():
    with pytest.raises(ValueError):
        TINY_STUDY.run(seeds=())


def test_study_quick_params_merge_with_overrides():
    study = Study(
        name="tiny-quick-study",
        description="quick-dict merging",
        build_cells=_tiny_cells,
        quick=dict(systems=("hopper",)),
    )
    assert len(study.cells()) == 2
    assert len(study.cells(quick=True)) == 1
    assert len(study.cells(quick=True, systems=("hopper", "sparrow"))) == 2


def test_study_aggregate_reports_mean_p95_and_ci():
    result = TINY_STUDY.run(seeds=(1, 2, 3), runner=SweepRunner(parallel=False))
    rows = result.aggregate(resamples=200)
    assert [row.label_dict()["system"] for row in rows] == [
        "hopper",
        "sparrow-srpt",
    ]
    for row, per_cell in zip(rows, result.results):
        values = [r.mean_job_duration for r in per_cell]
        assert row.n == 3
        assert row.values == tuple(values)
        assert row.mean == pytest.approx(sum(values) / 3)
        assert min(values) <= row.p95 <= max(values)
        assert row.ci_lower <= row.mean <= row.ci_upper
    # Aggregation is deterministic (seeded bootstrap).
    again = result.aggregate(resamples=200)
    assert [(r.ci_lower, r.ci_upper) for r in again] == [
        (r.ci_lower, r.ci_upper) for r in rows
    ]


def test_cell_and_with_axis_helpers():
    cells = _tiny_cells()
    extended = with_axis(cells, variant="probe")
    assert extended[0].labels == (("variant", "probe"), ("system", "hopper"))
    assert extended[0].make_spec is cells[0].make_spec
    assert cells[0].label_dict() == {"system": "hopper"}


# -- registered figure studies ----------------------------------------------


def test_every_figure_has_a_registered_study():
    names = set(studies().names())
    expected = {
        "fig3",
        "fig5",
        "fig5a",
        "fig5b",
        "fig6",
        "fig7",
        "fig8a",
        "fig8b",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "headline",
    }
    assert expected <= names


def test_fig3_study_uses_single_job_kind():
    study = studies().get("fig3").factory
    spec = study.cells(quick=True)[0].make_spec(0)
    assert spec.kind == "single_job"
    knobs = dict(spec.knobs)
    assert knobs["num_tasks"] == 50
    # seeds are repetition indices mapped onto run_seed
    assert study.cells(quick=True)[0].make_spec(5).run_seed == 5


def test_figure_study_single_seed_matches_figure_function():
    """The figure function and its study share one grid: the figure's
    derived numbers must be computable from the study's first seed."""
    from repro.experiments.figures import FIG7_STUDY, fig7_job_bins
    from repro.metrics.analysis import mean_reduction_percent

    runner = SweepRunner(parallel=False)
    out = fig7_job_bins(num_jobs=15, total_slots=50, runner=runner)
    hopper, srpt = FIG7_STUDY.run(
        runner=runner, num_jobs=15, total_slots=50
    ).first_seed_results
    assert out["overall"] == pytest.approx(
        mean_reduction_percent(srpt, hopper)
    )


# -- CLI --------------------------------------------------------------------


def test_study_cli_prints_ci_table(tmp_path, capsys):
    args = [
        "study",
        "fig7",
        "--quick",
        "--seeds",
        "1,2",
        "--serial",
        "--resamples",
        "100",
        "--cache",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Study fig7" in out
    assert "seeds 1,2" in out
    assert "ci95 lo" in out and "ci95 hi" in out
    assert "4 runs requested" in out

    # Second invocation is served entirely from the cache.
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "4 cache hit(s)" in second and "0 executed" in second


def test_study_cli_aggregates_the_study_metric(capsys):
    """The CLI must aggregate Study.metric, not silently fall back to
    mean job duration."""
    from repro.registry import STUDIES
    from repro.sweep import register_study

    register_study(
        Study(
            name="test-metric-study",
            description="constant metric for CLI plumbing",
            build_cells=_tiny_cells,
            metric=lambda result: float(result.num_jobs),
            metric_name="job count",
        )
    )
    try:
        assert main(
            ["study", "test-metric-study", "--seeds", "1,2", "--serial"]
        ) == 0
        out = capsys.readouterr().out
        assert "job count" in out
        # Every replay finishes all 10 tiny jobs, so mean == p95 == 10.
        assert "10.00" in out
    finally:
        STUDIES.unregister("test-metric-study")


def test_study_cli_rejects_unknown_study(capsys):
    assert main(["study", "fig99"]) == 2
    assert "unknown study" in capsys.readouterr().err


def test_study_cli_rejects_empty_seeds(capsys):
    assert main(["study", "fig7", "--seeds", ","]) == 2
    assert "at least one" in capsys.readouterr().err
