"""Unit tests for the scale-out machinery added with the scale study:
engine batching/compaction, order-preserving message coalescing,
incremental speculation bookkeeping, straggler batch draws, the
machine-correlated registry wiring, and the CI regression gate."""

import importlib.util
import json
import random
from pathlib import Path

import pytest

from repro import registry
from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
from repro.decentralized.simulator import DecentralizedSimulator
from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.rng import RandomSource
from repro.speculation import LATE
from repro.speculation.base import JobExecutionView
from repro.stragglers.model import (
    MachineCorrelatedStragglerModel,
    NoStragglerModel,
    ParetoRedrawStragglerModel,
    ParetoStragglerModel,
)
from repro.stragglers.progress import TaskCopy
from repro.sweep import RunSpec, WorkloadParams
from repro.workload.distributions import (
    BoundedParetoDistribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.job import make_single_phase_job
from repro.workload.traces import Trace


# -- engine ----------------------------------------------------------------

def test_schedule_many_matches_individual_schedules():
    reference, batched = Simulator(), Simulator()
    fired_ref, fired_batch = [], []
    items = [(5.0, fired_ref.append, ("a",)), (1.0, fired_ref.append, ("b",)),
             (5.0, fired_ref.append, ("c",)), (0.0, fired_ref.append, ("d",))]
    for delay, fn, args in items:
        reference.schedule(delay, fn, *args)
    batched.schedule_many(
        [(delay, fired_batch.append, args) for delay, _, args in items]
    )
    reference.run()
    batched.run()
    assert fired_ref == fired_batch == ["d", "b", "a", "c"]


def test_schedule_many_absolute_and_validation():
    sim = Simulator(start_time=10.0)
    fired = []
    sim.schedule_many(
        [(12.0, fired.append, ("x",))], absolute=True
    )
    with pytest.raises(SimulationError):
        sim.schedule_many([(5.0, fired.append, ("past",))], absolute=True)
    sim.run()
    assert fired == ["x"]


def test_large_batch_heapify_path_keeps_order():
    sim = Simulator()
    fired = []
    # Small heap + large batch triggers the extend+heapify path.
    sim.schedule(0.5, fired.append, -1)
    sim.schedule_many(
        [(float(1000 - i), fired.append, (i,)) for i in range(1000)]
    )
    sim.run()
    assert fired == [-1] + list(range(999, -1, -1))


def test_heap_compaction_drops_tombstones_and_preserves_order():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i + 1), fired.append, i) for i in range(2000)]
    for handle in handles[:1300]:
        handle.cancel()
    # Trigger compaction via a fresh schedule: >256 tombstones, > half.
    assert sim.pending_events == 2000
    sim.schedule(0.5, fired.append, -1)
    assert sim.pending_events == 701  # cancelled stubs were compacted away
    sim.run()
    assert fired == [-1] + list(range(1300, 2000))


def test_cancel_after_compaction_is_harmless():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(600)]
    for handle in handles:
        handle.cancel()
    sim.schedule(0.1, lambda: None)
    for handle in handles:
        handle.cancel()  # idempotent, even though entries are gone
    assert sim.run() == 0.1
    assert sim.events_processed == 1


def test_credit_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.credit_events(4)
    assert sim.events_processed == 5
    with pytest.raises(SimulationError):
        sim.credit_events(-1)


def test_sequence_marker_advances_on_schedule_only():
    sim = Simulator()
    before = sim.sequence_marker()
    handle = sim.schedule(1.0, lambda: None)
    assert sim.sequence_marker() == before + 1
    handle.cancel()
    assert sim.sequence_marker() == before + 1


# -- batched control-message delivery --------------------------------------

def _tiny_sim(**config_kwargs):
    defaults = dict(
        num_schedulers=1,
        worker_policy=WorkerPolicy.HOPPER,
        probe_ratio=2.0,
        epsilon=1.0,
        message_delay=0.001,
    )
    defaults.update(config_kwargs)
    job = make_single_phase_job(0, 0.0, [1.0])
    return DecentralizedSimulator(
        num_workers=2,
        speculation=lambda: LATE(),
        trace=Trace(jobs=[job]),
        straggler_model=NoStragglerModel(),
        config=DecentralizedConfig(**defaults),
        random_source=RandomSource(seed=0),
    )


def test_send_burst_coalesces_into_one_engine_event():
    sim = _tiny_sim()
    order = []
    before = sim.sim.pending_events
    for i in range(5):
        sim.send(order.append, i)
    assert sim.sim.pending_events == before + 1  # one batch event
    sim.sim.run()
    assert order == [0, 1, 2, 3, 4]
    assert sim.metrics.result.messages_sent == 5
    # Each delivered message counts as one logical event.
    assert sim.sim.events_processed == 5


def test_interleaved_schedule_closes_the_batch_but_keeps_order():
    sim = _tiny_sim()
    order = []
    sim.send(order.append, "m1")
    # An unrelated event at the same delivery tick must stay between the
    # two message batches, exactly as with one-event-per-message.
    sim.sim.schedule(0.001, order.append, "between")
    sim.send(order.append, "m2")
    sim.sim.run()
    assert order == ["m1", "between", "m2"]


def test_sends_at_different_ticks_do_not_share_a_batch():
    sim = _tiny_sim(message_delay=0.5)
    order = []
    sim.send(order.append, "early")
    sim.sim.schedule(0.25, lambda: sim.send(order.append, "late"))
    sim.sim.run()
    assert order == ["early", "late"]


# -- speculation view bookkeeping ------------------------------------------

def _copy(task, copy_id, start, duration):
    return TaskCopy(
        copy_id=copy_id,
        task=task,
        machine_id=0,
        start_time=start,
        duration=duration,
    )


def test_view_sorted_rates_match_reference_computation():
    job = make_single_phase_job(0, 0.0, [1.0, 2.0, 3.0])
    tasks = job.phases[0].tasks
    view = JobExecutionView(job=job)
    copies = [
        _copy(tasks[0], 0, start=0.0, duration=2.0),
        _copy(tasks[1], 1, start=0.0, duration=4.0),
        _copy(tasks[2], 2, start=1.0, duration=8.0),
        _copy(tasks[0], 3, start=1.0, duration=1.0),
    ]
    for copy in copies:
        view.register_copy(copy)

    def reference(now):
        return sorted(
            1.0 / c.duration
            for per_task in view.copies_by_task.values()
            for c in per_task
            if now > c.start_time
        )

    # At the most recent start tick, those copies are excluded.
    assert view.sorted_progress_rates(1.0) == reference(1.0)
    # Once time advances past it, everything is included.
    assert view.sorted_progress_rates(2.0) == reference(2.0)
    view.remove_copy(copies[1])
    assert view.sorted_progress_rates(2.0) == reference(2.0)
    view.remove_copy(copies[3])
    assert view.sorted_progress_rates(3.0) == reference(3.0)


def test_view_num_speculating_tasks_counter():
    job = make_single_phase_job(0, 0.0, [1.0, 2.0])
    tasks = job.phases[0].tasks
    view = JobExecutionView(job=job)
    first = _copy(tasks[0], 0, 0.0, 2.0)
    second = _copy(tasks[0], 1, 0.5, 2.0)
    other = _copy(tasks[1], 2, 0.0, 2.0)
    view.register_copy(first)
    view.register_copy(other)
    assert view.num_speculating_tasks == 0
    view.register_copy(second)
    assert view.num_speculating_tasks == 1
    view.remove_copy(first)
    assert view.num_speculating_tasks == 0
    view.remove_copy(second)
    view.remove_copy(other)
    assert view.num_speculating_tasks == 0


def test_median_cache_tracks_appends():
    job = make_single_phase_job(0, 0.0, [4.0])
    task = job.phases[0].tasks[0]
    view = JobExecutionView(job=job)
    assert view.estimate_new_copy_duration(task) == 4.0  # falls back to size
    view.completed_durations.extend([1.0, 3.0])
    assert view.estimate_new_copy_duration(task) == 2.0
    view.completed_durations.append(100.0)
    assert view.estimate_new_copy_duration(task) == 3.0


# -- straggler models -------------------------------------------------------

def test_slowdown_many_consumes_the_same_rng_stream():
    job = make_single_phase_job(0, 0.0, [2.0, 3.0, 5.0])
    tasks = job.phases[0].tasks
    items = [
        (tasks[0], 0, 0),
        (tasks[1], 3, 1),
        (tasks[2], 1, 2),
        (tasks[0], 2, 1),
    ]
    for model in (
        ParetoRedrawStragglerModel(beta=1.4, scale=1.0),
        ParetoStragglerModel(straggler_prob=0.5),
        MachineCorrelatedStragglerModel(num_machines=8),
        NoStragglerModel(),
    ):
        sequential = random.Random(123)
        batched = random.Random(123)
        expected = [
            model.slowdown(sequential, task, machine, attempt)
            for task, machine, attempt in items
        ]
        assert model.slowdown_many(batched, items) == expected
        # Both consumed the identical stream.
        assert sequential.random() == batched.random()


def test_cached_inverse_cdf_matches_distribution_sampling():
    """The precomputed-constant sampling paths must replay the
    distribution objects' draws bit-for-bit."""
    job = make_single_phase_job(0, 0.0, [2.0])
    task = job.phases[0].tasks[0]

    redraw = ParetoRedrawStragglerModel(beta=1.4, scale=1.5)
    reference = ParetoDistribution(shape=1.4, scale=1.5)
    a, b = random.Random(7), random.Random(7)
    for _ in range(50):
        assert redraw.slowdown(a, task, 0, 1) == reference.sample(b) / task.size

    iid = ParetoStragglerModel(
        straggler_prob=0.5, tail_shape=1.1, min_slowdown=2.0,
        max_slowdown=8.0, jitter=0.1,
    )
    tail = BoundedParetoDistribution(shape=1.1, lo=2.0, hi=8.0)
    benign = UniformDistribution(0.9, 1.1)
    a, b = random.Random(11), random.Random(11)
    for _ in range(200):
        got = iid.slowdown(a, task, 0, 1)
        if b.random() < 0.5:
            expected = tail.sample(b)
        else:
            expected = benign.sample(b)
        assert got == expected


# -- machine-correlated registration ----------------------------------------

def test_machine_correlated_is_registered():
    assert "machine-correlated" in registry.STRAGGLER_MODELS
    model = registry.make_straggler_model(
        "machine-correlated", num_machines=40
    )
    assert isinstance(model, MachineCorrelatedStragglerModel)
    assert model.num_machines == 40


def test_machine_correlated_without_num_machines_fails_loudly():
    with pytest.raises(registry.KnobError, match="num_machines"):
        registry.make_straggler_model("machine-correlated")


def test_machine_correlated_runs_through_runspec_both_kinds():
    wl = WorkloadParams(
        profile="facebook",
        num_jobs=6,
        utilization=0.6,
        total_slots=40,
        max_phase_tasks=20,
    )
    for kind, system in (("decentralized", "hopper"), ("centralized", "srpt")):
        spec = RunSpec(
            kind, system, wl, knobs={"straggler_model": "machine-correlated"}
        )
        result = spec.execute()
        assert result.num_jobs == 6
        # Deterministic: same spec, same outcome.
        assert spec.execute().mean_job_duration == result.mean_job_duration


def test_harness_wires_cluster_size_into_machine_correlated(monkeypatch):
    from repro.experiments import harness

    seen = {}
    original = registry.make_straggler_model

    def spy(name, profile=None, num_machines=None, **kwargs):
        seen["num_machines"] = num_machines
        return original(name, profile, num_machines=num_machines, **kwargs)

    monkeypatch.setattr(harness.registry, "make_straggler_model", spy)
    wspec = harness.WorkloadSpec(num_jobs=4, total_slots=24)
    trace = harness.build_trace(wspec)
    harness.run_decentralized(
        trace, "hopper", wspec, straggler_model="machine-correlated"
    )
    assert seen["num_machines"] == 24  # one slot per worker
    harness.run_centralized(
        trace,
        "srpt",
        wspec,
        straggler_model="machine-correlated",
        slots_per_machine=4,
    )
    assert seen["num_machines"] == 6  # 24 slots / 4 per machine


# -- the CI regression gate --------------------------------------------------

def _load_check_regression():
    path = Path(__file__).resolve().parent.parent / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "check_regression", path / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_doc(rates):
    rows = [
        {
            "total_slots": slots,
            "num_jobs": 10,
            "probe_ratio": 4.0,
            "events_per_sec": rate,
            "events": 1000,
            "wall_seconds": 1000 / rate,
        }
        for slots, rate in rates.items()
    ]
    total = sum(r["events"] for r in rows)
    wall = sum(r["wall_seconds"] for r in rows)
    return {
        "benchmark": "scale",
        "schema_version": 1,
        "rows": rows,
        "aggregate": {
            "total_events": total,
            "total_wall_seconds": wall,
            "events_per_sec": total / wall,
        },
    }


def test_check_regression_passes_within_threshold(tmp_path, capsys):
    mod = _load_check_regression()
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_bench_doc({1000: 100000.0})))
    current.write_text(json.dumps(_bench_doc({1000: 60000.0})))
    rc = mod.main(
        ["--baseline", str(baseline), "--current", str(current)]
    )
    assert rc == 0
    assert "no benchmark regressions" in capsys.readouterr().out


def test_check_regression_fails_past_threshold(tmp_path, capsys):
    mod = _load_check_regression()
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(_bench_doc({1000: 100000.0})))
    current.write_text(json.dumps(_bench_doc({1000: 40000.0})))
    rc = mod.main(
        ["--baseline", str(baseline), "--current", str(current)]
    )
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_check_regression_fails_when_baseline_rows_go_missing(
    tmp_path, capsys
):
    """Losing a baseline grid point (e.g. an axis dropped from the CI
    bench invocation) must fail the gate, not silently shrink it."""
    mod = _load_check_regression()
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    base_doc = _bench_doc({1000: 100000.0, 5000: 90000.0})
    base_doc["rows"][1]["system"] = "centralized"
    base_doc["per_system"] = {
        "decentralized": {"events_per_sec": 100000.0},
        "centralized": {"events_per_sec": 90000.0},
    }
    cur_doc = _bench_doc({1000: 95000.0})
    cur_doc["per_system"] = {
        "decentralized": {"events_per_sec": 95000.0},
    }
    baseline.write_text(json.dumps(base_doc))
    current.write_text(json.dumps(cur_doc))
    rc = mod.main(
        ["--baseline", str(baseline), "--current", str(current)]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "MISSING from current run" in out
    assert "centralized aggregate" in out


def test_check_regression_fails_on_corrupt_baseline_rate(tmp_path, capsys):
    """A zero/negative baseline rate used to be silently skipped, which
    neutered the gate for that row; it must be a violation instead."""
    mod = _load_check_regression()
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    base_doc = _bench_doc({1000: 100000.0})
    base_doc["rows"][0]["events_per_sec"] = 0.0
    baseline.write_text(json.dumps(base_doc))
    current.write_text(json.dumps(_bench_doc({1000: 90000.0})))
    rc = mod.main(
        ["--baseline", str(baseline), "--current", str(current)]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "INVALID BASELINE" in out
