"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.schedule(7.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5, 7.0]
    assert sim.now == 7.0


def test_ties_break_by_priority_then_sequence():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "b", priority=1)
    sim.schedule(1.0, fired.append, "a", priority=0)
    sim.schedule(1.0, fired.append, "c", priority=1)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    sim.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(10.0, fired.append, "out")
    sim.run(until=5.0)
    assert fired == ["in"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["in", "out"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, "now")
    sim.run()
    assert fired == ["now"]
    assert sim.now == 0.0


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.peek_next_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_handle_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
