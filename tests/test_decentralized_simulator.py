"""Integration tests for the decentralized (Sparrow-style) simulator."""

import pytest

from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
from repro.decentralized.simulator import DecentralizedSimulator
from repro.simulation.rng import RandomSource
from repro.speculation import LATE, NoSpeculation
from repro.stragglers.model import NoStragglerModel, ParetoRedrawStragglerModel
from repro.workload.generator import SPARK_FACEBOOK_PROFILE, TraceGenerator
from repro.workload.job import make_chain_job, make_single_phase_job
from repro.workload.traces import Trace


def _config(**kwargs):
    defaults = dict(
        num_schedulers=3,
        probe_ratio=4.0,
        worker_policy=WorkerPolicy.HOPPER,
        epsilon=1.0,
        message_delay=0.0005,
    )
    defaults.update(kwargs)
    return DecentralizedConfig(**defaults)


def _simulate(trace, workers=20, config=None, straggler=None, spec=None, seed=7):
    sim = DecentralizedSimulator(
        num_workers=workers,
        speculation=spec or (lambda: LATE()),
        trace=trace,
        straggler_model=straggler or NoStragglerModel(),
        config=config or _config(),
        random_source=RandomSource(seed=seed),
    )
    return sim, sim.run(until=1_000_000)


def _trace(num_jobs=15, seed=0, max_tasks=30, interarrival=1.0):
    gen = TraceGenerator(
        SPARK_FACEBOOK_PROFILE,
        random_source=RandomSource(seed=seed),
        max_phase_tasks=max_tasks,
    )
    return Trace(jobs=gen.generate(num_jobs, interarrival_mean=interarrival))


def test_single_job_completes():
    job = make_single_phase_job(0, 0.0, [1.0] * 8)
    sim, result = _simulate(Trace(jobs=[job]), workers=8)
    assert result.num_jobs == 1
    # duration ~ 1 plus a few message RTTs
    assert result.jobs[0].duration == pytest.approx(1.0, abs=0.1)


@pytest.mark.parametrize(
    "policy", [WorkerPolicy.FIFO, WorkerPolicy.SRPT, WorkerPolicy.HOPPER]
)
def test_all_jobs_complete_under_every_policy(policy):
    trace = _trace(num_jobs=12)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=30,
        config=_config(worker_policy=policy),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
    )
    assert result.num_jobs == 12


def test_workers_end_idle():
    trace = _trace(num_jobs=10)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=25,
        straggler=ParetoRedrawStragglerModel(beta=1.4),
    )
    assert result.num_jobs == 10
    for worker in sim.workers:
        assert worker.busy_slots == 0
        assert worker.pending_episodes == 0


def test_occupied_accounting_balances():
    trace = _trace(num_jobs=10)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=25,
        straggler=ParetoRedrawStragglerModel(beta=1.4),
    )
    for scheduler in sim.schedulers:
        assert scheduler.jobs == {}


def test_messages_are_counted():
    trace = _trace(num_jobs=5)
    sim, result = _simulate(trace.fresh_copy(), workers=20)
    # at least probe_ratio messages per task were sent
    assert result.messages_sent >= 4 * trace.total_tasks * 0.5


def test_probe_ratio_bounds_queue_growth():
    trace = _trace(num_jobs=5)
    config = _config(probe_ratio=2.0, max_probes_per_job=50)
    sim, result = _simulate(trace.fresh_copy(), workers=20, config=config)
    assert result.num_jobs == 5


def test_speculation_happens_with_stragglers():
    trace = _trace(num_jobs=15, max_tasks=40)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=50,
        straggler=ParetoRedrawStragglerModel(beta=1.2),
    )
    assert result.speculative_copies > 0
    assert result.speculative_wins > 0


def test_no_speculation_policy_never_duplicates():
    trace = _trace(num_jobs=10)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=30,
        spec=lambda: NoSpeculation(),
        straggler=ParetoRedrawStragglerModel(beta=1.3),
    )
    assert result.speculative_copies == 0
    assert result.num_jobs == 10


def test_speculation_improves_completion_with_heavy_tails():
    trace = _trace(num_jobs=15, max_tasks=40)
    _, with_spec = _simulate(
        trace.fresh_copy(),
        workers=60,
        straggler=ParetoRedrawStragglerModel(beta=1.2),
    )
    _, without = _simulate(
        trace.fresh_copy(),
        workers=60,
        spec=lambda: NoSpeculation(),
        straggler=ParetoRedrawStragglerModel(beta=1.2),
    )
    assert with_spec.mean_job_duration < without.mean_job_duration


def test_dag_jobs_complete():
    job = make_chain_job(0, 0.0, [[1.0] * 6, [1.0] * 3], [5.0, 0.0])
    sim, result = _simulate(Trace(jobs=[job]), workers=12)
    assert result.num_jobs == 1


def test_refusals_record_guideline_decisions():
    trace = _trace(num_jobs=15, interarrival=0.2)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=15,  # scarce: force contention
        config=_config(refusal_threshold=2),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
    )
    assert result.guideline2_decisions + result.guideline3_decisions >= 0
    assert result.num_jobs == 15


def test_fifo_policy_is_sparrow_like():
    # FIFO worker policy must also drain everything.
    trace = _trace(num_jobs=10, interarrival=0.2)
    sim, result = _simulate(
        trace.fresh_copy(),
        workers=10,
        config=_config(worker_policy=WorkerPolicy.FIFO, probe_ratio=2.0),
        straggler=ParetoRedrawStragglerModel(beta=1.4),
    )
    assert result.num_jobs == 10


def test_results_reproducible():
    trace = _trace(num_jobs=10)

    def run_once():
        _, result = _simulate(
            trace.fresh_copy(),
            workers=25,
            straggler=ParetoRedrawStragglerModel(beta=1.4),
            seed=3,
        )
        return sorted((r.job_id, r.duration) for r in result.jobs)

    assert run_once() == run_once()


def test_zero_message_delay_supported():
    trace = _trace(num_jobs=8)
    sim, result = _simulate(
        trace.fresh_copy(), workers=20, config=_config(message_delay=0.0)
    )
    assert result.num_jobs == 8


def test_multi_slot_workers():
    job = make_single_phase_job(0, 0.0, [1.0] * 8)
    sim = DecentralizedSimulator(
        num_workers=4,
        slots_per_worker=2,
        speculation=lambda: LATE(),
        trace=Trace(jobs=[job]),
        straggler_model=NoStragglerModel(),
        config=_config(),
        random_source=RandomSource(seed=1),
    )
    result = sim.run(until=10_000)
    assert result.num_jobs == 1
    assert sim.total_slots == 8


def test_srpt_worker_policy_prioritizes_small_jobs():
    small = make_single_phase_job(0, 0.0, [1.0] * 2, task_id_start=0)
    big = make_single_phase_job(1, 0.0, [1.0] * 30, task_id_start=100)
    trace = Trace(jobs=[big, small])
    sim, result = _simulate(
        trace,
        workers=8,
        config=_config(worker_policy=WorkerPolicy.SRPT, probe_ratio=2.0),
    )
    durations = {r.job_id: r.duration for r in result.jobs}
    assert durations[0] < durations[1]
