"""Tests for the experiment harness, the motivating example, and
scaled-down smoke runs of the figure experiments."""

import pytest

from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_centralized,
    run_decentralized,
)
from repro.experiments.motivating import (
    TASKS,
    run_motivating_example,
)
from repro.experiments import figures
from repro.workload.generator import SPARK_FACEBOOK_PROFILE


# -- motivating example (§3, Figures 1-2, Table 1) ------------------------------


def test_table1_shape():
    assert sum(1 for (j, _) in TASKS if j == "A") == 4
    assert sum(1 for (j, _) in TASKS if j == "B") == 5


def test_motivating_example_matches_paper():
    results = {r.strategy: r for r in run_motivating_example()}
    # Figure 1a: best-effort speculation delays job A's speculation.
    assert results["best_effort"].completion_a == pytest.approx(20.0)
    assert results["best_effort"].completion_b == pytest.approx(30.0)
    # Figure 1b: budgeted speculation rescues A but pushes B out.
    assert results["budgeted"].completion_a == pytest.approx(12.0)
    assert results["budgeted"].completion_b == pytest.approx(32.0)
    # Figure 2: coordination gets the best of both.
    assert results["hopper"].completion_a == pytest.approx(12.0)
    assert results["hopper"].completion_b == pytest.approx(22.0)


def test_motivating_hopper_dominates_on_average():
    results = {r.strategy: r for r in run_motivating_example()}
    assert results["hopper"].average < results["best_effort"].average
    assert results["hopper"].average < results["budgeted"].average


# -- harness ---------------------------------------------------------------------


def _tiny_spec(**kwargs):
    defaults = dict(
        profile=SPARK_FACEBOOK_PROFILE,
        num_jobs=20,
        utilization=0.6,
        total_slots=60,
        max_phase_tasks=30,
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


def test_build_trace_hits_target_utilization():
    spec = _tiny_spec()
    trace = build_trace(spec)
    assert len(trace) == 20
    assert trace.offered_utilization(spec.total_slots) == pytest.approx(
        0.6, rel=1e-6
    )


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        _tiny_spec(num_jobs=0)
    with pytest.raises(ValueError):
        _tiny_spec(utilization=1.5)
    with pytest.raises(ValueError):
        _tiny_spec(total_slots=0)


def test_run_centralized_all_policies():
    spec = _tiny_spec()
    trace = build_trace(spec)
    for policy in ("fair", "srpt", "hopper"):
        result = run_centralized(trace, policy, spec)
        assert result.num_jobs == 20
    with pytest.raises(ValueError):
        run_centralized(trace, "bogus", spec)


def test_run_centralized_does_not_mutate_trace():
    spec = _tiny_spec()
    trace = build_trace(spec)
    run_centralized(trace, "srpt", spec)
    assert all(j.finish_time is None for j in trace.jobs)
    # replayable again
    result = run_centralized(trace, "srpt", spec)
    assert result.num_jobs == 20


def test_run_decentralized_all_systems():
    spec = _tiny_spec()
    trace = build_trace(spec)
    for system in ("sparrow", "sparrow-srpt", "hopper"):
        result = run_decentralized(trace, system, spec)
        assert result.num_jobs == 20
    with pytest.raises(ValueError):
        run_decentralized(trace, "bogus", spec)


def test_run_decentralized_speculation_algorithms():
    spec = _tiny_spec()
    trace = build_trace(spec)
    for algo in ("late", "mantri", "grass"):
        result = run_decentralized(trace, "hopper", spec, speculation=algo)
        assert result.num_jobs == 20


# -- figure experiment smoke runs (tiny parameters) -------------------------------


def test_fig3_threshold_curve_shape():
    curve = figures.fig3_threshold(
        beta=1.4,
        num_tasks=50,
        normalized_slots=(0.6, 1.0, 1.4, 1.8, 2.2),
        repetitions=3,
    )
    assert len(curve) == 5
    values = [v for _, v in curve]
    # completion time decreases (weakly) with more slots
    assert values[0] >= values[-1]
    assert min(values) == pytest.approx(1.0)
    knee = figures.knee_position(curve)
    assert 0.6 <= knee <= 2.2


def test_fig5a_rows():
    rows = figures.fig5a_probe_count(
        probe_ratios=(2.0, 4.0),
        utilizations=(0.7,),
        num_jobs=25,
        total_slots=80,
    )
    hopper_rows = [r for r in rows if r.system == "hopper"]
    assert len(hopper_rows) == 2
    assert all(r.ratio > 0 for r in rows)


def test_fig6_rows():
    rows = figures.fig6_utilization_gains(
        utilizations=(0.7,), num_jobs=30, total_slots=100
    )
    assert len(rows) == 1
    assert rows[0].utilization == 0.7


def test_fig7_bins_have_labels():
    out = figures.fig7_job_bins(num_jobs=40, total_slots=100)
    assert "overall" in out


def test_fig10_fairness_rows():
    rows = figures.fig10_fairness(
        epsilons=(0.0, 0.1), num_jobs=25, total_slots=80
    )
    assert [r.epsilon for r in rows] == [0.0, 0.1]
    assert rows[0].fraction_slowed == pytest.approx(0.0)  # self-reference


def test_fig12_centralized_keys():
    out = figures.fig12_centralized(num_jobs=30, total_slots=60)
    assert set(out) == {"overall", "by_bin", "by_dag_length"}


def test_fig13_locality_rows():
    rows = figures.fig13_locality(
        k_values=(0.0, 5.0), num_jobs=25, total_slots=60
    )
    assert len(rows) == 2
    assert all(0.0 <= r.locality_fraction <= 1.0 for r in rows)
