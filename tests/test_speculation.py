"""Tests for the LATE / Mantri / GRASS speculation algorithms."""

import pytest

from repro.speculation import (
    GRASS,
    LATE,
    Mantri,
    NoSpeculation,
    make_speculation_policy,
)
from repro.speculation.base import JobExecutionView
from repro.stragglers.progress import TaskCopy
from repro.workload.job import make_single_phase_job
from repro.workload.task import TaskState


def _view(num_tasks=4, sizes=None):
    sizes = sizes or [1.0] * num_tasks
    job = make_single_phase_job(0, 0.0, sizes)
    return JobExecutionView(job=job)


def _run_copy(view, task_index, start, duration, copy_id=None, speculative=False):
    task = view.job.phases[0].tasks[task_index]
    copy = TaskCopy(
        copy_id=copy_id if copy_id is not None else task_index,
        task=task,
        machine_id=0,
        start_time=start,
        duration=duration,
        speculative=speculative,
    )
    view.register_copy(copy)
    return copy


def test_factory():
    assert isinstance(make_speculation_policy("late"), LATE)
    assert isinstance(make_speculation_policy("mantri"), Mantri)
    assert isinstance(make_speculation_policy("grass"), GRASS)
    assert isinstance(make_speculation_policy("none"), NoSpeculation)
    with pytest.raises(ValueError):
        make_speculation_policy("bogus")


def test_no_speculation_never_proposes():
    view = _view()
    _run_copy(view, 0, 0.0, 100.0)
    assert NoSpeculation().speculation_candidates(view, 50.0) == []
    assert NoSpeculation().max_copies_per_task() == 1


def test_view_register_and_remove():
    view = _view()
    copy = _run_copy(view, 0, 0.0, 5.0)
    assert view.attempts(copy.task) == 1
    assert view.copies_of(copy.task) == [copy]
    view.remove_copy(copy)
    assert view.copies_of(copy.task) == []
    assert view.attempts(copy.task) == 1  # attempts are cumulative


def test_view_estimate_tnew_uses_median():
    view = _view()
    view.completed_durations.extend([1.0, 2.0, 9.0])
    task = view.job.phases[0].tasks[0]
    assert view.estimate_new_copy_duration(task) == 2.0


def test_view_estimate_tnew_falls_back_to_size():
    view = _view(sizes=[3.0, 1.0, 1.0, 1.0])
    task = view.job.phases[0].tasks[0]
    assert view.estimate_new_copy_duration(task) == 3.0


def test_late_speculates_clear_straggler():
    late = LATE(detect_after=1.0, speculative_cap_fraction=1.0)
    view = _view()
    _run_copy(view, 0, 0.0, 30.0)  # the straggler
    for i in (1, 2, 3):
        _run_copy(view, i, 0.0, 1.0)
    view.completed_durations.extend([1.0, 1.0])
    candidates = late.speculation_candidates(view, 2.0)
    assert [c.task.task_id for c in candidates] == [0]
    assert candidates[0].expected_benefit > 0


def test_late_waits_for_detection_window():
    late = LATE(detect_after=5.0)
    view = _view()
    _run_copy(view, 0, 0.0, 30.0)
    view.completed_durations.append(1.0)
    assert late.speculation_candidates(view, 2.0) == []


def test_late_skips_tasks_already_racing():
    late = LATE(detect_after=0.5, speculative_cap_fraction=1.0)
    view = _view()
    _run_copy(view, 0, 0.0, 30.0, copy_id=0)
    _run_copy(view, 0, 1.0, 30.0, copy_id=10, speculative=True)
    view.completed_durations.append(1.0)
    assert late.speculation_candidates(view, 5.0) == []


def test_late_does_not_speculate_when_new_copy_cannot_win():
    late = LATE(detect_after=0.5, speculative_cap_fraction=1.0)
    view = _view()
    copy = _run_copy(view, 0, 0.0, 3.0)
    view.completed_durations.extend([2.9, 2.9, 2.9])
    # trem at t=2.5 is 0.5 < tnew 2.9: no point racing
    assert late.speculation_candidates(view, 2.5) == []


def test_late_cap_limits_concurrent_speculation():
    late = LATE(detect_after=0.5, speculative_cap_fraction=0.25)
    view = _view(num_tasks=8)
    for i in range(8):
        _run_copy(view, i, 0.0, 30.0)
    view.completed_durations.extend([1.0] * 4)
    candidates = late.speculation_candidates(view, 2.0)
    assert len(candidates) <= max(1, int(0.25 * 8))


def test_late_orders_by_benefit():
    late = LATE(detect_after=0.5, speculative_cap_fraction=1.0, slow_task_pct=1.0)
    view = _view()
    _run_copy(view, 0, 0.0, 20.0)
    _run_copy(view, 1, 0.0, 50.0)
    _run_copy(view, 2, 0.0, 1.2)
    _run_copy(view, 3, 0.0, 1.2)
    view.completed_durations.extend([1.0, 1.0])
    candidates = late.speculation_candidates(view, 2.0)
    benefits = [c.expected_benefit for c in candidates]
    assert benefits == sorted(benefits, reverse=True)
    assert candidates[0].task.task_id == 1


def test_late_validation():
    with pytest.raises(ValueError):
        LATE(detect_after=-1.0)
    with pytest.raises(ValueError):
        LATE(slow_task_pct=0.0)
    with pytest.raises(ValueError):
        LATE(speculative_cap_fraction=2.0)


def test_mantri_requires_resource_savings():
    mantri = Mantri(detect_after=0.5, resource_saving_factor=2.0)
    view = _view()
    _run_copy(view, 0, 0.0, 30.0)
    view.completed_durations.extend([10.0])
    # trem at t=2 is 28 > 2*10: speculate
    assert len(mantri.speculation_candidates(view, 2.0)) == 1
    # moderately slow task: trem 15 < 2*10: do not
    view2 = _view()
    _run_copy(view2, 0, 0.0, 17.0)
    view2.completed_durations.extend([10.0])
    assert mantri.speculation_candidates(view2, 2.0) == []


def test_mantri_early_detection():
    mantri = Mantri(detect_after=0.25)
    view = _view()
    _run_copy(view, 0, 0.0, 30.0)
    view.completed_durations.append(1.0)
    assert len(mantri.speculation_candidates(view, 0.5)) == 1


def test_mantri_validation():
    with pytest.raises(ValueError):
        Mantri(resource_saving_factor=0.5)
    with pytest.raises(ValueError):
        Mantri(max_simultaneous_copies=1)


def test_grass_is_conservative_early_aggressive_late():
    grass = GRASS(detect_after=0.5, switch_fraction=0.25, ra_factor=2.0)
    # Early phase: 4/4 tasks remaining -> RA mode, needs trem > 2*tnew.
    view = _view()
    _run_copy(view, 0, 0.0, 15.0)
    view.completed_durations.append(10.0)
    assert grass.speculation_candidates(view, 2.0) == []

    # Late phase: finish 3 of 4 tasks -> GS mode, needs only trem > tnew.
    view_late = _view()
    for i in (1, 2, 3):
        task = view_late.job.phases[0].tasks[i]
        task.state = TaskState.FINISHED
        view_late.job.phases[0].mark_task_finished(task.size)
    _run_copy(view_late, 0, 0.0, 15.0)
    view_late.completed_durations.append(10.0)
    assert len(grass.speculation_candidates(view_late, 2.0)) == 1


def test_grass_validation():
    with pytest.raises(ValueError):
        GRASS(switch_fraction=0.0)
    with pytest.raises(ValueError):
        GRASS(ra_factor=0.5)


def test_policies_never_duplicate_finished_tasks():
    for policy in (LATE(detect_after=0.1), Mantri(), GRASS()):
        view = _view()
        copy = _run_copy(view, 0, 0.0, 30.0)
        copy.task.state = TaskState.FINISHED
        view.remove_copy(copy)
        assert policy.speculation_candidates(view, 5.0) == []
