"""Protocol-level unit tests for the decentralized worker (Pseudocode 3)
and scheduler (Pseudocode 2) logic, driven through a tiny simulator."""


from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
from repro.decentralized.messages import JobGossip, Request, ResponseType
from repro.decentralized.simulator import DecentralizedSimulator
from repro.simulation.rng import RandomSource
from repro.speculation import LATE
from repro.stragglers.model import NoStragglerModel
from repro.workload.job import make_single_phase_job
from repro.workload.traces import Trace


def _sim(num_workers=4, **config_kwargs):
    defaults = dict(
        num_schedulers=2,
        worker_policy=WorkerPolicy.HOPPER,
        probe_ratio=2.0,
        epsilon=1.0,
        message_delay=0.001,
    )
    defaults.update(config_kwargs)
    job = make_single_phase_job(0, 0.0, [1.0])
    return DecentralizedSimulator(
        num_workers=num_workers,
        speculation=lambda: LATE(),
        trace=Trace(jobs=[job]),
        straggler_model=NoStragglerModel(),
        config=DecentralizedConfig(**defaults),
        random_source=RandomSource(seed=0),
    )


def _gossip(job_id, vsize, remaining, scheduler_id=0, **kwargs):
    return JobGossip(
        job_id=job_id,
        scheduler_id=scheduler_id,
        virtual_size=vsize,
        remaining_tasks=remaining,
        **kwargs,
    )


def _capture_offers(monkeypatch, offered):
    """Record (request, rtype) for every offer instead of sending it.

    Worker uses __slots__, so the hook is installed on the class (and
    undone by monkeypatch) rather than on the instance."""
    from repro.decentralized.worker import Worker

    monkeypatch.setattr(
        Worker,
        "_offer",
        lambda self, ep, req, rtype: offered.append((req, rtype)),
    )


def test_worker_candidates_dedupe_by_job_and_spec_flag():
    sim = _sim()
    worker = sim.workers[0]
    g = _gossip(1, 5.0, 4)
    worker.queue = [
        Request(g, 0.0, spec_ok=False),
        Request(g, 1.0, spec_ok=False),  # duplicate (job, flag)
        Request(g, 2.0, spec_ok=True),
    ]
    from repro.decentralized.worker import Episode

    episode = Episode(worker)
    candidates = worker._candidates(episode)
    assert len(candidates) == 2
    flags = {c.spec_ok for c in candidates}
    assert flags == {False, True}


def test_worker_drops_requests_of_inactive_jobs_on_arrival():
    """Queue invariant: requests of completed jobs never enter the queue
    (eager purging replaced the old lazy _purge_inactive scan)."""
    sim = _sim()
    worker = sim.workers[0]
    dead = _gossip(1, 5.0, 4, active=False)
    live = _gossip(2, 5.0, 4)
    worker.on_request(Request(dead, 0.0))
    worker.on_request(Request(live, 0.0))
    from repro.decentralized.worker import Episode

    candidates = worker._candidates(Episode(worker))
    assert [c.job_id for c in candidates] == [2]
    assert all(r.job_id == 2 for r in worker.queue)
    assert not sim.worker_holds_job(1, worker.worker_id)
    assert sim.worker_holds_job(2, worker.worker_id)


def test_completed_job_requests_are_purged_from_holders():
    """On job completion the per-job request index purges exactly the
    workers holding that job's requests."""
    sim = _sim()
    first, second = sim.workers[0], sim.workers[1]
    target = _gossip(7, 5.0, 4)
    other = _gossip(8, 5.0, 4)
    first.on_request(Request(target, 0.0))
    first.on_request(Request(other, 0.0))
    second.on_request(Request(target, 0.0))

    target.active = False  # what scheduler.complete_job does
    sim._purge_job_requests(7)
    assert [r.job_id for r in first.queue] == [8]
    assert second.queue == []
    assert not sim.worker_holds_job(7, first.worker_id)
    assert not sim.worker_holds_job(7, second.worker_id)
    assert sim.worker_holds_job(8, first.worker_id)


def test_hopper_worker_prefers_smallest_virtual_size(monkeypatch):
    sim = _sim()
    worker = sim.workers[0]
    big = Request(_gossip(1, 50.0, 40), 0.0)
    small = Request(_gossip(2, 5.0, 4), 1.0)
    worker.queue = [big, small]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    worker._episode_step(Episode(worker))
    request, rtype = offered[0]
    assert request.job_id == 2
    assert rtype is ResponseType.REFUSABLE


def test_hopper_worker_serves_starved_jobs_first(monkeypatch):
    sim = _sim(epsilon=0.1)
    worker = sim.workers[0]
    normal = Request(_gossip(1, 2.0, 2), 0.0)
    starved = Request(_gossip(2, 90.0, 70, starved=True), 1.0)
    worker.queue = [normal, starved]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    worker._episode_step(Episode(worker))
    assert offered[0][0].job_id == 2


def test_hopper_worker_non_refusable_after_threshold(monkeypatch):
    sim = _sim(refusal_threshold=1)
    worker = sim.workers[0]
    worker.queue = [Request(_gossip(1, 5.0, 4), 0.0)]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    episode = Episode(worker)
    episode.refusals = 1  # threshold reached, no unsatisfied info
    worker._episode_step(episode)
    # Guideline 3: sampled proportionally, non-refusable.
    assert offered[0][1] is ResponseType.NON_REFUSABLE


def test_hopper_worker_serves_smallest_unsatisfied_from_refusal_info(monkeypatch):
    sim = _sim(refusal_threshold=1)
    worker = sim.workers[0]
    worker.queue = [
        Request(_gossip(1, 30.0, 20), 0.0),
        Request(_gossip(2, 9.0, 6), 0.0),
    ]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    episode = Episode(worker)
    episode.refusals = 1
    episode.unsatisfied = [(9.0, 2, 0), (30.0, 1, 0)]
    worker._episode_step(episode)
    request, rtype = offered[0]
    assert request.job_id == 2  # smallest unsatisfied
    assert rtype is ResponseType.NON_REFUSABLE


def test_fifo_worker_takes_oldest_request(monkeypatch):
    sim = _sim(worker_policy=WorkerPolicy.FIFO)
    worker = sim.workers[0]
    newer = Request(_gossip(1, 1.0, 1), 5.0)
    older = Request(_gossip(2, 99.0, 80), 1.0)
    worker.queue = [newer, older]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    worker._episode_step(Episode(worker))
    assert offered[0][0].job_id == 2
    assert offered[0][1] is ResponseType.NON_REFUSABLE


def test_srpt_worker_takes_fewest_remaining(monkeypatch):
    sim = _sim(worker_policy=WorkerPolicy.SRPT)
    worker = sim.workers[0]
    big = Request(_gossip(1, 99.0, 80), 0.0)
    small = Request(_gossip(2, 10.0, 3), 5.0)
    worker.queue = [big, small]
    offered = []
    _capture_offers(monkeypatch, offered)

    from repro.decentralized.worker import Episode

    worker._episode_step(Episode(worker))
    assert offered[0][0].job_id == 2


def test_worker_slot_accounting_with_pending_episode():
    sim = _sim()
    worker = sim.workers[0]
    assert worker.available_slots == 1
    worker.pending_episodes = 1
    assert worker.available_slots == 0
    worker.pending_episodes = 0
    worker.busy_slots = 1
    assert worker.available_slots == 0


def test_scheduler_refuses_refusable_offer_at_virtual_size():
    # End-to-end micro-run: one job, one task, two workers probed; after
    # the single task is running, refusable offers for the job must be
    # refused (occupied >= virtual size and no candidates yet).
    sim = _sim(num_workers=2)
    result = sim.run(until=10.0)
    assert result.num_jobs == 1
    # all slots free at the end, queue drained of active work
    assert all(w.busy_slots == 0 for w in sim.workers)


def test_request_defaults_are_spec_eligible():
    g = _gossip(1, 5.0, 4)
    assert Request(g, 0.0).spec_ok is True
    assert Request(g, 0.0).scheduler_id == 0


def test_request_conservation_over_a_full_run():
    """Every reservation request is accounted for: sent probes are
    queued or dropped-on-arrival; queued probes are consumed (task
    assigned) or purged (job done / worker evicted); the unconditional
    ``requests_dropped`` result field covers exactly the losses. Holds
    with observability on (counters) and off (requests_dropped only)."""
    from repro.experiments.harness import (
        WorkloadSpec,
        build_trace,
        run_decentralized,
    )
    from repro.obs import Obs

    spec = WorkloadSpec(
        num_jobs=12, utilization=0.6, total_slots=60, seed=5
    )
    trace = build_trace(spec)
    obs = Obs()
    result = run_decentralized(
        trace,
        "hopper",
        spec,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        strike_threshold=3,
        strike_window=1e9,
        obs=obs,
    )
    counts = obs.counters.as_dict()
    sent = counts["probe.sent"]
    queued = counts.get("probe.queued", 0)
    dropped = counts.get("probe.dropped", 0)
    consumed = counts.get("probe.consumed", 0)
    purged = counts.get("probe.purged", 0)
    assert sent == queued + dropped
    assert queued == consumed + purged
    assert result.requests_dropped == dropped + purged
    # Control-message batching conserves sends too.
    assert counts["msg.sent"] == (
        counts.get("msg.batches", 0) + counts.get("msg.coalesced", 0)
    )
    # The unconditional field matches an uninstrumented replay exactly.
    bare = run_decentralized(
        trace,
        "hopper",
        spec,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        strike_threshold=3,
        strike_window=1e9,
        obs=None,
    )
    assert bare.requests_dropped == result.requests_dropped
