"""Tests for strike-driven mid-run machine eviction (repro.cluster.policy).

Unit tests pin the policy's evidence rules (strike threshold, sliding
window, eviction cap, probation/reinstatement); the behavioural tests
run full simulations under machine-correlated stragglers and assert the
*effect* the §2.2 loop exists for — the flaky fraction's busy-slot share
drains away as the policy evicts — rather than pinning digests.
"""

import pytest

from repro.cluster.policy import BlacklistPolicy, StrikeBlacklistPolicy
from repro.simulation.rng import RandomSource
from repro.speculation import LATE
from repro.stragglers.model import MachineCorrelatedStragglerModel
from repro.workload.generator import FACEBOOK_PROFILE
from repro.experiments.harness import WorkloadSpec, build_trace

QUICK = WorkloadSpec(
    profile=FACEBOOK_PROFILE,
    num_jobs=30,
    utilization=0.6,
    total_slots=200,
    seed=42,
)


# -- policy unit tests -------------------------------------------------------


def test_strike_rule_requires_multiplier_and_reference():
    policy = StrikeBlacklistPolicy(
        num_machines=10, strike_threshold=1, strike_multiplier=2.0
    )
    # No reference yet: never a strike.
    assert not policy.observe_completion(0.0, 3, 10.0, 0.0)
    # At exactly the multiplier: not slower than the threshold.
    assert not policy.observe_completion(1.0, 3, 2.0, 1.0)
    # Slower than multiplier x reference with threshold 1: evict.
    assert policy.observe_completion(2.0, 3, 2.1, 1.0)
    assert policy.evicted_machines == {3}
    assert policy.evictions == [(2.0, 3)]


def test_strikes_accumulate_within_window_only():
    policy = StrikeBlacklistPolicy(
        num_machines=10, strike_threshold=3, strike_window=10.0
    )
    assert not policy.observe_completion(0.0, 5, 100.0, 1.0)
    assert not policy.observe_completion(4.0, 5, 100.0, 1.0)
    # Third slow completion, but the t=0 strike expired: no eviction
    # (only the strikes at 4 and 11 count inside the 10-unit window).
    assert not policy.observe_completion(11.0, 5, 100.0, 1.0)
    # One more inside the window: strikes at 4, 11, 12 -> eviction.
    assert policy.observe_completion(12.0, 5, 100.0, 1.0)
    assert policy.evicted_machines == {5}
    # Blacklisted machines accumulate no further evidence.
    assert not policy.observe_completion(13.0, 5, 100.0, 1.0)


def test_eviction_cap_bounds_concurrent_evictions():
    policy = StrikeBlacklistPolicy(
        num_machines=10, strike_threshold=1, eviction_cap=0.2
    )
    assert policy.max_evictions == 2
    assert policy.observe_completion(0.0, 0, 100.0, 1.0)
    assert policy.observe_completion(1.0, 1, 100.0, 1.0)
    # At the cap: further evidence is ignored, the cluster keeps a floor.
    assert not policy.observe_completion(2.0, 2, 100.0, 1.0)
    assert policy.evicted_machines == {0, 1}


def test_probation_reinstates_with_clean_record():
    policy = StrikeBlacklistPolicy(
        num_machines=4, strike_threshold=1, probation=5.0
    )
    assert policy.observe_completion(1.0, 2, 100.0, 1.0)
    assert policy.due_reinstatements(3.0) == []
    assert policy.due_reinstatements(6.0) == [2]
    assert policy.evicted_machines == set()
    assert policy.reinstatements == [(6.0, 2)]
    assert policy.blacklist.strike_count(2, 6.0) == 0
    # Cap capacity freed: the machine can be evicted again.
    assert policy.observe_completion(7.0, 2, 100.0, 1.0)


def test_policy_parameter_validation():
    with pytest.raises(ValueError):
        StrikeBlacklistPolicy(num_machines=0)
    with pytest.raises(ValueError):
        StrikeBlacklistPolicy(num_machines=5, eviction_cap=0.0)
    with pytest.raises(ValueError):
        StrikeBlacklistPolicy(num_machines=5, strike_multiplier=1.0)
    with pytest.raises(ValueError):
        StrikeBlacklistPolicy(num_machines=5, probation=-1.0)
    assert issubclass(StrikeBlacklistPolicy, BlacklistPolicy)


# -- behavioural: the flaky busy-slot share drains under eviction ------------


class _RecordingLedger:
    """Records every copy the simulation launches; after the run each
    copy carries its actual ``start_time``/``end_time`` (finish or
    kill), giving exact per-copy busy-slot time."""

    @staticmethod
    def install(simulator):
        from repro.runtime import CopyLedger

        class Recording(CopyLedger):
            __slots__ = ("copies",)

            def __init__(self, *args):
                super().__init__(*args)
                self.copies = []

            def launch(self, *args, **kwargs):
                copy = super().launch(*args, **kwargs)
                self.copies.append(copy)
                return copy

        ledger = Recording(
            simulator.sim, simulator.metrics, simulator.beta_estimator
        )
        simulator.ledger = ledger
        return ledger


def _flaky_share_curve(copies, flaky, windows=3):
    """Flaky machines' share of busy slot-time, per launch-order window.

    Launch-order windows (equal copy counts) rather than equal time
    spans: the makespan tail is one long straggler task, so time-equal
    windows would be dominated by a single copy.
    """
    per_window = max(1, len(copies) // windows)
    curve = []
    for i in range(windows):
        chunk = copies[i * per_window :]
        if i < windows - 1:
            chunk = chunk[:per_window]
        total = in_flaky = 0.0
        for copy in chunk:
            busy = (copy.end_time or copy.start_time) - copy.start_time
            total += busy
            if copy.machine_id in flaky:
                in_flaky += busy
        curve.append(in_flaky / total if total else 0.0)
    return curve


def _centralized_run(blacklist_policy):
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.registry import CENTRALIZED_SYSTEMS

    trace = build_trace(QUICK)
    num_machines = QUICK.total_slots // 4
    model = MachineCorrelatedStragglerModel(num_machines=num_machines)
    simulator = CentralizedSimulator(
        cluster=Cluster(num_machines=num_machines, slots_per_machine=4),
        policy=CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=model,
        config=CentralizedConfig(
            epsilon=0.1,
            speculation_mode=SpeculationMode.INTEGRATED,
            default_beta=QUICK.profile.beta,
        ),
        random_source=RandomSource(seed=7),
        blacklist_policy=blacklist_policy,
    )
    ledger = _RecordingLedger.install(simulator)
    simulator.run()
    return model, ledger, simulator


def _decentralized_run(blacklist_policy):
    from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
    from repro.decentralized.simulator import DecentralizedSimulator

    trace = build_trace(QUICK)
    model = MachineCorrelatedStragglerModel(num_machines=QUICK.total_slots)
    simulator = DecentralizedSimulator(
        num_workers=QUICK.total_slots,
        speculation=lambda: LATE(),
        trace=trace.fresh_copy(),
        straggler_model=model,
        config=DecentralizedConfig(
            worker_policy=WorkerPolicy.HOPPER,
            probe_ratio=4.0,
            epsilon=0.1,
            default_beta=QUICK.profile.beta,
        ),
        random_source=RandomSource(seed=7),
        blacklist_policy=blacklist_policy,
    )
    ledger = _RecordingLedger.install(simulator)
    simulator.run()
    return model, ledger, simulator


def _strikes_policy(num_machines):
    return StrikeBlacklistPolicy(
        num_machines=num_machines,
        strike_threshold=3,
        strike_window=60.0,
        eviction_cap=0.15,
    )


@pytest.mark.parametrize("plane", ["centralized", "decentralized"])
def test_flaky_busy_slot_share_monotonically_drops(plane):
    """With eviction on, the flaky machines' share of busy slot-time
    drops monotonically over the run (they get evicted and stay out);
    with eviction off it does not drain."""
    run = _centralized_run if plane == "centralized" else _decentralized_run
    model, ledger, simulator = run(_strikes_policy(
        QUICK.total_slots // 4 if plane == "centralized" else QUICK.total_slots
    ))
    policy = (
        simulator._blacklist_policy
        if plane == "centralized"
        else simulator.blacklist_policy
    )
    assert policy.evictions, "no evictions fired"
    # Evictions are precise: most victims are genuinely flaky machines.
    evicted = [machine_id for _, machine_id in policy.evictions]
    flaky_evicted = sum(1 for m in evicted if m in model.flaky_machines)
    assert flaky_evicted / len(evicted) >= 0.6

    curve = _flaky_share_curve(ledger.copies, model.flaky_machines)
    assert curve[0] > 0.0
    for earlier, later in zip(curve, curve[1:]):
        assert later <= earlier + 1e-9, f"share rose: {curve}"
    assert curve[-1] < 0.5 * curve[0], f"share did not drain: {curve}"

    _, baseline_ledger, _ = run(None)
    baseline = _flaky_share_curve(
        baseline_ledger.copies, model.flaky_machines
    )
    assert baseline[-1] > curve[-1]


# -- eviction edge cases -----------------------------------------------------


def _direct_decentralized_sim():
    """A small simulator driven directly (no engine run): one job
    submitted, ready for hand-placed copies and evictions."""
    from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
    from repro.decentralized.simulator import DecentralizedSimulator
    from repro.stragglers.model import NoStragglerModel
    from repro.workload.job import make_single_phase_job
    from repro.workload.traces import Trace

    job = make_single_phase_job(0, 0.0, [1.0, 1.0, 1.0])
    simulator = DecentralizedSimulator(
        num_workers=8,
        speculation=lambda: LATE(),
        trace=Trace(jobs=[job]),
        straggler_model=NoStragglerModel(),
        config=DecentralizedConfig(
            worker_policy=WorkerPolicy.HOPPER, probe_ratio=2.0, epsilon=0.1
        ),
        random_source=RandomSource(seed=3),
        # Inert policy: present (so the eviction substrate exists) but
        # with an unreachable threshold — the test evicts by hand.
        blacklist_policy=StrikeBlacklistPolicy(8, strike_threshold=10**6),
    )
    simulator._on_job_arrival(job)
    scheduler = simulator._owner[job.job_id]
    return simulator, scheduler, scheduler.jobs[job.job_id]


def test_eviction_requeues_speculative_orphans():
    """A task whose original fell to one eviction and whose speculative
    sibling falls to a later one has NO live copy left — the second
    eviction must requeue it even though the killed copy was
    speculative, or the job hangs forever."""
    simulator, scheduler, sj = _direct_decentralized_sim()
    task = sj.next_pending()
    sj.occupied += 2  # the accepts' eager occupancy reservations
    simulator.start_copy(simulator.workers[0], task, False)
    simulator.start_copy(simulator.workers[1], task, True)

    simulator._evict_worker(0)  # original dies; spec sibling carries it
    assert task.task_id not in sj.pending_ids
    assert sj.view.num_live_copies(task) == 1

    simulator._evict_worker(1)  # speculative orphan: must requeue
    assert sj.view.num_live_copies(task) == 0
    assert task.task_id in sj.pending_ids


def test_raced_accept_on_evicted_worker_requeues_orphans():
    """An accept that lands on an already-evicted worker is declined at
    bind time; if the task has no other live copy it must be requeued —
    speculative or not."""
    simulator, scheduler, sj = _direct_decentralized_sim()
    task = sj.next_pending()
    sj.occupied += 1
    simulator.workers[2].evict()
    simulator.start_copy(simulator.workers[2], task, True)
    assert sj.view.num_live_copies(task) == 0
    assert task.task_id in sj.pending_ids
    assert sj.occupied == 0


def test_requeue_probes_skip_the_evicted_worker():
    """The blacklist must hit the sample pool BEFORE the requeue probes
    go out, or a replacement probe can target the dying worker and be
    silently dropped."""
    simulator, scheduler, sj = _direct_decentralized_sim()
    task = sj.next_pending()
    sj.occupied += 1
    simulator.start_copy(simulator.workers[3], task, False)

    pools = []
    original = simulator.sample_workers

    def spying_sample(count):
        pools.append({w.worker_id for w in simulator._sample_pool})
        return original(count)

    simulator.sample_workers = spying_sample
    simulator._evict_worker(3)
    assert task.task_id in sj.pending_ids
    assert pools, "requeue sent no probes"
    assert all(3 not in pool for pool in pools)


def test_budgeted_spec_budget_tracks_evictions():
    """BUDGETED mode reserves a fraction of the cluster for speculation;
    the reservation must shrink with the cluster on eviction (a stale
    budget could exceed the shrunken total and starve originals)."""
    from repro.centralized.config import CentralizedConfig, SpeculationMode
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.registry import CENTRALIZED_SYSTEMS
    from repro.stragglers.model import NoStragglerModel
    from repro.workload.job import make_single_phase_job
    from repro.workload.traces import Trace

    simulator = CentralizedSimulator(
        cluster=Cluster(num_machines=10, slots_per_machine=4),
        policy=CENTRALIZED_SYSTEMS.get("hopper").factory(epsilon=0.1),
        speculation=lambda: LATE(),
        trace=Trace(jobs=[make_single_phase_job(0, 0.0, [1.0])]),
        straggler_model=NoStragglerModel(),
        config=CentralizedConfig(
            speculation_mode=SpeculationMode.BUDGETED, budget_fraction=0.25
        ),
        random_source=RandomSource(seed=1),
        blacklist_policy=StrikeBlacklistPolicy(10, strike_threshold=10**6),
    )
    assert simulator._spec_budget == 10  # 0.25 * 40
    simulator._evict_machine(0)
    assert simulator._total_slots == 36
    assert simulator._spec_budget == 9  # 0.25 * 36: tracks the shrink
    simulator._reinstate_machine(0)
    assert simulator._total_slots == 40
    assert simulator._spec_budget == 10


def test_probation_reinstates_machines_end_to_end():
    """strikes-probation: machines leave and rejoin mid-run; the cluster
    substrate tracks the policy's view exactly at end of run."""
    policy = StrikeBlacklistPolicy(
        num_machines=QUICK.total_slots,
        strike_threshold=3,
        strike_window=60.0,
        eviction_cap=0.15,
        probation=40.0,
    )
    model, ledger, simulator = _decentralized_run(policy)
    assert policy.evictions
    assert policy.reinstatements, "probation never reinstated a worker"
    assert (
        simulator.cluster.blacklist.blacklisted_machines
        == set(policy.evicted_machines)
    )
    for worker in simulator.workers:
        expected = worker.worker_id in policy.evicted_machines
        assert worker.evicted == expected
    pool_ids = {w.worker_id for w in simulator._sample_pool}
    assert pool_ids == {
        w.worker_id
        for w in simulator.workers
        if w.worker_id not in policy.evicted_machines
    }
    # Reinstated workers finished the run doing work again or at least
    # rejoined the pool; every job still completed.
    for job in simulator.trace:
        assert job.is_complete
    assert simulator.ledger.events == {}
