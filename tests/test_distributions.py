"""Tests for workload distributions, including property-based checks."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    BoundedParetoDistribution,
    ConstantDistribution,
    DiscreteDistribution,
    EmpiricalDistribution,
    ExponentialDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    UniformDistribution,
)


RNG = random.Random(0)


def test_constant_distribution():
    dist = ConstantDistribution(4.2)
    assert dist.sample(RNG) == 4.2
    assert dist.mean() == 4.2


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantDistribution(-1.0)


def test_uniform_bounds_and_mean():
    dist = UniformDistribution(2.0, 6.0)
    samples = dist.sample_many(random.Random(1), 2000)
    assert all(2.0 <= s <= 6.0 for s in samples)
    assert abs(sum(samples) / len(samples) - dist.mean()) < 0.2


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        UniformDistribution(3.0, 2.0)


def test_exponential_mean():
    dist = ExponentialDistribution(mean=5.0)
    samples = dist.sample_many(random.Random(2), 5000)
    assert abs(sum(samples) / len(samples) - 5.0) < 0.5


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        ExponentialDistribution(0.0)


def test_pareto_minimum_is_scale():
    dist = ParetoDistribution(shape=1.5, scale=2.0)
    samples = dist.sample_many(random.Random(3), 1000)
    assert min(samples) >= 2.0


def test_pareto_mean_formula():
    dist = ParetoDistribution(shape=2.0, scale=1.0)
    assert dist.mean() == pytest.approx(2.0)
    heavy = ParetoDistribution(shape=0.9)
    assert math.isinf(heavy.mean())


def test_pareto_empirical_mean_close_for_light_tail():
    dist = ParetoDistribution(shape=3.0, scale=1.0)
    samples = dist.sample_many(random.Random(4), 20000)
    assert abs(sum(samples) / len(samples) - dist.mean()) < 0.1


def test_pareto_ccdf_and_quantile_are_consistent():
    dist = ParetoDistribution(shape=1.4, scale=1.0)
    for q in (0.1, 0.5, 0.9):
        x = dist.quantile(q)
        assert dist.ccdf(x) == pytest.approx(1.0 - q, rel=1e-9)


def test_pareto_rejects_bad_params():
    with pytest.raises(ValueError):
        ParetoDistribution(shape=0.0)
    with pytest.raises(ValueError):
        ParetoDistribution(shape=1.0, scale=0.0)
    with pytest.raises(ValueError):
        ParetoDistribution(shape=1.0).quantile(1.0)


def test_bounded_pareto_support():
    dist = BoundedParetoDistribution(shape=1.1, lo=2.0, hi=8.0)
    samples = dist.sample_many(random.Random(5), 2000)
    assert all(2.0 <= s <= 8.0 for s in samples)


def test_bounded_pareto_mean_matches_empirical():
    dist = BoundedParetoDistribution(shape=1.5, lo=1.0, hi=100.0)
    samples = dist.sample_many(random.Random(6), 50000)
    assert abs(sum(samples) / len(samples) - dist.mean()) < 0.1


def test_bounded_pareto_shape_one_mean():
    dist = BoundedParetoDistribution(shape=1.0, lo=1.0, hi=10.0)
    samples = dist.sample_many(random.Random(7), 50000)
    assert abs(sum(samples) / len(samples) - dist.mean()) < 0.1


def test_bounded_pareto_rejects_bad_bounds():
    with pytest.raises(ValueError):
        BoundedParetoDistribution(shape=1.0, lo=5.0, hi=2.0)


def test_lognormal_mean():
    dist = LogNormalDistribution(mu=0.0, sigma=0.5)
    samples = dist.sample_many(random.Random(8), 20000)
    assert abs(sum(samples) / len(samples) - dist.mean()) < 0.05


def test_empirical_resamples_observed_values():
    dist = EmpiricalDistribution([1.0, 2.0, 3.0])
    samples = set(dist.sample_many(random.Random(9), 100))
    assert samples <= {1.0, 2.0, 3.0}
    assert dist.mean() == pytest.approx(2.0)


def test_empirical_rejects_empty():
    with pytest.raises(ValueError):
        EmpiricalDistribution([])


def test_discrete_distribution_weights():
    dist = DiscreteDistribution([(1.0, 9.0), (2.0, 1.0)])
    samples = dist.sample_many(random.Random(10), 5000)
    ones = sum(1 for s in samples if s == 1.0)
    assert 0.85 <= ones / len(samples) <= 0.95
    assert dist.mean() == pytest.approx(1.1)


def test_discrete_rejects_bad_weights():
    with pytest.raises(ValueError):
        DiscreteDistribution([])
    with pytest.raises(ValueError):
        DiscreteDistribution([(1.0, -1.0), (2.0, 2.0)])
    with pytest.raises(ValueError):
        DiscreteDistribution([(1.0, 0.0)])


# -- property-based checks ----------------------------------------------------

@given(
    shape=st.floats(min_value=0.5, max_value=4.0),
    scale=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_pareto_samples_at_least_scale(shape, scale, seed):
    dist = ParetoDistribution(shape=shape, scale=scale)
    rng = random.Random(seed)
    assert all(dist.sample(rng) >= scale for _ in range(50))


@given(
    shape=st.floats(min_value=0.5, max_value=3.0),
    lo=st.floats(min_value=0.1, max_value=5.0),
    span=st.floats(min_value=0.5, max_value=50.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_bounded_pareto_within_bounds(shape, lo, span, seed):
    hi = lo + span
    dist = BoundedParetoDistribution(shape=shape, lo=lo, hi=hi)
    rng = random.Random(seed)
    for _ in range(50):
        sample = dist.sample(rng)
        assert lo <= sample <= hi + 1e-9
    assert lo <= dist.mean() <= hi


@given(
    q=st.floats(min_value=0.0, max_value=0.999),
    shape=st.floats(min_value=0.8, max_value=3.0),
)
@settings(max_examples=50, deadline=None)
def test_pareto_quantile_monotone(q, shape):
    dist = ParetoDistribution(shape=shape)
    assert dist.quantile(q) >= dist.scale
