"""Batch plane: periodic rounds, the round_interval knob, and the
plane-agnostic ``build_simulator``/``run_simulator`` entry points."""

import json

import pytest

from repro import registry
from repro.batch import BatchSimulator
from repro.experiments.harness import (
    WorkloadSpec,
    build_batch_simulator,
    build_simulator,
    build_trace,
    run_batch,
    run_centralized,
    run_simulator,
)
from repro.metrics.serialize import result_to_dict
from repro.sweep import RunSpec, WorkloadParams


SPEC = WorkloadSpec(num_jobs=12, utilization=0.6, total_slots=60, seed=5)


def _durations(result):
    return {rec.job_id: rec.duration for rec in result.jobs}


def test_batch_run_completes_every_job():
    result = run_batch(build_trace(SPEC), "hopper", SPEC, round_interval=0.5)
    assert result.num_jobs == SPEC.num_jobs
    assert result.scheduler_name == "batch-hopper"
    assert result.mean_job_duration > 0.0


def test_batch_rejects_negative_round_interval():
    with pytest.raises(ValueError, match="round_interval"):
        build_batch_simulator(
            build_trace(SPEC), "hopper", SPEC, round_interval=-1.0
        )
    with pytest.raises(ValueError, match="round_interval"):
        RunSpec(
            "batch",
            "hopper",
            WorkloadParams(profile="spark-facebook", num_jobs=5),
            knobs={"round_interval": -1.0},
        )


def test_longer_rounds_do_not_speed_up_jobs():
    """Buffering delay is additive: a coarser round interval cannot make
    mean JCT better than a fine one on the same trace."""
    fine = run_batch(
        build_trace(SPEC), "hopper", SPEC, round_interval=0.25
    )
    coarse = run_batch(
        build_trace(SPEC), "hopper", SPEC, round_interval=4.0
    )
    assert coarse.mean_job_duration >= fine.mean_job_duration


def test_zero_round_interval_converges_to_centralized_schedule():
    """The tentpole property: at ``round_interval=0`` every round fires
    immediately after the event that armed it, so the batch plane must
    reproduce the per-arrival centralized schedule *exactly* (same
    entropy stream, same per-job durations) once stragglers and
    speculation are off."""
    kwargs = dict(straggler_model="none", speculation="none")
    batch = run_batch(
        build_trace(SPEC), "hopper", SPEC, round_interval=0.0, **kwargs
    )
    central = run_centralized(build_trace(SPEC), "hopper", SPEC, **kwargs)
    assert _durations(batch) == _durations(central)


def test_batch_runspec_kind_executes_through_registry():
    spec = RunSpec(
        "batch",
        "srpt",
        WorkloadParams(
            profile="spark-facebook",
            num_jobs=8,
            utilization=0.6,
            total_slots=40,
            seed=3,
        ),
        knobs={"round_interval": 1.0},
    )
    result = spec.execute()
    assert result.num_jobs == 8
    assert result.scheduler_name == "batch-srpt"


def test_build_simulator_dispatches_by_plane():
    batch = build_simulator(
        "batch/hopper", build_trace(SPEC), SPEC, round_interval=0.5
    )
    assert isinstance(batch, BatchSimulator)
    central = build_simulator(
        "hopper", build_trace(SPEC), SPEC, plane="centralized"
    )
    assert type(central).__name__ == "CentralizedSimulator"
    decentralized = build_simulator("sparrow", build_trace(SPEC), SPEC)
    assert type(decentralized).__name__ == "DecentralizedSimulator"


def test_build_simulator_rejects_planes_without_builders():
    with pytest.raises(ValueError, match="plane"):
        build_simulator("serving/hopper", build_trace(SPEC), SPEC)


def test_run_simulator_until_stops_early_on_every_plane():
    for system, plane in (
        ("hopper", "centralized"),
        ("hopper", "decentralized"),
        ("hopper", "batch"),
    ):
        full = run_simulator(system, build_trace(SPEC), SPEC, plane=plane)
        cut = run_simulator(
            system, build_trace(SPEC), SPEC, plane=plane, until=1.0
        )
        assert cut.num_jobs < full.num_jobs


def test_sparrow_late_binding_end_to_end():
    lb = run_simulator("sparrow-lb", build_trace(SPEC), SPEC)
    eager = run_simulator("sparrow", build_trace(SPEC), SPEC)
    assert lb.num_jobs == SPEC.num_jobs
    # Late binding adds a reserve/pull round-trip per launched task.
    assert lb.messages_sent > eager.messages_sent


def test_sparrow_power_of_two_end_to_end():
    result = run_simulator("sparrow-po2", build_trace(SPEC), SPEC)
    assert result.num_jobs == SPEC.num_jobs


def _payload(result):
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )


def test_power_of_d_one_is_byte_identical():
    """Differential: ``power_of_d=1`` is a real knob (new cache key) but
    must keep the exact ``rng.sample`` path — results byte-identical to
    the knob-free run."""
    workload = WorkloadParams(
        profile="spark-facebook",
        num_jobs=10,
        utilization=0.6,
        total_slots=40,
        seed=5,
    )
    bare = RunSpec("decentralized", "sparrow", workload)
    with_one = RunSpec(
        "decentralized", "sparrow", workload, knobs={"power_of_d": 1}
    )
    assert bare.digest() != with_one.digest()
    assert _payload(bare.execute()) == _payload(with_one.execute())


def test_power_of_d_rejects_non_positive():
    with pytest.raises(ValueError, match="power_of_d"):
        RunSpec(
            "decentralized",
            "sparrow",
            WorkloadParams(profile="spark-facebook", num_jobs=5),
            knobs={"power_of_d": 0},
        )


def test_batch_registry_lists_all_centralized_policies():
    assert set(registry.BATCH_SYSTEMS.names()) == {"fair", "srpt", "hopper"}
