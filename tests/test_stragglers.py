"""Tests for straggler models and task-copy progress tracking."""

import random

import pytest

from repro.stragglers.model import (
    MachineCorrelatedStragglerModel,
    NoStragglerModel,
    ParetoRedrawStragglerModel,
    ParetoStragglerModel,
)
from repro.stragglers.progress import TaskCopy
from repro.workload.task import Task


def _task(size=2.0):
    return Task(task_id=0, job_id=0, phase_index=0, size=size)


RNG = random.Random(0)


def test_no_straggler_model_is_unit():
    model = NoStragglerModel()
    assert model.slowdown(RNG, _task(), 0, 0) == 1.0


def test_pareto_model_bounds():
    model = ParetoStragglerModel(
        straggler_prob=0.5, min_slowdown=2.0, max_slowdown=8.0, jitter=0.1
    )
    rng = random.Random(1)
    for _ in range(500):
        s = model.slowdown(rng, _task(), 0, 0)
        assert 0.9 <= s <= 8.0 + 1e-9


def test_pareto_model_straggle_fraction():
    model = ParetoStragglerModel(straggler_prob=0.3)
    rng = random.Random(2)
    stragglers = sum(
        1 for _ in range(4000) if model.slowdown(rng, _task(), 0, 0) > 1.5
    )
    assert 0.25 <= stragglers / 4000 <= 0.35


def test_pareto_model_expected_slowdown():
    model = ParetoStragglerModel(straggler_prob=0.2)
    rng = random.Random(3)
    samples = [model.slowdown(rng, _task(), 0, 0) for _ in range(20000)]
    assert abs(sum(samples) / len(samples) - model.expected_slowdown()) < 0.1


def test_pareto_model_validation():
    with pytest.raises(ValueError):
        ParetoStragglerModel(straggler_prob=1.5)
    with pytest.raises(ValueError):
        ParetoStragglerModel(min_slowdown=0.5)
    with pytest.raises(ValueError):
        ParetoStragglerModel(min_slowdown=4.0, max_slowdown=2.0)


def test_redraw_model_original_copy_runs_nominal():
    model = ParetoRedrawStragglerModel(beta=1.4)
    assert model.slowdown(RNG, _task(), 0, attempt_index=0) == 1.0


def test_redraw_model_speculative_copies_are_fresh_draws():
    model = ParetoRedrawStragglerModel(beta=1.4, scale=1.0)
    task = _task(size=4.0)
    rng = random.Random(4)
    durations = [
        task.size * model.slowdown(rng, task, 0, attempt_index=1)
        for _ in range(2000)
    ]
    # Fresh draws are i.i.d. Pareto(beta, scale): min near scale.
    assert min(durations) >= 1.0
    assert min(durations) < 1.2


def test_redraw_model_validation():
    with pytest.raises(ValueError):
        ParetoRedrawStragglerModel(beta=0.0)
    with pytest.raises(ValueError):
        ParetoRedrawStragglerModel(scale=0.0)


def test_machine_correlated_model_flaky_set():
    model = MachineCorrelatedStragglerModel(
        num_machines=100, flaky_fraction=0.2, seed=1
    )
    assert len(model.flaky_machines) == 20
    assert all(model.is_flaky(m) for m in model.flaky_machines)


def test_machine_correlated_model_flaky_straggle_more():
    model = MachineCorrelatedStragglerModel(
        num_machines=10,
        flaky_fraction=0.5,
        flaky_straggler_prob=0.9,
        base_straggler_prob=0.01,
        seed=2,
    )
    rng = random.Random(5)
    flaky = next(iter(model.flaky_machines))
    ok = next(m for m in range(10) if not model.is_flaky(m))
    flaky_rate = sum(
        1 for _ in range(1000) if model.slowdown(rng, _task(), flaky, 0) > 1.5
    )
    ok_rate = sum(
        1 for _ in range(1000) if model.slowdown(rng, _task(), ok, 0) > 1.5
    )
    assert flaky_rate > 5 * max(ok_rate, 1)


# -- TaskCopy -------------------------------------------------------------------

def test_copy_progress_lifecycle():
    copy = TaskCopy(
        copy_id=0, task=_task(), machine_id=0, start_time=10.0, duration=4.0
    )
    assert copy.progress(10.0) == 0.0
    assert copy.progress(12.0) == pytest.approx(0.5)
    assert copy.progress(20.0) == 1.0
    assert copy.expected_finish_time == 14.0


def test_copy_progress_rate_is_inverse_duration():
    copy = TaskCopy(
        copy_id=0, task=_task(), machine_id=0, start_time=0.0, duration=5.0
    )
    assert copy.progress_rate(0.0) == float("inf")
    assert copy.progress_rate(1.0) == pytest.approx(0.2)


def test_copy_estimated_remaining():
    copy = TaskCopy(
        copy_id=0, task=_task(size=2.0), machine_id=0, start_time=0.0,
        duration=10.0,
    )
    assert copy.estimated_remaining(0.0) == 2.0  # nothing observed yet
    assert copy.estimated_remaining(4.0) == pytest.approx(6.0)
    assert copy.estimated_remaining(15.0) == 0.0


def test_copy_elapsed_clamps_to_end_time():
    copy = TaskCopy(
        copy_id=0, task=_task(), machine_id=0, start_time=0.0, duration=10.0
    )
    copy.end_time = 4.0
    copy.killed = True
    assert copy.elapsed(8.0) == pytest.approx(4.0)
    assert copy.resource_time(8.0) == pytest.approx(4.0)


def test_copy_requires_positive_duration():
    with pytest.raises(ValueError):
        TaskCopy(copy_id=0, task=_task(), machine_id=0, start_time=0.0, duration=0.0)


def test_copy_is_running_flags():
    copy = TaskCopy(
        copy_id=0, task=_task(), machine_id=0, start_time=0.0, duration=1.0
    )
    assert copy.is_running
    copy.finished = True
    assert not copy.is_running
