"""Tests for machines, clusters, the datastore and blacklisting."""

import pytest

from repro.cluster.blacklist import Blacklist
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.cluster.machine import Machine
from repro.simulation.rng import RandomSource
from repro.workload.job import make_chain_job, make_single_phase_job
from repro.workload.task import Task


def test_machine_slot_accounting():
    machine = Machine(machine_id=0, num_slots=2)
    assert machine.free_slots == 2
    machine.acquire_slot()
    assert machine.free_slots == 1
    machine.release_slot()
    assert machine.free_slots == 2


def test_machine_over_acquire_raises():
    machine = Machine(machine_id=0, num_slots=1)
    machine.acquire_slot()
    with pytest.raises(RuntimeError):
        machine.acquire_slot()


def test_machine_over_release_raises():
    machine = Machine(machine_id=0, num_slots=1)
    with pytest.raises(RuntimeError):
        machine.release_slot()


def test_machine_requires_slots():
    with pytest.raises(ValueError):
        Machine(machine_id=0, num_slots=0)


def test_cluster_totals():
    cluster = Cluster(num_machines=10, slots_per_machine=4)
    assert cluster.num_machines == 10
    assert cluster.total_slots == 40
    assert cluster.free_slots == 40


def test_cluster_slot_tracking_is_consistent():
    cluster = Cluster(num_machines=3, slots_per_machine=2)
    cluster.acquire_slot(0)
    cluster.acquire_slot(1)
    assert cluster.busy_slots == 2
    assert cluster.free_slots == 4
    assert cluster.utilization() == pytest.approx(2 / 6)
    cluster.release_slot(0)
    assert cluster.busy_slots == 1


def test_cluster_machines_with_free_slots():
    cluster = Cluster(num_machines=2, slots_per_machine=1)
    cluster.acquire_slot(0)
    free = cluster.machines_with_free_slots()
    assert [m.machine_id for m in free] == [1]


def test_cluster_rack_assignment():
    cluster = Cluster(num_machines=45, machines_per_rack=20)
    racks = {m.rack for m in cluster.machines}
    assert racks == {0, 1, 2}


def test_cluster_reset():
    cluster = Cluster(num_machines=2, slots_per_machine=2)
    cluster.acquire_slot(0)
    cluster.reset()
    assert cluster.busy_slots == 0
    assert cluster.machine(0).busy_slots == 0


def test_cluster_requires_machines():
    with pytest.raises(ValueError):
        Cluster(num_machines=0)


def test_blacklist_strikes():
    blacklist = Blacklist(strikes_to_blacklist=2)
    assert not blacklist.record_strike(3)
    assert blacklist.record_strike(3)  # second strike crosses threshold
    assert blacklist.is_blacklisted(3)
    assert not blacklist.record_strike(3)  # already blacklisted


def test_blacklist_add_remove():
    blacklist = Blacklist()
    blacklist.add(1)
    assert blacklist.is_blacklisted(1)
    blacklist.remove(1)
    assert not blacklist.is_blacklisted(1)


def test_cluster_apply_blacklist_removes_capacity():
    cluster = Cluster(num_machines=4, slots_per_machine=2)
    cluster.blacklist.add(0)
    cluster.apply_blacklist()
    assert cluster.total_slots == 6
    assert not cluster.machine(0).has_free_slot


# -- datastore ------------------------------------------------------------------

def _job_with_input(num_tasks=4):
    return make_single_phase_job(0, 0.0, [1.0] * num_tasks)


def test_datastore_places_replicas():
    store = DataStore(num_machines=10, replicas=3)
    job = _job_with_input()
    store.place_job_inputs(job)
    for task in job.phases[0].tasks:
        assert len(task.preferred_machines) == 3


def test_datastore_placement_is_stable():
    store = DataStore(num_machines=10)
    task = Task(task_id=1, job_id=0, phase_index=0, size=1.0)
    first = store.place_task_input(task)
    second = store.place_task_input(task)
    assert first == second


def test_datastore_locality_checks():
    store = DataStore(num_machines=10)
    task = Task(task_id=1, job_id=0, phase_index=0, size=1.0)
    placement = store.place_task_input(task)
    local = placement[0]
    remote = next(m for m in range(10) if m not in placement)
    assert store.is_local(task, local)
    assert not store.is_local(task, remote)
    assert store.duration_multiplier(task, local) == 1.0
    assert store.duration_multiplier(task, remote) == store.remote_penalty


def test_datastore_only_places_input_phases():
    store = DataStore(num_machines=10)
    job = make_chain_job(0, 0.0, [[1.0] * 2, [1.0]])
    store.place_job_inputs(job)
    assert all(t.preferred_machines for t in job.phases[0].tasks)
    assert all(not t.preferred_machines for t in job.phases[1].tasks)


def test_datastore_respects_existing_preference():
    store = DataStore(num_machines=10)
    task = Task(
        task_id=1, job_id=0, phase_index=0, size=1.0, preferred_machines=(7,)
    )
    assert store.place_task_input(task) == (7,)


def test_datastore_validates_params():
    with pytest.raises(ValueError):
        DataStore(num_machines=0)
    with pytest.raises(ValueError):
        DataStore(num_machines=5, remote_penalty=0.5)


def test_datastore_deterministic_with_seed():
    a = DataStore(num_machines=10, random_source=RandomSource(seed=3))
    b = DataStore(num_machines=10, random_source=RandomSource(seed=3))
    task_a = Task(task_id=1, job_id=0, phase_index=0, size=1.0)
    task_b = Task(task_id=1, job_id=0, phase_index=0, size=1.0)
    assert a.place_task_input(task_a) == b.place_task_input(task_b)
