"""Tests for online beta fitting and alpha (intermediate data) estimation."""

import random

import pytest

from repro.estimation.alpha import AlphaEstimator
from repro.estimation.beta import OnlineBetaEstimator, fit_pareto_shape
from repro.workload.distributions import ParetoDistribution
from repro.workload.job import make_chain_job


def test_fit_pareto_shape_recovers_true_beta():
    rng = random.Random(0)
    dist = ParetoDistribution(shape=1.4, scale=1.0)
    samples = dist.sample_many(rng, 20000)
    estimate = fit_pareto_shape(samples, scale=1.0)
    assert abs(estimate - 1.4) / 1.4 < 0.05


def test_fit_pareto_shape_uses_min_as_default_scale():
    rng = random.Random(1)
    dist = ParetoDistribution(shape=2.0, scale=3.0)
    samples = dist.sample_many(rng, 10000)
    estimate = fit_pareto_shape(samples)
    assert abs(estimate - 2.0) / 2.0 < 0.1


def test_fit_pareto_shape_validation():
    with pytest.raises(ValueError):
        fit_pareto_shape([])
    with pytest.raises(ValueError):
        fit_pareto_shape([1.0], scale=0.0)
    with pytest.raises(ValueError):
        fit_pareto_shape([1.0, 1.0], scale=1.0)  # no tail information


def test_online_estimator_returns_prior_until_warm():
    est = OnlineBetaEstimator(default_beta=1.7, min_samples=10)
    for _ in range(5):
        est.observe(2.0)
    assert est.beta == 1.7


def test_online_estimator_converges():
    # Reproduces the paper's claim that the error drops below ~5% early.
    est = OnlineBetaEstimator(default_beta=1.5, min_samples=20, refresh_every=1)
    rng = random.Random(2)
    dist = ParetoDistribution(shape=1.4, scale=1.0)
    for _ in range(5000):
        est.observe(dist.sample(rng))
    assert est.relative_error(1.4) < 0.05


def test_online_estimator_clamps():
    est = OnlineBetaEstimator(
        min_samples=5, clamp_range=(1.2, 1.8), refresh_every=1
    )
    for v in (1.0, 1.0001, 1.0002, 1.00005, 1.0001, 1.00007):
        est.observe(v)  # nearly constant: raw fit would explode
    assert 1.2 <= est.beta <= 1.8


def test_online_estimator_ignores_nonpositive():
    est = OnlineBetaEstimator()
    est.observe(-1.0)
    est.observe(0.0)
    assert est.num_observations == 0


def test_online_estimator_cache_refresh():
    est = OnlineBetaEstimator(min_samples=5, refresh_every=100)
    rng = random.Random(3)
    dist = ParetoDistribution(shape=1.5)
    for _ in range(50):
        est.observe(dist.sample(rng))
    first = est.beta
    # a handful more observations within refresh window: cached value
    for _ in range(10):
        est.observe(dist.sample(rng))
    assert est.beta == first


def test_online_estimator_validation():
    with pytest.raises(ValueError):
        OnlineBetaEstimator(default_beta=0.0)
    with pytest.raises(ValueError):
        OnlineBetaEstimator(min_samples=1)
    with pytest.raises(ValueError):
        OnlineBetaEstimator(window=5, min_samples=10)
    with pytest.raises(ValueError):
        OnlineBetaEstimator(clamp_range=(2.0, 1.0))
    with pytest.raises(ValueError):
        OnlineBetaEstimator(refresh_every=0)


# -- alpha ----------------------------------------------------------------------

def _recurring_job(job_id, output, name="etl"):
    return make_chain_job(
        job_id=job_id,
        arrival_time=0.0,
        phase_task_sizes=[[1.0] * 10, [1.0] * 4],
        phase_output_data=[output, 0.0],
        name=name,
    )


def test_alpha_estimator_predicts_from_history():
    est = AlphaEstimator()
    for i, output in enumerate((20.0, 22.0, 18.0)):
        est.observe_job(_recurring_job(i, output))
    assert est.predict_phase_output("etl", 0) == pytest.approx(20.0)


def test_alpha_estimator_returns_none_without_history():
    est = AlphaEstimator()
    assert est.predict_phase_output("unknown", 0) is None


def test_alpha_prediction_neutral_without_history():
    est = AlphaEstimator()
    job = _recurring_job(0, 20.0, name="never-seen")
    assert est.predict_alpha(job) == 1.0


def test_alpha_prediction_uses_history():
    est = AlphaEstimator()
    for i in range(3):
        est.observe_job(_recurring_job(i, 20.0))
    new_run = _recurring_job(9, 21.0)
    # upstream work 10, predicted downstream comm 20 -> alpha ~ 2
    assert est.predict_alpha(new_run) == pytest.approx(2.0)


def test_alpha_accuracy_tracking():
    est = AlphaEstimator()
    est.observe_job(_recurring_job(0, 20.0))
    est.observe_job(_recurring_job(1, 20.0))  # perfect prediction
    assert est.accuracy == pytest.approx(1.0)
    est.observe_job(_recurring_job(2, 40.0))  # 50% error on this one
    assert 0.5 < est.accuracy < 1.0
    assert est.num_predictions_scored == 2


def test_alpha_estimator_ignores_anonymous_jobs():
    est = AlphaEstimator()
    est.observe_phase_output("", 0, 50.0)
    assert est.predict_phase_output("", 0) is None


def test_alpha_estimator_validation():
    with pytest.raises(ValueError):
        AlphaEstimator(network_rate=0.0)
    est = AlphaEstimator()
    with pytest.raises(ValueError):
        est.observe_phase_output("x", 0, -1.0)


def test_alpha_network_rate_scales_prediction():
    est = AlphaEstimator(network_rate=2.0)
    for i in range(2):
        est.observe_job(_recurring_job(i, 20.0))
    assert est.predict_alpha(_recurring_job(5, 20.0)) == pytest.approx(1.0)
