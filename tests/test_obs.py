"""Observability tests: primitives, trace correctness on pinned runs,
zero-perturbation differentials, schema-2 serialization, conservation
counters, and the git-history trajectory report.

The pinned-trace digest below plays the same role as the golden study
digests: the simulation is deterministic, so the full JSONL trace of a
fixed workload is reproducible byte for byte. If an intentional change
(new event type, reordered instrumentation) moves it, regenerate with
the inline snippet in ``test_decentralized_trace_digest_is_pinned``.
"""

import hashlib
import json
import subprocess

import pytest

from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_centralized,
    run_decentralized,
)
from repro.metrics.serialize import result_from_dict, result_to_dict
from repro.obs import (
    Counters,
    Obs,
    PhaseTimers,
    Tracer,
    aggregate_counters,
    aggregate_timers,
    obs_from_env,
)
from repro.obs import trajectory as traj

#: One small decentralized workload reused across the pinned-trace tests.
SPEC = WorkloadSpec(num_jobs=12, utilization=0.6, total_slots=60, seed=5)

PINNED_TRACE_DIGEST = (
    "38d4fb72f1c35e8fc8e2dffabd9d89cb88c5cf61a84eed42f556a3f81561d57a"
)


# -- primitives --------------------------------------------------------------


def test_counters_accumulate_and_sort():
    counters = Counters()
    counters.inc("b")
    counters.inc("a", 3)
    counters.inc("b", 2)
    assert counters.get("b") == 3
    assert counters.get("missing") == 0
    assert list(counters.as_dict()) == ["a", "b"]
    assert counters.as_dict() == {"a": 3, "b": 3}


def test_phase_timers_accumulate_calls_and_seconds():
    timers = PhaseTimers()
    timers.add("x", 0.5)
    timers.add("x", 0.25)
    with timers.phase("y"):
        pass
    cells = timers.as_dict()
    assert cells["x"] == {"calls": 2, "seconds": 0.75}
    assert cells["y"]["calls"] == 1
    assert cells["y"]["seconds"] >= 0.0


def test_tracer_spans_and_instants():
    tracer = Tracer()
    tracer.begin("job", "job", ("job", 1), 0.0, job=1)
    tracer.instant("spec", "spec.win", 0.5, job=1, task=2)
    assert tracer.open_spans() == 1
    tracer.end(("job", 1), 2.0, tasks=4)
    assert tracer.open_spans() == 0
    # End without begin drops quietly (truncated-run tolerance).
    tracer.end(("job", 99), 3.0)
    assert [r["ev"] for r in tracer.records] == ["instant", "span"]
    span = tracer.records[1]
    assert span["t0"] == 0.0 and span["t1"] == 2.0
    assert span["args"] == {"job": 1, "tasks": 4}


def test_tracer_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.instant("a", "x", 1.0, k=1)
    tracer.begin("b", "y", "key", 1.0)
    tracer.end("key", 2.0)
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(str(path)) == 2
    assert Tracer.read_jsonl(str(path)) == tracer.records


def test_chrome_trace_export_shape():
    tracer = Tracer()
    tracer.begin("copy", "task", "k", 1.5, job=3, machine=7)
    tracer.end("k", 2.5)
    tracer.instant("blacklist", "evict", 4.0, machine=9)
    tracer.instant("spec", "spec.win", 5.0, job=3)
    doc = Tracer.chrome_trace(tracer.records)
    assert doc["displayTimeUnit"] == "ms"
    span, evict, win = doc["traceEvents"]
    assert span["ph"] == "X"
    assert span["ts"] == pytest.approx(1.5e6)
    assert span["dur"] == pytest.approx(1.0e6)
    assert span["tid"] == 7  # machine wins over job
    assert evict["ph"] == "i" and evict["s"] == "g" and evict["tid"] == 9
    assert win["tid"] == 3  # no machine: falls back to job


def test_obs_bundle_and_report():
    off = Obs()
    assert off.tracer is None
    on = Obs(trace=True)
    assert isinstance(on.tracer, Tracer)
    on.counters.inc("n", 2)
    on.timers.add("p", 0.1)
    report = on.report()
    assert report["counters"] == {"n": 2}
    assert report["timers"]["p"]["calls"] == 1


def test_obs_from_env():
    assert obs_from_env({}) is None
    assert obs_from_env({"REPRO_OBS": "0"}) is None
    assert obs_from_env({"REPRO_OBS": "false"}) is None
    enabled = obs_from_env({"REPRO_OBS": "1"})
    assert enabled is not None
    assert enabled.tracer is None  # tracing never enables via env


def test_aggregate_timers_and_counters_skip_empty_reports():
    reports = [
        None,
        {"counters": {"a": 1}, "timers": {"p": {"calls": 1, "seconds": 0.5}}},
        {"counters": {"a": 2, "b": 1},
         "timers": {"p": {"calls": 2, "seconds": 1.0}}},
    ]
    assert aggregate_counters(reports) == {"a": 3, "b": 1}
    assert aggregate_timers(reports) == {
        "p": {"calls": 3, "seconds": 1.5}
    }


# -- pinned-run trace correctness --------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    obs = Obs(trace=True)
    result = run_decentralized(build_trace(SPEC), "hopper", SPEC, obs=obs)
    return obs, result


def test_job_spans_match_job_records(traced_run):
    obs, result = traced_run
    job_spans = [r for r in obs.tracer.records if r["cat"] == "job"]
    assert len(job_spans) == result.num_jobs
    by_id = {record.job_id: record for record in result.jobs}
    for span in job_spans:
        record = by_id[span["args"]["job"]]
        assert span["t1"] - span["t0"] == pytest.approx(
            record.duration, abs=1e-9
        )


def test_trace_is_ordered_by_completion_and_fully_closed(traced_run):
    obs, _ = traced_run
    assert obs.tracer.open_spans() == 0
    ends = [r["t1"] if r["ev"] == "span" else r["t"]
            for r in obs.tracer.records]
    assert all(a <= b for a, b in zip(ends, ends[1:]))


def test_copy_spans_nest_inside_their_job_span(traced_run):
    obs, _ = traced_run
    job_spans = {
        r["args"]["job"]: r
        for r in obs.tracer.records
        if r["cat"] == "job"
    }
    copy_spans = [
        r
        for r in obs.tracer.records
        if r["ev"] == "span" and r["cat"] == "copy"
    ]
    assert copy_spans
    for span in copy_spans:
        parent = job_spans[span["args"]["job"]]
        assert parent["t0"] - 1e-9 <= span["t0"]
        assert span["t1"] <= parent["t1"] + 1e-9


def test_decentralized_trace_digest_is_pinned(traced_run):
    obs, _ = traced_run
    payload = "".join(
        json.dumps(record, sort_keys=True) + "\n"
        for record in obs.tracer.records
    )
    assert (
        hashlib.sha256(payload.encode()).hexdigest() == PINNED_TRACE_DIGEST
    )


# -- zero perturbation when off ----------------------------------------------


@pytest.mark.parametrize("kind", ["centralized", "decentralized"])
def test_obs_on_does_not_perturb_results(kind):
    """Differential: a fully instrumented run must produce byte-identical
    simulation results; instrumentation may never consume entropy or
    reorder events. With obs off the document is the pre-obs schema-1
    shape exactly (that is what keeps the golden study digests pinned)."""
    runner = run_centralized if kind == "centralized" else run_decentralized
    trace = build_trace(SPEC)
    off = runner(trace, "hopper", SPEC, obs=None)
    on = runner(trace, "hopper", SPEC, obs=Obs(trace=True))

    off_doc = result_to_dict(off)
    assert off_doc["schema_version"] == 1
    assert "obs" not in off_doc

    on_doc = result_to_dict(on)
    assert on_doc["schema_version"] == 2
    on_doc.pop("obs")
    on_doc["schema_version"] = 1
    assert json.dumps(off_doc, sort_keys=True) == json.dumps(
        on_doc, sort_keys=True
    )


# -- schema-2 serialization --------------------------------------------------


def test_schema2_round_trip_preserves_obs_section():
    obs = Obs(trace=True)
    result = run_decentralized(
        build_trace(SPEC),
        "hopper",
        SPEC,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        strike_threshold=3,
        strike_window=1e9,
        obs=obs,
    )
    assert result.evictions > 0
    assert result.machine_strikes
    doc = result_to_dict(result)
    assert doc["schema_version"] == 2
    assert doc["obs"]["evictions"] == result.evictions
    assert doc["obs"]["requests_dropped"] == result.requests_dropped

    restored = result_from_dict(json.loads(json.dumps(doc)))
    assert restored.evictions == result.evictions
    assert restored.reinstatements == result.reinstatements
    assert restored.requests_dropped == result.requests_dropped
    assert restored.machine_strikes == result.machine_strikes
    assert restored.obs["counters"] == obs.counters.as_dict()


def test_unknown_schema_version_rejected():
    doc = result_to_dict(
        run_decentralized(build_trace(SPEC), "hopper", SPEC, obs=None)
    )
    doc["schema_version"] = 99
    with pytest.raises(ValueError):
        result_from_dict(doc)


# -- eviction accounting and conservation ------------------------------------


def test_decentralized_eviction_accounting_and_conservation():
    obs = Obs(trace=True)
    result = run_decentralized(
        build_trace(SPEC),
        "hopper",
        SPEC,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        strike_threshold=3,
        strike_window=1e9,
        obs=obs,
    )
    counts = obs.counters.as_dict()
    assert result.evictions > 0
    assert counts["blacklist.evictions"] == result.evictions
    assert result.requests_dropped > 0
    # Conservation: every sent probe is queued or dropped; every queued
    # probe is consumed or purged; requests_dropped covers both losses.
    assert counts["msg.sent"] == (
        counts.get("msg.batches", 0) + counts.get("msg.coalesced", 0)
    )
    assert counts["probe.sent"] == (
        counts.get("probe.queued", 0) + counts.get("probe.dropped", 0)
    )
    assert counts["probe.queued"] == (
        counts.get("probe.consumed", 0) + counts.get("probe.purged", 0)
    )
    assert result.requests_dropped == (
        counts.get("probe.dropped", 0) + counts.get("probe.purged", 0)
    )
    evict_instants = [
        r
        for r in obs.tracer.records
        if r["cat"] == "blacklist" and r["name"] == "evict"
    ]
    assert len(evict_instants) == result.evictions


def test_centralized_eviction_accounting_and_phase_timers():
    obs = Obs(trace=True)
    result = run_centralized(
        build_trace(SPEC),
        "hopper",
        SPEC,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        obs=obs,
    )
    counts = obs.counters.as_dict()
    assert result.evictions > 0
    assert counts["blacklist.evictions"] == result.evictions
    assert result.machine_strikes
    assert all(v > 0 for v in result.machine_strikes.values())
    timers = obs.timers.as_dict()
    for phase in (
        "engine.dispatch",
        "index.rebuild",
        "policy.allocate",
        "policy.evaluate_completion",
    ):
        assert phase in timers, f"missing phase timer {phase}"
    assert timers["engine.dispatch"]["calls"] == 1


def test_machine_strikes_survive_without_obs():
    """Strike totals are unconditional diagnostics: they populate the
    in-memory result even on an uninstrumented run (they ride the
    existing blacklist bookkeeping, not the obs hot path)."""
    result = run_centralized(
        build_trace(SPEC),
        "hopper",
        SPEC,
        straggler_model="machine-correlated",
        blacklist_policy="strikes",
        obs=None,
    )
    assert result.machine_strikes
    assert result.evictions > 0
    assert result.obs is None  # and serialization stays schema 1


# -- trajectory reporting ----------------------------------------------------


def _git(repo, *args):
    subprocess.run(
        [
            "git",
            "-C",
            str(repo),
            "-c",
            "user.email=test@example.com",
            "-c",
            "user.name=test",
            *args,
        ],
        check=True,
        capture_output=True,
    )


@pytest.fixture()
def bench_repo(tmp_path):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    for rate in (1000.0, 1500.0):
        (repo / "BENCH_demo.json").write_text(
            json.dumps(
                {
                    "benchmark": "demo",
                    "aggregate": {"events_per_sec": rate},
                    "per_system": {
                        "decentralized": {"events_per_sec": rate * 2}
                    },
                }
            )
        )
        _git(repo, "add", "BENCH_demo.json")
        _git(repo, "commit", "-q", "-m", f"bench at {rate:g}")
    # A table-mirror document (no aggregate) must be skipped, not fatal.
    (repo / "BENCH_demo.json").write_text(json.dumps({"tables": {}}))
    _git(repo, "add", "BENCH_demo.json")
    _git(repo, "commit", "-q", "-m", "table mirror")
    return repo


def test_bench_history_replays_commits_oldest_first(bench_repo):
    entries = traj.bench_history("demo", repo_root=str(bench_repo))
    assert [e["events_per_sec"] for e in entries] == [1000.0, 1500.0]
    assert entries[0]["subject"] == "bench at 1000"
    assert entries[1]["per_system"] == {"decentralized": 3000.0}


def test_trajectory_rows_and_markdown(bench_repo):
    entries = traj.bench_history("demo", repo_root=str(bench_repo))
    rows = traj.trajectory_rows(entries)
    assert rows[0][-1] == "—"
    assert rows[1][-1] == "+50.0%"
    markdown = traj.format_markdown({"demo": entries})
    assert "## BENCH_demo.json" in markdown
    assert "| 1,500 | +50.0% |" in markdown


def test_bench_history_limit_keeps_newest(bench_repo):
    entries = traj.bench_history(
        "demo", repo_root=str(bench_repo), limit=1
    )
    assert [e["events_per_sec"] for e in entries] == [1500.0]


def test_missing_history_is_empty_not_fatal(bench_repo):
    assert traj.bench_history("nope", repo_root=str(bench_repo)) == []


def test_trajectory_error_outside_git(tmp_path):
    plain = tmp_path / "plain"
    plain.mkdir()
    with pytest.raises(traj.TrajectoryError):
        traj.bench_history("demo", repo_root=str(plain))
