"""Central name registries for everything an experiment references.

The paper's results compare *named* systems (fair / SRPT / Hopper,
Sparrow / Sparrow-SRPT / Hopper) under *named* policies (LATE / Mantri /
GRASS speculation, Pareto stragglers) on *named* workload profiles.
Before this module those names were hardcoded four different ways —
tuples in ``sweep/spec.py``, if-chains in the harness, a private dict
for the decentralized systems, and string checks in the speculation
factory. Adding one new scheduler meant editing four files in lockstep.

Now every named thing registers here exactly once, with:

* a **factory** that builds it,
* a typed **knob schema** (name -> type / default / validator) where the
  thing is parameterizable, and
* a one-line **description** surfaced by ``python -m repro list``.

``RunSpec`` validation, the harness runners, and the CLI all resolve
through these registries, so registering a new entry makes it usable
end-to-end (spec -> sweep -> study -> CLI) with no other edits:

    from repro.registry import CENTRALIZED_SYSTEMS
    CENTRALIZED_SYSTEMS.register(
        "lifo", lambda epsilon: MyLifoPolicy(), description="LIFO strawman"
    )
    RunSpec("centralized", "lifo", WorkloadParams()).execute()

Registries
----------
``SPEC_KINDS``
    Run shapes: ``centralized``, ``decentralized``, ``batch``,
    ``single_job``, ``serving``. Each kind carries its systems
    sub-registry, its knob schema, and the executor that turns a
    :class:`~repro.sweep.spec.RunSpec` into a
    :class:`~repro.metrics.collector.SimulationResult`.
``SYSTEMS``
    The plane-tagged view over every system registry: each entry
    carries its ``plane`` (``centralized`` / ``decentralized`` /
    ``batch`` / ``single_job`` / ``serving``) next to the per-plane
    entry. The per-plane registries below remain the storage, so they
    double as filtered back-compat views.
``CENTRALIZED_SYSTEMS`` / ``DECENTRALIZED_SYSTEMS`` / ``BATCH_SYSTEMS`` /
``SINGLE_JOB_SYSTEMS`` / ``SERVING_SYSTEMS``
    Schedulers per kind.
``SPECULATION_POLICIES``
    Straggler-mitigation algorithms (LATE, Mantri, GRASS, none).
``STRAGGLER_MODELS``
    Generative straggler models, resolvable by name from a spec knob.
``BLACKLIST_POLICIES``
    Mid-run machine-eviction policies (see :mod:`repro.cluster.policy`),
    resolvable by name from the ``blacklist_policy`` spec knob.
``AUTOSCALER_POLICIES``
    Elastic-cluster autoscalers (see :mod:`repro.cluster.elastic`),
    resolvable by name from the ``autoscaler`` spec knob; they emit
    mid-run ADD_MACHINE/REMOVE_MACHINE events on every plane.
``WORKLOAD_PROFILES``
    Synthetic trace profiles (Facebook / Bing and their Spark variants).
``STUDIES``
    Named multi-seed experiment grids (populated by
    :mod:`repro.experiments.figures`; use :func:`studies` to read it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)


class RegistryError(ValueError):
    """Base class for registry lookup/registration failures."""


class UnknownEntryError(RegistryError):
    """Raised when a name is not registered; message lists valid names."""


class DuplicateEntryError(RegistryError):
    """Raised when a name is registered twice without ``replace=True``."""


class KnobError(RegistryError):
    """Raised when a knob name or value fails its schema."""


def type_label(expected: Union[type, Tuple[type, ...]]) -> str:
    """Human-readable name of a knob's expected type(s)."""
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__


_type_label = type_label


def _type_matches(value: Any, expected: type) -> bool:
    # bool is an int subclass; keep the two distinct so a schema can
    # demand a real flag (and an int knob reject True/False).
    if expected is bool:
        return isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, expected)


@dataclass(frozen=True)
class Knob:
    """One typed, validated keyword parameter of a registry entry.

    Attributes
    ----------
    name:
        Keyword name as it appears in ``RunSpec.knobs``.
    type:
        Expected Python type (or tuple of types). ``float`` accepts
        ints; ``int``/``float`` reject bools.
    default:
        Value used when the knob is omitted (documentation only — specs
        never inject defaults, so digests are unaffected).
    description:
        One line for ``repro list``.
    validator:
        Optional predicate on the value; ``False``/raising means invalid.
    choices:
        Optional callable returning the valid names for this knob
        (typically a registry's bound ``names`` method, so late
        registrations count). A value outside the choices raises a
        :class:`KnobError` that *lists* the registered names — a bare
        "rejected value" echo is useless when the fix is picking one of
        a family's members.
    """

    name: str
    type: Union[type, Tuple[type, ...]] = float
    default: Any = None
    description: str = ""
    validator: Optional[Callable[[Any], bool]] = None
    choices: Optional[Callable[[], Sequence[str]]] = None

    def validate(self, value: Any) -> None:
        """Raise :class:`KnobError` unless ``value`` fits this knob."""
        expected = self.type if isinstance(self.type, tuple) else (self.type,)
        if not any(_type_matches(value, t) for t in expected):
            raise KnobError(
                f"knob {self.name!r} must be {_type_label(self.type)}, "
                f"got {value!r} ({type(value).__name__})"
            )
        if self.choices is not None:
            valid = tuple(self.choices())
            if value not in valid:
                raise KnobError(
                    f"knob {self.name!r} got unknown name {value!r}; "
                    f"registered names: "
                    f"{', '.join(sorted(valid)) or '(none)'}"
                )
        if self.validator is not None and not self.validator(value):
            raise KnobError(
                f"knob {self.name!r} rejected value {value!r}"
                + (f" ({self.description})" if self.description else "")
            )


@dataclass(frozen=True)
class Entry:
    """One registered name: factory + knob schema + description."""

    name: str
    factory: Any
    description: str = ""
    knobs: Mapping[str, Knob] = field(default_factory=dict)


class Registry:
    """An ordered name -> :class:`Entry` table with helpful errors.

    ``label`` names the registry in every error message (the tests pin
    this: an unknown-name error must say *which* registry rejected the
    name and list what it does contain).
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self._entries: Dict[str, Entry] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Any,
        description: str = "",
        knobs: Iterable[Knob] = (),
        replace: bool = False,
    ) -> Entry:
        """Register ``factory`` under ``name``; duplicate names raise."""
        if not name or not isinstance(name, str):
            raise RegistryError(
                f"{self.label} name must be a non-empty string, got {name!r}"
            )
        if name in self._entries and not replace:
            raise DuplicateEntryError(
                f"{self.label} {name!r} is already registered; "
                f"pass replace=True to override"
            )
        entry = Entry(
            name=name,
            factory=factory,
            description=description,
            knobs={knob.name: knob for knob in knobs},
        )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (plugin teardown / tests)."""
        self._entries.pop(name, None)

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str) -> Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.label} {name!r}; "
                f"valid entries: {', '.join(sorted(self._entries)) or '(none)'}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def entries(self) -> Tuple[Entry, ...]:
        return tuple(self._entries.values())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.label!r}, {list(self._entries)})"


# --------------------------------------------------------------------------
# Spec kinds: run shapes a RunSpec can take
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SpecKind:
    """One run shape: systems sub-registry + knob schema + executor."""

    name: str
    systems: Registry
    knobs: Mapping[str, Knob]
    run: Callable[[Any], Any]  # RunSpec -> SimulationResult
    description: str = ""

    def validate_knobs(self, items: Sequence[Tuple[str, Any]]) -> None:
        """Validate normalized ``(name, value)`` knob pairs for this kind."""
        for key, value in items:
            try:
                knob = self.knobs[key]
            except KeyError:
                raise KnobError(
                    f"unknown {self.name} knob {key!r}; "
                    f"expected one of {sorted(self.knobs)}"
                ) from None
            knob.validate(value)


SPEC_KINDS = Registry("spec kind")
CENTRALIZED_SYSTEMS = Registry("centralized system")
DECENTRALIZED_SYSTEMS = Registry("decentralized system")
BATCH_SYSTEMS = Registry("batch system")
SINGLE_JOB_SYSTEMS = Registry("single_job system")
SERVING_SYSTEMS = Registry("serving system")
SPECULATION_POLICIES = Registry("speculation policy")
STRAGGLER_MODELS = Registry("straggler model")
BLACKLIST_POLICIES = Registry("blacklist policy")
AUTOSCALER_POLICIES = Registry("autoscaler policy")
WORKLOAD_PROFILES = Registry("workload profile")
STUDIES = Registry("study")


# --------------------------------------------------------------------------
# The plane-tagged systems table
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SystemEntry:
    """One system seen through :data:`SYSTEMS`: a plane tag plus the
    underlying per-plane :class:`Entry`."""

    plane: str
    entry: Entry

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def factory(self) -> Any:
        return self.entry.factory

    @property
    def description(self) -> str:
        return self.entry.description

    @property
    def knobs(self) -> Mapping[str, Knob]:
        return self.entry.knobs

    @property
    def qualified(self) -> str:
        """The unambiguous ``plane/name`` form of this system."""
        return f"{self.plane}/{self.entry.name}"


class SystemsTable:
    """A live plane-tagged view over the per-plane system registries.

    The per-plane registries (``CENTRALIZED_SYSTEMS`` et al.) stay the
    storage — registering through either surface is visible through
    both, so existing ``register()`` call sites and plugin teardown keep
    working unchanged. Lookups accept a bare name (when unambiguous), a
    qualified ``plane/name`` string, or an explicit ``plane=`` keyword.
    """

    def __init__(self, planes: Mapping[str, Registry]) -> None:
        self._planes: Dict[str, Registry] = dict(planes)

    def planes(self) -> Tuple[str, ...]:
        return tuple(self._planes)

    def plane(self, name: str) -> Registry:
        """The per-plane registry backing one plane (the filtered view)."""
        try:
            return self._planes[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown scheduler plane {name!r}; "
                f"valid planes: {', '.join(self._planes)}"
            ) from None

    def register(
        self, plane: str, name: str, factory: Any, **kwargs: Any
    ) -> Entry:
        """Register a system on ``plane`` (delegates to its registry)."""
        return self.plane(plane).register(name, factory, **kwargs)

    def get(self, system: str, plane: Optional[str] = None) -> SystemEntry:
        """Resolve ``system`` to a :class:`SystemEntry`.

        ``system`` may be qualified (``"batch/hopper"``); a bare name is
        accepted only when it exists on exactly one plane — otherwise
        the error lists the qualified candidates.
        """
        if plane is None and "/" in system:
            plane, _, system = system.partition("/")
        if plane is not None:
            return SystemEntry(plane, self.plane(plane).get(system))
        hits = [
            SystemEntry(p, reg.get(system))
            for p, reg in self._planes.items()
            if system in reg
        ]
        if not hits:
            raise UnknownEntryError(
                f"unknown system {system!r}; registered systems: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        if len(hits) > 1:
            qualified = ", ".join(hit.qualified for hit in hits)
            raise RegistryError(
                f"system name {system!r} is registered on several planes "
                f"({qualified}); qualify it as plane/name or pass plane="
            )
        return hits[0]

    def entries(self) -> Tuple[SystemEntry, ...]:
        return tuple(
            SystemEntry(p, e)
            for p, reg in self._planes.items()
            for e in reg.entries()
        )

    def names(self) -> Tuple[str, ...]:
        """Qualified ``plane/name`` strings for every registered system."""
        return tuple(entry.qualified for entry in self.entries())

    def __contains__(self, system: object) -> bool:
        if not isinstance(system, str):
            return False
        if "/" in system:
            plane, _, name = system.partition("/")
            reg = self._planes.get(plane)
            return reg is not None and name in reg
        return any(system in reg for reg in self._planes.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return sum(len(reg) for reg in self._planes.values())

    def __repr__(self) -> str:
        return f"SystemsTable({list(self._planes)})"


SYSTEMS = SystemsTable(
    {
        "centralized": CENTRALIZED_SYSTEMS,
        "decentralized": DECENTRALIZED_SYSTEMS,
        "batch": BATCH_SYSTEMS,
        "single_job": SINGLE_JOB_SYSTEMS,
        "serving": SERVING_SYSTEMS,
    }
)


def spec_kind(name: str) -> SpecKind:
    """Resolve a registered :class:`SpecKind` by name."""
    return SPEC_KINDS.get(name).factory


def studies() -> Registry:
    """The study registry, with the built-in studies loaded."""
    import repro.experiments.batch  # noqa: F401  (batch_rounds study)
    import repro.experiments.blacklist  # noqa: F401  (registers blacklist)
    import repro.experiments.blacklist_policy  # noqa: F401  (eviction study)
    import repro.experiments.elastic  # noqa: F401  (elastic study)
    import repro.experiments.figures  # noqa: F401  (registers studies)
    import repro.experiments.scale  # noqa: F401  (registers the scale study)
    import repro.experiments.serving  # noqa: F401  (steady_state study)

    return STUDIES


def make_straggler_model(
    name: str,
    profile: Any = None,
    num_machines: Optional[int] = None,
    **kwargs: Any,
):
    """Build a registered straggler model.

    ``profile`` parameterizes distribution shapes; ``num_machines`` is
    the per-run cluster size, required by machine-correlated models
    (the harness passes it automatically) and ignored by i.i.d. ones.
    """
    return STRAGGLER_MODELS.get(name).factory(
        profile, num_machines=num_machines, **kwargs
    )


def make_blacklist_policy(
    name: str,
    num_machines: Optional[int] = None,
    **kwargs: Any,
):
    """Build a registered blacklist policy (or None for ``"none"``).

    ``num_machines`` is the per-run cluster size, required by every
    real policy to bound its eviction cap; the harness wires it
    automatically for both simulator planes.
    """
    return BLACKLIST_POLICIES.get(name).factory(
        num_machines=num_machines, **kwargs
    )


def make_autoscaler(name: str, **kwargs: Any):
    """Build a registered autoscaler policy (or None for ``"none"``).

    Keyword knobs are the ``_autoscaler_knobs()`` family; each factory
    consumes the ones it understands and ignores the rest, so callers
    may pass the whole knob group through unconditionally.
    """
    return AUTOSCALER_POLICIES.get(name).factory(**kwargs)


# --------------------------------------------------------------------------
# Built-in registrations
#
# Domain modules are imported lazily inside the factories/executors so
# importing ``repro.registry`` never drags in the simulators (and so no
# import cycles form: domain modules may import this module freely).
# --------------------------------------------------------------------------

def _fair_factory(epsilon: float = 0.1):
    from repro.centralized.policies import FairPolicy

    return FairPolicy()


def _srpt_factory(epsilon: float = 0.1):
    from repro.centralized.policies import SRPTPolicy

    return SRPTPolicy()


def _hopper_factory(epsilon: float = 0.1):
    from repro.centralized.policies import HopperPolicy

    return HopperPolicy(epsilon=epsilon)


@dataclass(frozen=True)
class CentralizedSystemDefaults:
    """A centralized scheduler family member: policy factory plus the
    speculation mode the paper runs it under by default.

    Instances are callable with the legacy ``factory(epsilon=...) ->
    CentralizedPolicy`` contract, so plain-callable registrations (and
    any code holding ``entry.factory``) keep working; the harness
    additionally reads ``speculation_mode`` instead of special-casing
    system names. ``speculation_mode`` is a
    :class:`~repro.centralized.config.SpeculationMode` value string so
    this module never imports the simulator at import time.
    """

    make_policy: Any
    speculation_mode: Optional[str] = None

    def __call__(self, epsilon: float = 0.1):
        return self.make_policy(epsilon=epsilon)


CENTRALIZED_SYSTEMS.register(
    "fair",
    CentralizedSystemDefaults(_fair_factory, speculation_mode="best_effort"),
    description="max-min fair sharing across active jobs",
)
CENTRALIZED_SYSTEMS.register(
    "srpt",
    CentralizedSystemDefaults(_srpt_factory, speculation_mode="best_effort"),
    description="shortest remaining processing time (speculation-blind)",
)
CENTRALIZED_SYSTEMS.register(
    "hopper",
    CentralizedSystemDefaults(_hopper_factory, speculation_mode="integrated"),
    description="speculation-aware Hopper allocation (the paper's system)",
)


@dataclass(frozen=True)
class DecentralizedSystemDefaults:
    """Per-system defaults the paper uses for the decentralized runs.

    ``late_binding`` switches the probe protocol to Sparrow's
    late-binding mode (probes reserve a slot; the worker pulls the
    concrete task at execution time). ``power_of_d`` oversamples the
    probe targets ``d``-fold and keeps the least-loaded workers;
    ``1`` is plain uniform sampling and leaves the entropy stream
    untouched.
    """

    worker_policy: Any
    probe_ratio: float
    epsilon: float
    late_binding: bool = False
    power_of_d: int = 1


def _sparrow_defaults() -> DecentralizedSystemDefaults:
    from repro.decentralized.config import WorkerPolicy

    return DecentralizedSystemDefaults(WorkerPolicy.FIFO, 2.0, 1.0)


def _sparrow_srpt_defaults() -> DecentralizedSystemDefaults:
    from repro.decentralized.config import WorkerPolicy

    return DecentralizedSystemDefaults(WorkerPolicy.SRPT, 2.0, 1.0)


def _decentralized_hopper_defaults() -> DecentralizedSystemDefaults:
    from repro.decentralized.config import WorkerPolicy

    return DecentralizedSystemDefaults(WorkerPolicy.HOPPER, 4.0, 0.1)


def _sparrow_lb_defaults() -> DecentralizedSystemDefaults:
    from repro.decentralized.config import WorkerPolicy

    return DecentralizedSystemDefaults(
        WorkerPolicy.FIFO, 2.0, 1.0, late_binding=True
    )


def _sparrow_po2_defaults() -> DecentralizedSystemDefaults:
    from repro.decentralized.config import WorkerPolicy

    return DecentralizedSystemDefaults(
        WorkerPolicy.FIFO, 2.0, 1.0, power_of_d=2
    )


DECENTRALIZED_SYSTEMS.register(
    "sparrow",
    _sparrow_defaults,
    description="Sparrow batch sampling, FIFO worker queues (d=2)",
)
DECENTRALIZED_SYSTEMS.register(
    "sparrow-srpt",
    _sparrow_srpt_defaults,
    description="Sparrow with SRPT worker queues (the strong baseline)",
)
DECENTRALIZED_SYSTEMS.register(
    "hopper",
    _decentralized_hopper_defaults,
    description="decentralized Hopper (d=4, epsilon=0.1 fairness)",
)
DECENTRALIZED_SYSTEMS.register(
    "sparrow-lb",
    _sparrow_lb_defaults,
    description=(
        "Sparrow with late binding: probes reserve, workers pull the "
        "task at execution time"
    ),
)
DECENTRALIZED_SYSTEMS.register(
    "sparrow-po2",
    _sparrow_po2_defaults,
    description=(
        "Sparrow with power-of-2 probe sampling (oversample, keep the "
        "least-loaded)"
    ),
)

BATCH_SYSTEMS.register(
    "fair",
    CentralizedSystemDefaults(_fair_factory, speculation_mode="best_effort"),
    description="periodic rounds of max-min fair sharing",
)
BATCH_SYSTEMS.register(
    "srpt",
    CentralizedSystemDefaults(_srpt_factory, speculation_mode="best_effort"),
    description="periodic rounds of SRPT allocation",
)
BATCH_SYSTEMS.register(
    "hopper",
    CentralizedSystemDefaults(_hopper_factory, speculation_mode="integrated"),
    description="periodic rounds of Hopper allocation over the buffer",
)

SINGLE_JOB_SYSTEMS.register(
    "hopper",
    _hopper_factory,
    description="single-job Hopper with uncapped LATE (Fig. 3 setting)",
)


@dataclass(frozen=True)
class ServingSystem:
    """A serving-regime target: which plane, and which system on it.

    The open-loop driver streams into either simulator family; an entry
    here names one (plane, system) pair so a ``serving`` RunSpec stays
    a flat name like every other kind. ``system`` must itself be
    registered in that plane's own registry.
    """

    plane: str  # "centralized" | "decentralized"
    system: str


SERVING_SYSTEMS.register(
    "hopper",
    ServingSystem("decentralized", "hopper"),
    description="open-loop stream into decentralized Hopper (d=4)",
)
SERVING_SYSTEMS.register(
    "sparrow-srpt",
    ServingSystem("decentralized", "sparrow-srpt"),
    description="open-loop stream into Sparrow-SRPT (the strong baseline)",
)
SERVING_SYSTEMS.register(
    "hopper-c",
    ServingSystem("centralized", "hopper"),
    description="open-loop stream into centralized Hopper",
)
SERVING_SYSTEMS.register(
    "srpt-c",
    ServingSystem("centralized", "srpt"),
    description="open-loop stream into centralized SRPT",
)


def _late_factory(**kwargs):
    from repro.speculation.late import LATE

    return LATE(**kwargs)


def _mantri_factory(**kwargs):
    from repro.speculation.mantri import Mantri

    return Mantri(**kwargs)


def _grass_factory(**kwargs):
    from repro.speculation.grass import GRASS

    return GRASS(**kwargs)


def _no_speculation_factory(**kwargs):
    from repro.speculation.none import NoSpeculation

    return NoSpeculation()


SPECULATION_POLICIES.register(
    "late",
    _late_factory,
    description="LATE: speculate the slowest-progress tasks [Zaharia08]",
)
SPECULATION_POLICIES.register(
    "mantri",
    _mantri_factory,
    description="Mantri: resource-aware restarts [Ananthanarayanan10]",
)
SPECULATION_POLICIES.register(
    "grass",
    _grass_factory,
    description="GRASS: deadline-greedy speculation [Ananthanarayanan14]",
)
SPECULATION_POLICIES.register(
    "none",
    _no_speculation_factory,
    description="no speculative copies (original attempts only)",
)
SPECULATION_POLICIES.register(
    "off",
    _no_speculation_factory,
    description="alias of 'none'",
)


def _pareto_redraw_model(profile, num_machines=None, **kwargs):
    from repro.stragglers.model import ParetoRedrawStragglerModel
    from repro.workload.generator import FACEBOOK_PROFILE

    profile = profile or FACEBOOK_PROFILE
    return ParetoRedrawStragglerModel(
        beta=profile.beta, scale=profile.task_scale, **kwargs
    )


def _iid_pareto_model(profile, num_machines=None, **kwargs):
    from repro.stragglers.model import ParetoStragglerModel

    return ParetoStragglerModel(**kwargs)


def _no_straggler_model(profile, num_machines=None, **kwargs):
    from repro.stragglers.model import NoStragglerModel

    return NoStragglerModel()


def _machine_correlated_model(profile, num_machines=None, **kwargs):
    from repro.stragglers.model import MachineCorrelatedStragglerModel

    if num_machines is None:
        raise KnobError(
            "straggler model 'machine-correlated' needs the per-run "
            "num_machines; run it through the harness/RunSpec (which "
            "wire the cluster size automatically) or pass num_machines "
            "to make_straggler_model()"
        )
    return MachineCorrelatedStragglerModel(
        num_machines=num_machines, **kwargs
    )


STRAGGLER_MODELS.register(
    "pareto-redraw",
    _pareto_redraw_model,
    description=(
        "paper-faithful i.i.d. Pareto redraw per copy (2/beta analysis)"
    ),
)
STRAGGLER_MODELS.register(
    "iid-pareto",
    _iid_pareto_model,
    description="bounded-Pareto straggle multipliers, i.i.d. per copy",
)
STRAGGLER_MODELS.register(
    "none",
    _no_straggler_model,
    description="ideal cluster: every copy runs at nominal speed",
)
STRAGGLER_MODELS.register(
    "machine-correlated",
    _machine_correlated_model,
    description=(
        "a persistent flaky fraction of machines straggles (blacklisting "
        "regime); cluster size is wired in per run"
    ),
)


def _no_blacklist_policy(num_machines=None, **kwargs):
    return None


def _strikes_blacklist_policy(num_machines=None, probation=0.0, **kwargs):
    from repro.cluster.policy import StrikeBlacklistPolicy

    if num_machines is None:
        raise KnobError(
            "blacklist policy 'strikes' needs the per-run num_machines; "
            "run it through the harness/RunSpec (which wire the cluster "
            "size automatically) or pass num_machines to "
            "make_blacklist_policy()"
        )
    return StrikeBlacklistPolicy(
        num_machines=num_machines, probation=probation, **kwargs
    )


def _probation_blacklist_policy(num_machines=None, **kwargs):
    from repro.cluster.policy import StrikeBlacklistPolicy

    if num_machines is None:
        raise KnobError(
            "blacklist policy 'strikes-probation' needs the per-run "
            "num_machines; run it through the harness/RunSpec or pass "
            "num_machines to make_blacklist_policy()"
        )
    # Probation defaults to four evidence windows: long enough that a
    # persistently flaky machine re-evicts almost immediately after
    # rejoining, short enough that a falsely struck healthy machine
    # returns its slots within the run.
    window = kwargs.get(
        "strike_window", StrikeBlacklistPolicy.DEFAULT_STRIKE_WINDOW
    )
    probation = kwargs.pop("probation", 4.0 * float(window))
    return StrikeBlacklistPolicy(
        num_machines=num_machines, probation=probation, **kwargs
    )


def _no_autoscaler(**kwargs):
    return None


def _schedule_autoscaler(
    resize_schedule: str = "",
    min_machines: int = 1,
    **kwargs,
):
    from repro.cluster.elastic import ScheduleAutoscaler, parse_resize_schedule

    if not resize_schedule:
        raise KnobError(
            "autoscaler 'schedule' needs a non-empty resize_schedule knob "
            '("time:delta,..." — e.g. "30:+8,90:-8")'
        )
    return ScheduleAutoscaler(
        parse_resize_schedule(resize_schedule), min_machines=min_machines
    )


def _reactive_autoscaler(
    scale_interval: float = 5.0,
    scale_up_threshold: float = 0.85,
    scale_down_threshold: float = 0.30,
    scale_step: int = 1,
    min_machines: int = 1,
    **kwargs,
):
    from repro.cluster.elastic import ReactiveAutoscaler

    return ReactiveAutoscaler(
        interval=scale_interval,
        upper=scale_up_threshold,
        lower=scale_down_threshold,
        step=scale_step,
        min_machines=min_machines,
    )


AUTOSCALER_POLICIES.register(
    "none",
    _no_autoscaler,
    description="fixed capacity (the default; the elastic path stays idle)",
)
AUTOSCALER_POLICIES.register(
    "schedule",
    _schedule_autoscaler,
    description=(
        "fixed timed resizes from the resize_schedule knob "
        '("time:delta,..." — deterministic)'
    ),
)
AUTOSCALER_POLICIES.register(
    "reactive",
    _reactive_autoscaler,
    description=(
        "utilization-threshold scaler sampled every scale_interval: "
        "grow scale_step machines above the upper threshold, shrink "
        "below the lower"
    ),
)


BLACKLIST_POLICIES.register(
    "none",
    _no_blacklist_policy,
    description="no mid-run eviction (the default; substrate stays idle)",
)
BLACKLIST_POLICIES.register(
    "strikes",
    _strikes_blacklist_policy,
    description=(
        "evict after k slow completions in a sliding window (capped "
        "fraction of the cluster); evictions are permanent"
    ),
)
BLACKLIST_POLICIES.register(
    "strikes-probation",
    _probation_blacklist_policy,
    description=(
        "strike-driven eviction with probation: evicted machines rejoin "
        "with a clean record after four evidence windows"
    ),
)


def _register_workload_profiles() -> None:
    from repro.workload import generator

    for profile in (
        generator.FACEBOOK_PROFILE,
        generator.SPARK_FACEBOOK_PROFILE,
        generator.SPARK_BING_PROFILE,
        generator.BING_PROFILE,
    ):
        WORKLOAD_PROFILES.register(
            profile.name,
            profile,
            description=(
                f"beta={profile.beta:g}, task_scale={profile.task_scale:g}"
            ),
        )


_register_workload_profiles()


# --------------------------------------------------------------------------
# Spec-kind executors and knob schemas
# --------------------------------------------------------------------------

def _run_centralized_spec(spec):
    from repro.experiments.harness import build_trace, run_centralized

    wspec = spec.workload.to_workload_spec()
    trace = build_trace(wspec)
    kwargs = {k: v for k, v in spec.knobs}
    mode = kwargs.pop("speculation_mode", None)
    if mode is not None:
        from repro.centralized.config import SpeculationMode

        kwargs["speculation_mode"] = SpeculationMode(mode)
    # A string-valued straggler_model knob stays a name here; the harness
    # resolves it with the per-run num_machines wired in.
    return run_centralized(
        trace,
        spec.system,
        wspec,
        speculation=spec.speculation,
        run_seed=spec.run_seed,
        **kwargs,
    )


def _run_decentralized_spec(spec):
    from repro.experiments.harness import build_trace, run_decentralized

    wspec = spec.workload.to_workload_spec()
    trace = build_trace(wspec)
    kwargs = {k: v for k, v in spec.knobs}
    return run_decentralized(
        trace,
        spec.system,
        wspec,
        speculation=spec.speculation,
        run_seed=spec.run_seed,
        **kwargs,
    )


def _run_batch_spec(spec):
    from repro.experiments.harness import build_trace, run_batch

    wspec = spec.workload.to_workload_spec()
    trace = build_trace(wspec)
    kwargs = {k: v for k, v in spec.knobs}
    mode = kwargs.pop("speculation_mode", None)
    if mode is not None:
        from repro.centralized.config import SpeculationMode

        kwargs["speculation_mode"] = SpeculationMode(mode)
    return run_batch(
        trace,
        spec.system,
        wspec,
        speculation=spec.speculation,
        run_seed=spec.run_seed,
        **kwargs,
    )


def _run_single_job_spec(spec):
    """Fig. 3's one-job threshold experiment as a registrable spec kind.

    One spec is one repetition at one normalized slot count:
    ``workload.seed`` is the base seed, ``run_seed`` is the repetition
    index, and the knobs carry the Pareto tail and the slot budget. The
    seeding math reproduces the original figure loop exactly, so curves
    are bit-identical to the pre-registry implementation. The trace-shape
    fields of ``workload`` other than ``seed`` are unused (the single
    job is synthesized directly from the knobs).
    """
    from repro.centralized.config import CentralizedConfig
    from repro.centralized.simulator import CentralizedSimulator
    from repro.cluster.cluster import Cluster
    from repro.simulation.rng import RandomSource
    from repro.speculation import make_speculation_policy
    from repro.stragglers.model import ParetoRedrawStragglerModel
    from repro.workload.distributions import ParetoDistribution
    from repro.workload.job import make_single_phase_job
    from repro.workload.traces import Trace

    knobs = {k: v for k, v in spec.knobs}
    beta = float(knobs.get("beta", 1.4))
    num_tasks = int(knobs.get("num_tasks", 200))
    normalized_slots = float(knobs.get("normalized_slots", 1.0))
    base_seed = spec.workload.seed
    repetition = spec.run_seed

    slots = max(1, int(round(normalized_slots * num_tasks)))
    source = RandomSource(seed=base_seed + 1000 * repetition)
    rng = source.child("fig3").rng
    duration_dist = ParetoDistribution(shape=beta, scale=1.0)
    sizes = [duration_dist.sample(rng) for _ in range(num_tasks)]
    job = make_single_phase_job(0, 0.0, sizes)
    trace = Trace(jobs=[job])

    policy = SINGLE_JOB_SYSTEMS.get(spec.system).factory(epsilon=1.0)
    if spec.speculation == "late":
        # Uncapped LATE so the job can exploit slots beyond one-per-task.
        speculation = lambda: make_speculation_policy(  # noqa: E731
            "late",
            detect_after=0.25,
            speculative_cap_fraction=1.0,
            slow_task_pct=1.0,
            max_copies=6,
        )
    else:
        speculation = lambda: make_speculation_policy(  # noqa: E731
            spec.speculation
        )
    simulator = CentralizedSimulator(
        cluster=Cluster(num_machines=slots, slots_per_machine=1),
        policy=policy,
        speculation=speculation,
        trace=trace.fresh_copy(),
        straggler_model=ParetoRedrawStragglerModel(beta=beta),
        config=CentralizedConfig(
            learn_beta=False,
            default_beta=beta,
            epsilon=1.0,
            speculation_check_interval=0.25,
            preempt_speculative=False,
            max_copies_cap=6,
        ),
        random_source=RandomSource(seed=base_seed + repetition),
    )
    return simulator.run()


def _run_serving_spec(spec):
    from repro.serving.driver import run_serving_spec

    return run_serving_spec(spec)


def _arrival_process_names() -> Tuple[str, ...]:
    from repro.serving.arrivals import ARRIVAL_PROCESSES

    return ARRIVAL_PROCESSES.names()


def _straggler_model_knob() -> Knob:
    return Knob(
        "straggler_model",
        type=str,
        default="pareto-redraw",
        description="straggler model name (see STRAGGLER_MODELS)",
        choices=STRAGGLER_MODELS.names,
    )


def _blacklist_knobs() -> Tuple[Knob, ...]:
    """Eviction-policy knobs shared by both simulator planes."""
    return (
        Knob(
            "blacklist_policy",
            type=str,
            default="none",
            description=(
                "mid-run machine-eviction policy (see BLACKLIST_POLICIES)"
            ),
            choices=BLACKLIST_POLICIES.names,
        ),
        Knob(
            "strike_threshold",
            type=int,
            default=3,
            description="strikes within the window that evict a machine",
            validator=lambda v: v >= 1,
        ),
        Knob(
            "strike_window",
            type=float,
            default=10.0,
            description="sliding strike-evidence window (virtual seconds)",
            validator=lambda v: v > 0.0,
        ),
        Knob(
            "eviction_cap",
            type=float,
            default=0.2,
            description="max fraction of machines evicted at once",
            validator=lambda v: 0.0 < v <= 1.0,
        ),
    )


def _autoscaler_knobs() -> Tuple[Knob, ...]:
    """Elastic-cluster knobs shared by every simulator-backed kind."""
    return (
        Knob(
            "autoscaler",
            type=str,
            default="none",
            description=(
                "elastic-cluster autoscaler (see AUTOSCALER_POLICIES)"
            ),
            choices=AUTOSCALER_POLICIES.names,
        ),
        Knob(
            "resize_schedule",
            type=str,
            default=None,
            description=(
                'timed resizes for autoscaler="schedule" '
                '("time:delta,..." — e.g. "30:+8,90:-8")'
            ),
        ),
        Knob(
            "scale_interval",
            type=float,
            default=5.0,
            description="reactive-autoscaler sampling cadence (virtual s)",
            validator=lambda v: v > 0.0,
        ),
        Knob(
            "scale_up_threshold",
            type=float,
            default=0.85,
            description="grow when sampled utilization exceeds this",
            validator=lambda v: 0.0 < v <= 1.0,
        ),
        Knob(
            "scale_down_threshold",
            type=float,
            default=0.30,
            description="shrink when sampled utilization falls below this",
            validator=lambda v: 0.0 <= v < 1.0,
        ),
        Knob(
            "scale_step",
            type=int,
            default=1,
            description="machines added/removed per reactive decision",
            validator=lambda v: v >= 1,
        ),
        Knob(
            "min_machines",
            type=int,
            default=1,
            description="shrinks never go below this many live machines",
            validator=lambda v: v >= 1,
        ),
    )


_CENTRALIZED_KNOBS = (
    Knob(
        "epsilon",
        type=float,
        default=0.1,
        description="Hopper fairness knob (0 = perfectly fair floors)",
        validator=lambda v: 0.0 <= v <= 1.0,
    ),
    Knob(
        "locality_k_percent",
        type=float,
        default=3.0,
        description="data-locality allowance k (percent)",
        validator=lambda v: v >= 0.0,
    ),
    Knob(
        "speculation_mode",
        type=str,
        default=None,
        description="integrated | best_effort | budgeted",
        validator=lambda v: v in ("integrated", "best_effort", "budgeted"),
    ),
    Knob(
        "with_locality",
        type=bool,
        default=False,
        description="attach a DataStore and track locality",
    ),
    Knob(
        "slots_per_machine",
        type=int,
        default=4,
        description="slots per simulated machine",
        validator=lambda v: v >= 1,
    ),
    _straggler_model_knob(),
    *_blacklist_knobs(),
    *_autoscaler_knobs(),
)

_DECENTRALIZED_KNOBS = (
    Knob(
        "epsilon",
        type=float,
        default=None,
        description="fairness knob override (default per system)",
        validator=lambda v: 0.0 <= v <= 1.0,
    ),
    Knob(
        "probe_ratio",
        type=float,
        default=None,
        description="probes per task d (default 2 baseline / 4 Hopper)",
        validator=lambda v: v > 0.0,
    ),
    Knob(
        "refusal_threshold",
        type=int,
        default=2,
        description="max refusals before a probe must accept",
        validator=lambda v: v >= 0,
    ),
    Knob(
        "num_schedulers",
        type=int,
        default=10,
        description="independent schedulers sharing the cluster",
        validator=lambda v: v >= 1,
    ),
    Knob(
        "until",
        type=float,
        default=None,
        description="optional simulation horizon (virtual seconds)",
        validator=lambda v: v > 0.0,
    ),
    Knob(
        "power_of_d",
        type=int,
        default=1,
        description=(
            "probe-target oversampling: sample d x the probes, keep the "
            "least-loaded (1 = plain uniform sampling)"
        ),
        validator=lambda v: v >= 1,
    ),
    _straggler_model_knob(),
    *_blacklist_knobs(),
    *_autoscaler_knobs(),
)

_BATCH_KNOBS = (
    *_CENTRALIZED_KNOBS,
    Knob(
        "round_interval",
        type=float,
        default=0.5,
        description=(
            "periodic scheduling-round interval (virtual seconds; 0 = "
            "a round per event batch, converging to per-arrival)"
        ),
        validator=lambda v: v >= 0.0,
    ),
    Knob(
        "until",
        type=float,
        default=None,
        description="optional simulation horizon (virtual seconds)",
        validator=lambda v: v > 0.0,
    ),
)

_SERVING_KNOBS = (
    Knob(
        "arrival_process",
        type=str,
        default="poisson",
        description="arrival-process family (see ARRIVAL_PROCESSES)",
        choices=_arrival_process_names,
    ),
    Knob(
        "warmup",
        type=float,
        default=20.0,
        description="transient truncated before measurement (virtual s)",
        validator=lambda v: v >= 0.0,
    ),
    Knob(
        "horizon",
        type=float,
        default=120.0,
        description="arrival/measurement end (virtual seconds)",
        validator=lambda v: v > 0.0,
    ),
    Knob(
        "cooldown",
        type=float,
        default=20.0,
        description="drain time past the horizon (virtual seconds)",
        validator=lambda v: v >= 0.0,
    ),
    Knob(
        "window",
        type=float,
        default=20.0,
        description="metrics window width (virtual seconds)",
        validator=lambda v: v > 0.0,
    ),
    Knob(
        "heavy_tail",
        type=float,
        default=0.0,
        description="Pareto shape of whole-job size multipliers (0 = off)",
        validator=lambda v: v == 0.0 or v > 1.0,
    ),
    _straggler_model_knob(),
    *_autoscaler_knobs(),
)

_SINGLE_JOB_KNOBS = (
    Knob(
        "beta",
        type=float,
        default=1.4,
        description="Pareto tail index of task durations",
        validator=lambda v: v > 0.0,
    ),
    Knob(
        "num_tasks",
        type=int,
        default=200,
        description="tasks in the single-phase job",
        validator=lambda v: v >= 1,
    ),
    Knob(
        "normalized_slots",
        type=float,
        default=1.0,
        description="slot budget as a fraction of num_tasks",
        validator=lambda v: v > 0.0,
    ),
)

SPEC_KINDS.register(
    "centralized",
    SpecKind(
        name="centralized",
        systems=CENTRALIZED_SYSTEMS,
        knobs={knob.name: knob for knob in _CENTRALIZED_KNOBS},
        run=_run_centralized_spec,
        description="one omniscient scheduler over the whole cluster",
    ),
    description="one omniscient scheduler over the whole cluster",
)
SPEC_KINDS.register(
    "decentralized",
    SpecKind(
        name="decentralized",
        systems=DECENTRALIZED_SYSTEMS,
        knobs={knob.name: knob for knob in _DECENTRALIZED_KNOBS},
        run=_run_decentralized_spec,
        description="Sparrow-style probe-based schedulers (the paper's scale)",
    ),
    description="Sparrow-style probe-based schedulers (the paper's scale)",
)
SPEC_KINDS.register(
    "batch",
    SpecKind(
        name="batch",
        systems=BATCH_SYSTEMS,
        knobs={knob.name: knob for knob in _BATCH_KNOBS},
        run=_run_batch_spec,
        description=(
            "periodic scheduling rounds over an accumulated pending "
            "buffer (Firmament-style batch mode)"
        ),
    ),
    description="periodic batch-mode rounds over a pending buffer",
)
SPEC_KINDS.register(
    "single_job",
    SpecKind(
        name="single_job",
        systems=SINGLE_JOB_SYSTEMS,
        knobs={knob.name: knob for knob in _SINGLE_JOB_KNOBS},
        run=_run_single_job_spec,
        description="one synthetic job on a dedicated cluster (Fig. 3)",
    ),
    description="one synthetic job on a dedicated cluster (Fig. 3)",
)
SPEC_KINDS.register(
    "serving",
    SpecKind(
        name="serving",
        systems=SERVING_SYSTEMS,
        knobs={knob.name: knob for knob in _SERVING_KNOBS},
        run=_run_serving_spec,
        description=(
            "open-loop arrival stream at a target rho with windowed "
            "steady-state tail metrics (workload.utilization is rho, "
            "workload.num_jobs the injection safety cap)"
        ),
    ),
    description="open-loop heavy-traffic stream with steady-state tails",
)


__all__ = [
    "Knob",
    "Entry",
    "type_label",
    "Registry",
    "RegistryError",
    "UnknownEntryError",
    "DuplicateEntryError",
    "KnobError",
    "SpecKind",
    "SystemEntry",
    "SystemsTable",
    "CentralizedSystemDefaults",
    "DecentralizedSystemDefaults",
    "ServingSystem",
    "SPEC_KINDS",
    "SYSTEMS",
    "CENTRALIZED_SYSTEMS",
    "DECENTRALIZED_SYSTEMS",
    "BATCH_SYSTEMS",
    "SINGLE_JOB_SYSTEMS",
    "SERVING_SYSTEMS",
    "SPECULATION_POLICIES",
    "STRAGGLER_MODELS",
    "BLACKLIST_POLICIES",
    "AUTOSCALER_POLICIES",
    "WORKLOAD_PROFILES",
    "STUDIES",
    "spec_kind",
    "studies",
    "make_straggler_model",
    "make_blacklist_policy",
    "make_autoscaler",
]
