"""Centralized scheduling: Fair, SRPT and Hopper policies on one master.

This mirrors the paper's Hadoop-YARN / Spark prototypes (§6.2): a central
resource manager assigns slots to jobs; per-job speculation algorithms
(LATE/Mantri/GRASS) propose duplicate copies; the policy decides who gets
slots. Baselines implement the §3 strawmen: best-effort and budgeted
speculation.
"""

from repro.centralized.policies import (
    CentralizedPolicy,
    FairPolicy,
    HopperPolicy,
    SRPTPolicy,
)
from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.simulator import CentralizedSimulator

__all__ = [
    "CentralizedPolicy",
    "FairPolicy",
    "SRPTPolicy",
    "HopperPolicy",
    "CentralizedConfig",
    "SpeculationMode",
    "CentralizedSimulator",
]
