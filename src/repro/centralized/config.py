"""Configuration for the centralized simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpeculationMode(enum.Enum):
    """How speculative copies compete for slots (§3).

    INTEGRATED:
        Hopper's coordination — speculation shares the job's allocation,
        which already budgets for it via virtual sizes.
    BEST_EFFORT:
        Speculative copies run only on slots left over after every job's
        original tasks are served (the common practice today).
    BUDGETED:
        A fixed pool of slots is reserved exclusively for speculative
        copies; original tasks may not use it even when it sits idle.
    """

    INTEGRATED = "integrated"
    BEST_EFFORT = "best_effort"
    BUDGETED = "budgeted"


@dataclass
class CentralizedConfig:
    """Tunables for :class:`CentralizedSimulator`.

    Attributes
    ----------
    epsilon:
        Fairness knob for Hopper (§4.3); 1.0 disables fairness floors.
    locality_k_percent:
        Locality relaxation window (§4.4), in percent of active jobs.
    speculation_mode:
        See :class:`SpeculationMode`.
    budget_fraction:
        Fraction of slots reserved when mode is BUDGETED.
    speculation_check_interval:
        Sim-time between periodic straggler scans.
    network_rate:
        Data units transferred per time unit (feeds alpha).
    learn_beta:
        Fit beta online from completed tasks; otherwise use default_beta.
    default_beta:
        Prior tail index before enough samples accumulate.
    use_alpha:
        Weight virtual sizes by sqrt(alpha) for DAG jobs.
    preempt_speculative:
        In INTEGRATED mode, kill a job's youngest speculative copies when
        it runs above its target so the slots can be reallocated
        (originals are never preempted).
    max_copies_cap:
        Upper bound, in copies per remaining task, on how many slots a
        job can usefully hold (feeds JobAllocationState.max_useful_slots).
        2 matches production frameworks; the Fig. 3 threshold study
        raises it so extra slots can actually buy more speculation.
    """

    epsilon: float = 0.1
    locality_k_percent: float = 3.0
    speculation_mode: SpeculationMode = SpeculationMode.INTEGRATED
    budget_fraction: float = 0.15
    speculation_check_interval: float = 1.0
    spec_eval_min_interval: float = 0.25
    network_rate: float = 1.0
    learn_beta: bool = True
    default_beta: float = 1.5
    use_alpha: bool = True
    preempt_speculative: bool = True
    max_copies_cap: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 <= self.locality_k_percent <= 100.0:
            raise ValueError("locality_k_percent must be in [0, 100]")
        if not 0.0 <= self.budget_fraction < 1.0:
            raise ValueError("budget_fraction must be in [0, 1)")
        if self.speculation_check_interval <= 0:
            raise ValueError("speculation_check_interval must be positive")
        if self.spec_eval_min_interval < 0:
            raise ValueError("spec_eval_min_interval must be non-negative")
        if self.network_rate <= 0:
            raise ValueError("network_rate must be positive")
        if self.default_beta <= 0:
            raise ValueError("default_beta must be positive")
