"""Event-driven centralized cluster simulator.

Replays a trace through a central scheduler: on every job arrival, task
completion, or periodic straggler scan, the policy recomputes slot targets
and the dispatcher fills deficits — original tasks first, then speculative
copies proposed by the job's speculation algorithm. When any copy of a
task finishes, its sibling copies are killed and their slot-time is
accounted as speculation waste.

The simulator owns all runtime state; jobs/tasks keep only the minimal
flags needed for replay (`reset_runtime_state`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.policies import CentralizedPolicy
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.core.allocation import JobAllocationState
from repro.core.locality import pick_job_with_locality
from repro.core.virtual_size import virtual_size
from repro.estimation.alpha import AlphaEstimator
from repro.estimation.beta import OnlineBetaEstimator
from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.simulation.engine import EventHandle, Simulator
from repro.simulation.rng import RandomSource
from repro.speculation.base import JobExecutionView, SpeculationPolicy
from repro.stragglers.model import StragglerModel
from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task, TaskState
from repro.workload.traces import Trace


class _JobRuntime:
    """Mutable per-job execution state owned by the simulator."""

    __slots__ = (
        "job",
        "view",
        "pending",
        "pending_ids",
        "activated_phases",
        "running_copies",
        "running_speculative",
        "spec_dirty",
        "spec_cache_time",
        "spec_candidates",
    )

    def __init__(self, job: Job) -> None:
        self.job = job
        self.view = JobExecutionView(job=job)
        self.pending: Deque[Task] = deque()
        self.pending_ids: Set[int] = set()
        self.activated_phases: Set[int] = set()
        self.running_copies = 0
        self.running_speculative = 0
        # Throttled speculation-candidate cache.
        self.spec_dirty = True
        self.spec_cache_time = -float("inf")
        self.spec_candidates: list = []

    def activate_runnable_phases(self) -> None:
        """Move tasks of newly-runnable phases into the pending queue."""
        for phase in self.job.phases:
            if phase.index in self.activated_phases:
                continue
            if self.job.phase_is_runnable(phase):
                self.activated_phases.add(phase.index)
                for task in phase.tasks:
                    if not task.is_finished:
                        self.pending.append(task)
                        self.pending_ids.add(task.task_id)

    def pop_pending(self, prefer_machine: Optional[int]) -> Optional[Task]:
        """Take the next pending task, preferring one local to
        ``prefer_machine`` (bounded scan)."""
        while self.pending and self.pending[0].is_finished:
            dropped = self.pending.popleft()
            self.pending_ids.discard(dropped.task_id)
        if not self.pending:
            return None
        if prefer_machine is not None:
            scan_limit = min(len(self.pending), 64)
            for i in range(scan_limit):
                task = self.pending[i]
                if not task.is_finished and task.prefers(prefer_machine):
                    del self.pending[i]
                    self.pending_ids.discard(task.task_id)
                    return task
        task = self.pending.popleft()
        self.pending_ids.discard(task.task_id)
        return task

    def has_pending_local_to(self, machine_id: int) -> bool:
        scan_limit = min(len(self.pending), 64)
        for i in range(scan_limit):
            task = self.pending[i]
            if not task.is_finished and task.prefers(machine_id):
                return True
        return False


class CentralizedSimulator:
    """Simulates a trace under one centralized policy.

    Parameters
    ----------
    cluster:
        Machines and slots.
    policy:
        Allocation policy (Fair / SRPT / Hopper).
    speculation:
        Factory returning a (possibly shared) speculation policy; called
        once per job so stateful policies stay per-job.
    trace:
        Jobs to replay (runtime state must be fresh).
    straggler_model:
        Slowdown generator.
    config:
        Knobs; see :class:`CentralizedConfig`.
    datastore:
        Optional block placement for locality modelling.
    random_source:
        Seed hierarchy.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: CentralizedPolicy,
        speculation: Callable[[], SpeculationPolicy],
        trace: Trace,
        straggler_model: StragglerModel,
        config: Optional[CentralizedConfig] = None,
        datastore: Optional[DataStore] = None,
        random_source: Optional[RandomSource] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.speculation_factory = speculation
        self.trace = trace
        self.straggler_model = straggler_model
        self.config = config or CentralizedConfig()
        self.datastore = datastore
        self.random_source = random_source or RandomSource(seed=0)

        self.sim = Simulator()
        self.metrics = MetricsCollector(scheduler_name=policy.name)
        self.beta_estimator = OnlineBetaEstimator(
            default_beta=self.config.default_beta
        )
        self.alpha_estimator = AlphaEstimator(
            network_rate=self.config.network_rate
        )

        self._rng = self.random_source.child("centralized").rng
        self._jobs: Dict[int, _JobRuntime] = {}
        self._spec_policies: Dict[int, SpeculationPolicy] = {}
        self._copy_events: Dict[int, EventHandle] = {}
        self._next_copy_id = 0
        self._spec_check_scheduled = False
        self._jobs_completed = 0

        self._total_slots = cluster.total_slots
        self._spec_budget = 0
        if self.config.speculation_mode is SpeculationMode.BUDGETED:
            self._spec_budget = int(
                self.config.budget_fraction * self._total_slots
            )
        self._running_spec_copies = 0
        self._running_original_copies = 0

    # ------------------------------------------------------------------ run --

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Replay the whole trace; returns the metrics."""
        self.cluster.reset()
        for job in self.trace:
            self.sim.schedule_at(job.arrival_time, self._on_job_arrival, job)
        self.sim.run(until=until)
        return self.metrics.result

    # -------------------------------------------------------------- helpers --

    def _beta(self) -> float:
        if self.config.learn_beta:
            return self.beta_estimator.beta
        return self.config.default_beta

    def _job_alpha(self, job: Job) -> float:
        if not self.config.use_alpha or job.num_phases == 1:
            return 1.0
        return self.alpha_estimator.predict_alpha(job)

    def _allocation_states(self) -> List[JobAllocationState]:
        beta = self._beta()
        states: List[JobAllocationState] = []
        for jr in self._jobs.values():
            remaining = jr.job.remaining_tasks()
            if remaining <= 0:
                continue
            alpha = self._job_alpha(jr.job)
            vsize = virtual_size(remaining, beta, alpha)
            priority = vsize
            if self.policy.uses_virtual_sizes and jr.job.num_phases > 1:
                downstream_tasks = jr.job.downstream_virtual_tasks(
                    self.config.network_rate
                )
                if downstream_tasks > 0:
                    priority = max(vsize, virtual_size(downstream_tasks, beta))
            max_useful = max(
                int(math.ceil(vsize)),
                self.config.max_copies_cap * remaining,
            )
            states.append(
                JobAllocationState(
                    job_id=jr.job.job_id,
                    virtual_size=vsize,
                    remaining_tasks=remaining,
                    weight=jr.job.weight,
                    priority_size=priority,
                    max_useful_slots=max_useful,
                )
            )
        return states

    def _pick_machine(self, task: Task) -> Optional[int]:
        """Free machine for a copy: local replica holder if possible."""
        for machine_id in task.preferred_machines:
            machine = self.cluster.machine(machine_id)
            if machine.has_free_slot:
                return machine_id
        free = self.cluster.machines_with_free_slots()
        if not free:
            return None
        return self._rng.choice(free).machine_id

    # ------------------------------------------------------------- events ----

    def _on_job_arrival(self, job: Job) -> None:
        if self.datastore is not None:
            self.datastore.place_job_inputs(job)
        jr = _JobRuntime(job)
        jr.activate_runnable_phases()
        self._jobs[job.job_id] = jr
        self._spec_policies[job.job_id] = self.speculation_factory()
        self._reschedule()
        self._ensure_spec_check()

    def _ensure_spec_check(self) -> None:
        if self._spec_check_scheduled or not self._jobs:
            return
        self._spec_check_scheduled = True
        self.sim.schedule(
            self.config.speculation_check_interval, self._on_spec_check
        )

    def _on_spec_check(self) -> None:
        self._spec_check_scheduled = False
        if not self._jobs:
            return
        self._reschedule(evaluate_speculation=True)
        self._ensure_spec_check()

    def _launch_copy(self, jr: _JobRuntime, task: Task, speculative: bool) -> bool:
        machine_id = self._pick_machine(task)
        if machine_id is None:
            return False
        attempt = jr.view.attempts(task)
        slowdown = self.straggler_model.slowdown(
            self._rng, task, machine_id, attempt
        )
        local = True
        penalty = 1.0
        if self.datastore is not None:
            local = self.datastore.is_local(task, machine_id)
            penalty = self.datastore.duration_multiplier(task, machine_id)
        duration = task.size * slowdown * penalty
        copy = TaskCopy(
            copy_id=self._next_copy_id,
            task=task,
            machine_id=machine_id,
            start_time=self.sim.now,
            duration=duration,
            speculative=speculative,
        )
        self._next_copy_id += 1
        jr.view.register_copy(copy)
        jr.spec_dirty = True
        jr.running_copies += 1
        if speculative:
            jr.running_speculative += 1
            self._running_spec_copies += 1
        else:
            self._running_original_copies += 1
        task.state = TaskState.RUNNING
        self.cluster.acquire_slot(machine_id)
        handle = self.sim.schedule(duration, self._on_copy_finish, copy, jr)
        self._copy_events[copy.copy_id] = handle
        self.metrics.record_copy_launch(speculative=speculative, local=local)
        return True

    def _kill_copy(self, copy: TaskCopy, jr: _JobRuntime) -> None:
        handle = self._copy_events.pop(copy.copy_id, None)
        if handle is not None:
            handle.cancel()
        copy.killed = True
        copy.end_time = self.sim.now
        self.cluster.release_slot(copy.machine_id)
        jr.view.remove_copy(copy)
        jr.spec_dirty = True
        jr.running_copies -= 1
        if copy.speculative:
            jr.running_speculative -= 1
            self._running_spec_copies -= 1
        else:
            self._running_original_copies -= 1
        self.metrics.record_copy_killed(copy.resource_time(self.sim.now))

    def _on_copy_finish(self, copy: TaskCopy, jr: _JobRuntime) -> None:
        self._copy_events.pop(copy.copy_id, None)
        copy.finished = True
        copy.end_time = self.sim.now
        self.cluster.release_slot(copy.machine_id)
        jr.view.remove_copy(copy)
        jr.spec_dirty = True
        jr.running_copies -= 1
        if copy.speculative:
            jr.running_speculative -= 1
            self._running_spec_copies -= 1
        else:
            self._running_original_copies -= 1
        task = copy.task
        self.metrics.record_copy_finished(
            copy.duration,
            speculative_win=copy.speculative and not task.is_finished,
        )

        if not task.is_finished:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            task.completed_by_speculative = copy.speculative
            jr.job.phase(task.phase_index).mark_task_finished(task.size)
            jr.view.completed_durations.append(copy.duration)
            self.beta_estimator.observe(copy.duration)
            # Kill the losers of the race.
            for other in list(jr.view.copies_by_task.get(task.task_id, ())):
                if other.is_running:
                    self._kill_copy(other, jr)
            if task.task_id in jr.pending_ids:
                # Never launched a copy? Then this finish is inconsistent.
                jr.pending_ids.discard(task.task_id)
            jr.activate_runnable_phases()
            if jr.job.is_complete:
                self._complete_job(jr)
        self._reschedule()

    def _complete_job(self, jr: _JobRuntime) -> None:
        job = jr.job
        job.finish_time = self.sim.now
        self.metrics.record_job_completion(
            job_id=job.job_id,
            name=job.name,
            num_tasks=job.num_tasks,
            dag_length=job.dag_length,
            arrival_time=job.arrival_time,
            finish_time=self.sim.now,
        )
        self.alpha_estimator.observe_job(job)
        del self._jobs[job.job_id]
        del self._spec_policies[job.job_id]
        self._jobs_completed += 1

    # ----------------------------------------------------------- dispatch ----

    def _reschedule(self, evaluate_speculation: bool = False) -> None:
        """Recompute targets and dispatch.

        Original copies are dispatched on every event; the speculation
        sweep (which scans every running copy's progress) runs only from
        the periodic straggler scan, mirroring how LATE/Mantri run as a
        periodic monitor thread in real frameworks.
        """
        if not self._jobs:
            return
        states = self._allocation_states()
        if not states:
            return

        mode = self.config.speculation_mode
        if mode is SpeculationMode.BUDGETED:
            original_slots = self._total_slots - self._spec_budget
        else:
            original_slots = self._total_slots

        targets = self.policy.allocate(states, original_slots)
        self.metrics.record_guideline_decision(
            constrained=sum(s.virtual_size for s in states) > self._total_slots
        )
        order = self.policy.dispatch_order(states)

        # Coordinated mode may reclaim slots from over-target speculative
        # copies (killing a redundant copy loses no unique work) — this is
        # the "dynamically reallocate the slots" step of Fig. 2.
        if mode is SpeculationMode.INTEGRATED and self.config.preempt_speculative:
            self._preempt_excess_speculation(targets)

        if mode is SpeculationMode.INTEGRATED:
            # Originals within targets, then speculation within targets
            # (small jobs' speculation outranks big jobs' extra
            # originals — the coordination the paper argues for), then
            # work-conserving overflow.
            self._dispatch_originals(order, targets)
            self._dispatch_speculation(order, targets, pool_limit=None)
            self._dispatch_originals(order, targets=None)
        elif mode is SpeculationMode.BEST_EFFORT:
            # All originals first; speculation gets only leftover slots.
            self._dispatch_originals(order, targets)
            self._dispatch_originals(order, targets=None)
            self._dispatch_speculation(order, targets=None, pool_limit=None)
        else:  # BUDGETED
            # Originals may never enter the reserved pool, even when the
            # pool idles — the §3 strawman's defining waste.
            self._dispatch_originals(
                order,
                targets=None,
                original_limit=self._total_slots - self._spec_budget,
            )
            self._dispatch_speculation(
                order, targets=None, pool_limit=self._spec_budget
            )

    def _preempt_excess_speculation(self, targets: Dict[int, int]) -> None:
        """Kill speculative copies of jobs running above their target.

        Victims are the youngest speculative copies (least work lost).
        Original copies are never preempted."""
        now = self.sim.now
        for job_id, jr in list(self._jobs.items()):
            target = targets.get(job_id, 0)
            excess = jr.running_copies - target
            if excess <= 0 or jr.running_speculative <= 0:
                continue
            victims = [
                c
                for copies in jr.view.copies_by_task.values()
                for c in copies
                if c.speculative and len(copies) > 1
            ]
            victims.sort(key=lambda c: c.elapsed(now))
            for victim in victims[: min(excess, len(victims))]:
                self._kill_copy(victim, jr)

    def _dispatch_originals(
        self,
        order: List[JobAllocationState],
        targets: Optional[Dict[int, int]],
        original_limit: Optional[int] = None,
    ) -> None:
        """Launch first copies of pending tasks.

        With ``targets`` set, each job is bounded by its allocation; with
        ``targets=None`` the pass is work-conserving (any pending task may
        take a free slot). ``original_limit`` caps the total number of
        running original copies (budgeted-speculation pool fencing).
        """
        k = self.config.locality_k_percent if self.policy.uses_virtual_sizes else 0.0
        progress = True
        while progress and self.cluster.free_slots > 0:
            if (
                original_limit is not None
                and self._running_original_copies >= original_limit
            ):
                return
            progress = False
            deficient = [
                s
                for s in order
                if s.job_id in self._jobs
                and self._jobs[s.job_id].pending
                and (
                    targets is None
                    or self._jobs[s.job_id].running_copies
                    < targets.get(s.job_id, 0)
                )
            ]
            if not deficient:
                break
            free_machines = self.cluster.machines_with_free_slots()
            if not free_machines:
                break
            machine = free_machines[0]

            def has_local(state: JobAllocationState) -> bool:
                return self._jobs[state.job_id].has_pending_local_to(
                    machine.machine_id
                )

            chosen = pick_job_with_locality(deficient, k, has_local)
            if chosen is None:
                break
            jr = self._jobs[chosen.job_id]
            task = jr.pop_pending(prefer_machine=machine.machine_id)
            if task is None:
                continue
            if self._launch_copy(jr, task, speculative=False):
                progress = True

    def _job_speculation_candidates(self, jr: _JobRuntime) -> list:
        """Throttled candidate evaluation: re-scan a job's progress only
        when its copies changed or the throttle interval elapsed."""
        now = self.sim.now
        if (
            jr.spec_dirty
            or now - jr.spec_cache_time >= self.config.spec_eval_min_interval
        ):
            policy = self._spec_policies[jr.job.job_id]
            jr.spec_candidates = policy.speculation_candidates(jr.view, now)
            jr.spec_cache_time = now
            jr.spec_dirty = False
        return jr.spec_candidates

    def _dispatch_speculation(
        self,
        order: List[JobAllocationState],
        targets: Optional[Dict[int, int]],
        pool_limit: Optional[int],
    ) -> None:
        for state in order:
            jr = self._jobs.get(state.job_id)
            if jr is None:
                continue
            if self.cluster.free_slots <= 0:
                return
            if pool_limit is not None and self._running_spec_copies >= pool_limit:
                return
            candidates = self._job_speculation_candidates(jr)
            for request in candidates:
                if self.cluster.free_slots <= 0:
                    return
                if (
                    pool_limit is not None
                    and self._running_spec_copies >= pool_limit
                ):
                    return
                if targets is not None and jr.running_copies >= targets.get(
                    state.job_id, 0
                ):
                    break
                if request.task.is_finished:
                    continue
                max_copies = self._spec_policies[
                    state.job_id
                ].max_copies_per_task()
                if len(jr.view.copies_of(request.task)) >= max_copies:
                    continue  # stale cached candidate
                self._launch_copy(jr, request.task, speculative=True)
