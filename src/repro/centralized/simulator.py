"""Event-driven centralized cluster simulator.

Replays a trace through a central scheduler: on every job arrival, task
completion, or periodic straggler scan, the policy recomputes slot targets
and the dispatcher fills deficits — original tasks first, then speculative
copies proposed by the job's speculation algorithm. When any copy of a
task finishes, its sibling copies are killed and their slot-time is
accounted as speculation waste.

The simulator owns all runtime state; jobs/tasks keep only the minimal
flags needed for replay (`reset_runtime_state`).

Scale-out notes (10k+-slot clusters):

* per-job state is a :class:`repro.runtime.JobRuntime` and the copy
  lifecycle goes through the shared :class:`repro.runtime.CopyLedger` —
  the same core the decentralized path runs on;
* every "which machine has a free slot?" question is answered by the
  cluster's incremental :class:`~repro.cluster.index.ClusterIndex`
  (O(log machines)) instead of an O(machines) scan. Random placement
  draws ``rng.randrange(free_count)`` and selects the n-th free machine
  in ascending-id order, which consumes the same entropy and returns
  the same machine as the old ``rng.choice(scan)`` — replays are
  bit-identical (pinned by ``tests/test_golden_results.py``);
* allocation state is **incremental** the same way: per-job
  :class:`~repro.core.allocation.JobAllocationState` inputs are cached
  on the runtime and recomputed only for jobs a task-finish dirtied
  (plus a lazy sweep when the beta or alpha-history epoch moves), the
  dispatch order lives in a delta-maintained sorted container, and
  targets are memoized while nothing changed — see
  :class:`repro.core.incremental.IncrementalAllocator`. The
  from-scratch ``_allocation_states()`` builder is kept as the
  reference the differential/property tests compare against;
* trace arrivals are bulk-inserted with
  :meth:`~repro.simulation.engine.Simulator.schedule_many`;
* the speculation-preemption sweep enumerates victims from the view's
  live-speculative index instead of walking every live copy, and only
  visits jobs in the incrementally tracked live-speculation set.

Blacklisting (§2.2): an optional
:class:`~repro.cluster.policy.BlacklistPolicy` observes every copy
completion; when it evicts a machine the simulator kills the machine's
running copies through the ledger, requeues originals whose last copy
died, and applies the blacklist to the cluster (which rebuilds the
free-slot index). With no policy (the default) the whole path is a
single ``is not None`` check per completion — replays are bit-identical
to the policy-free simulator.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.policies import CentralizedPolicy
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.cluster.elastic import AutoscalerPolicy, ElasticController
from repro.cluster.policy import BlacklistPolicy, evaluate_completion
from repro.core.allocation import JobAllocationState
from repro.core.incremental import IncrementalAllocator
from repro.core.locality import pick_job_with_locality
from repro.core.virtual_size import virtual_size
from repro.estimation.alpha import AlphaEstimator
from repro.estimation.beta import OnlineBetaEstimator
from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.obs import Obs
from repro.runtime import CopyLedger, LocalityJobRuntime
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomSource
from repro.speculation.base import SpeculationPolicy
from repro.stragglers.model import StragglerModel
from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task, TaskState
from repro.workload.traces import Trace


class _JobRuntime(LocalityJobRuntime):
    """Centralized per-job state: the shared runtime core with locality
    buckets, plus running-copy counters the dispatcher's deficit math
    reads."""

    __slots__ = ("running_copies", "running_speculative")

    def __init__(self, job: Job, spec_policy: SpeculationPolicy) -> None:
        super().__init__(job, spec_policy)
        self.running_copies = 0
        self.running_speculative = 0


class CentralizedSimulator:
    """Simulates a trace under one centralized policy.

    Parameters
    ----------
    cluster:
        Machines and slots.
    policy:
        Allocation policy (Fair / SRPT / Hopper).
    speculation:
        Factory returning a (possibly shared) speculation policy; called
        once per job so stateful policies stay per-job.
    trace:
        Jobs to replay (runtime state must be fresh).
    straggler_model:
        Slowdown generator.
    config:
        Knobs; see :class:`CentralizedConfig`.
    datastore:
        Optional block placement for locality modelling.
    random_source:
        Seed hierarchy.
    """

    __slots__ = (
        "cluster",
        "policy",
        "speculation_factory",
        "trace",
        "straggler_model",
        "config",
        "datastore",
        "random_source",
        "sim",
        "metrics",
        "beta_estimator",
        "alpha_estimator",
        "ledger",
        "_rng",
        "_jobs",
        "_alloc",
        "_alloc_beta",
        "_alloc_history",
        "_alloc_dirty_jobs",
        "_spec_job_ids",
        "_spec_check_scheduled",
        "_jobs_completed",
        "_total_slots",
        "_spec_budget",
        "_running_spec_copies",
        "_running_original_copies",
        "_spec_eval_min_interval",
        "_blacklist_policy",
        "_autoscaler",
        "_elastic",
        "obs",
        "_tracer",
    )

    def __init__(
        self,
        cluster: Cluster,
        policy: CentralizedPolicy,
        speculation: Callable[[], SpeculationPolicy],
        trace: Trace,
        straggler_model: StragglerModel,
        config: Optional[CentralizedConfig] = None,
        datastore: Optional[DataStore] = None,
        random_source: Optional[RandomSource] = None,
        blacklist_policy: Optional[BlacklistPolicy] = None,
        autoscaler: Optional[AutoscalerPolicy] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.speculation_factory = speculation
        self.trace = trace
        self.straggler_model = straggler_model
        self.config = config or CentralizedConfig()
        self.datastore = datastore
        self.random_source = random_source or RandomSource(seed=0)
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None

        self.sim = Simulator(obs=obs)
        self.metrics = MetricsCollector(scheduler_name=policy.name)
        self.beta_estimator = OnlineBetaEstimator(
            default_beta=self.config.default_beta
        )
        self.alpha_estimator = AlphaEstimator(
            network_rate=self.config.network_rate
        )
        self.ledger = CopyLedger(
            self.sim, self.metrics, self.beta_estimator, tracer=self._tracer
        )

        self._rng = self.random_source.child("centralized").rng
        self._jobs: Dict[int, _JobRuntime] = {}
        # Incremental allocation engine: cached per-job states, the
        # delta-maintained dispatch order, and the targets memo.
        self._alloc = IncrementalAllocator(policy)
        self._alloc_beta: Optional[float] = None  # beta states were built at
        self._alloc_history = -1  # alpha history version ditto
        self._alloc_dirty_jobs: set = set()  # job ids needing recompute
        self._spec_job_ids: set = set()  # jobs with live speculative copies
        self._spec_check_scheduled = False
        self._jobs_completed = 0

        self._total_slots = cluster.total_slots
        self._spec_budget = 0
        if self.config.speculation_mode is SpeculationMode.BUDGETED:
            self._spec_budget = int(
                self.config.budget_fraction * self._total_slots
            )
        self._running_spec_copies = 0
        self._running_original_copies = 0
        self._spec_eval_min_interval = self.config.spec_eval_min_interval
        self._blacklist_policy = blacklist_policy
        self._autoscaler = autoscaler
        self._elastic: Optional[ElasticController] = None
        if autoscaler is not None:
            self._elastic = ElasticController(
                engine=self.sim,
                policy=autoscaler,
                add_machines=self._autoscale_add,
                remove_machines=self._autoscale_remove,
                busy_slots=lambda: self.cluster.busy_slots,
                total_slots=lambda: self.cluster.total_slots,
                keep_sampling=lambda: bool(self._jobs),
                obs=obs,
            )

    # ------------------------------------------------------------------ run --

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Replay the whole trace; returns the metrics."""
        self.cluster.reset()
        self.sim.schedule_many(
            (
                (job.arrival_time, self._on_job_arrival, (job,))
                for job in self.trace
            ),
            absolute=True,
        )
        if self._elastic is not None:
            self._elastic.prime()
        self.sim.run(until=until)
        self._finalize_diagnostics()
        return self.metrics.result

    def _finalize_diagnostics(self) -> None:
        result = self.metrics.result
        if self._blacklist_policy is not None:
            result.machine_strikes = self._blacklist_policy.strike_totals()
        if self.obs is not None:
            result.obs = self.obs.report()

    # -------------------------------------------------------------- helpers --

    def _beta(self) -> float:
        if self.config.learn_beta:
            return self.beta_estimator.beta
        return self.config.default_beta

    def _job_alpha(self, job: Job) -> float:
        if not self.config.use_alpha or job.num_phases == 1:
            return 1.0
        return self.alpha_estimator.predict_alpha(job)

    def _allocation_states(self) -> List[JobAllocationState]:
        """From-scratch allocation-state builder.

        The hot path goes through :meth:`_refresh_allocation_states`
        (incremental); this remains the reference implementation the
        differential and property tests compare the cache against, so
        any divergence between the two is a test failure rather than a
        silently drifted replay."""
        beta = self._beta()
        states: List[JobAllocationState] = []
        for jr in self._jobs.values():
            remaining = jr.job.remaining_tasks()
            if remaining <= 0:
                continue
            alpha = self._job_alpha(jr.job)
            vsize = virtual_size(remaining, beta, alpha)
            priority = vsize
            if self.policy.uses_virtual_sizes and jr.job.num_phases > 1:
                downstream_tasks = jr.job.downstream_virtual_tasks(
                    self.config.network_rate
                )
                if downstream_tasks > 0:
                    priority = max(vsize, virtual_size(downstream_tasks, beta))
            max_useful = max(
                int(math.ceil(vsize)),
                self.config.max_copies_cap * remaining,
            )
            states.append(
                JobAllocationState(
                    job_id=jr.job.job_id,
                    virtual_size=vsize,
                    remaining_tasks=remaining,
                    weight=jr.job.weight,
                    priority_size=priority,
                    max_useful_slots=max_useful,
                )
            )
        return states

    def _refresh_job_state(
        self, jr: _JobRuntime, beta: float, realpha: bool
    ) -> None:
        """Bring one job's cached allocation state up to date.

        A dirty job re-reads its inputs (remaining tasks, alpha,
        downstream virtual tasks) from the job structures; a clean job
        reuses the cached inputs and only re-derives the beta-dependent
        floats (``realpha`` additionally re-predicts alpha when the
        estimator's history moved — another job's completion can change
        a recurring job's prediction). Every float is computed by the
        exact expression the from-scratch builder uses, on the exact
        same inputs, so the resulting states are identical objects
        field-for-field."""
        job = jr.job
        if jr.alloc_dirty:
            jr.alloc_dirty = False
            remaining = job.remaining_tasks()
            jr.alloc_remaining = remaining
            if remaining <= 0:
                self._alloc.remove(job.job_id)
                return
            jr.alloc_alpha = self._job_alpha(job)
            jr.alloc_downstream = 0.0
            if self.policy.uses_virtual_sizes and job.num_phases > 1:
                jr.alloc_downstream = job.downstream_virtual_tasks(
                    self.config.network_rate
                )
        else:
            remaining = jr.alloc_remaining
            if remaining <= 0:
                return
            if realpha:
                jr.alloc_alpha = self._job_alpha(job)
        vsize = virtual_size(remaining, beta, jr.alloc_alpha)
        priority = vsize
        if jr.alloc_downstream > 0:
            priority = max(vsize, virtual_size(jr.alloc_downstream, beta))
        max_useful = max(
            int(math.ceil(vsize)),
            self.config.max_copies_cap * remaining,
        )
        self._alloc.upsert(
            JobAllocationState(
                job_id=job.job_id,
                virtual_size=vsize,
                remaining_tasks=remaining,
                weight=job.weight,
                priority_size=priority,
                max_useful_slots=max_useful,
            )
        )

    def _refresh_allocation_states(self) -> List[JobAllocationState]:
        """Incremental equivalent of :meth:`_allocation_states`.

        Recomputes only jobs dirtied since the last solve, unless the
        beta value or the alpha history moved (an *epoch* bump) — then
        every cached state's derived floats are suspect and the sweep
        re-derives them lazily from the cached inputs, which is still
        far cheaper than re-reading the job structures."""
        beta = self._beta()
        history = self.alpha_estimator.history_version
        if beta != self._alloc_beta or history != self._alloc_history:
            realpha = history != self._alloc_history
            for jr in self._jobs.values():
                self._refresh_job_state(jr, beta, realpha)
            self._alloc_beta = beta
            self._alloc_history = history
            self._alloc_dirty_jobs.clear()
        elif self._alloc_dirty_jobs:
            jobs = self._jobs
            for job_id in self._alloc_dirty_jobs:
                jr = jobs.get(job_id)
                if jr is not None:
                    self._refresh_job_state(jr, beta, realpha=False)
            self._alloc_dirty_jobs.clear()
        return self._alloc.states()

    def _pick_machine(self, task: Task) -> Optional[int]:
        """Free machine for a copy: local replica holder if possible."""
        machines = self.cluster.machines
        for machine_id in task.preferred_machines:
            if machines[machine_id].has_free_slot:
                return machine_id
        index = self.cluster.index
        free_count = index.free_machine_count
        if not free_count:
            return None
        # Same entropy draw and same ascending-id selection order as
        # rng.choice(machines_with_free_slots()) on the scan-based path.
        return index.nth_free_machine(self._rng.randrange(free_count))

    # ------------------------------------------------------------- events ----

    def _admit_job(self, job: Job) -> _JobRuntime:
        """Shared arrival bookkeeping for every centralized-family plane:
        trace span, datastore placement, runtime creation, and reserving
        the job's slot in the incremental allocator (its position in the
        insertion order is fixed at arrival, however many events pass
        before the next solve)."""
        if self._tracer is not None:
            self._tracer.begin(
                "job",
                "job",
                ("job", job.job_id),
                self.sim.now,
                job=job.job_id,
                tasks=job.num_tasks,
            )
        if self.datastore is not None:
            self.datastore.place_job_inputs(job)
        jr = _JobRuntime(job, self.speculation_factory())
        jr.activate_runnable_phases()
        self._jobs[job.job_id] = jr
        self._alloc.reserve(job.job_id)
        self._alloc_dirty_jobs.add(job.job_id)
        if self._elastic is not None:
            # Demand-armed like the speculation check: the utilization
            # sampler re-arms only while jobs are active.
            self._elastic.ensure_sampling()
        return jr

    def _on_job_arrival(self, job: Job) -> None:
        self._admit_job(job)
        self._reschedule()
        self._ensure_spec_check()

    def _ensure_spec_check(self) -> None:
        if self._spec_check_scheduled or not self._jobs:
            return
        self._spec_check_scheduled = True
        self.sim.schedule(
            self.config.speculation_check_interval, self._on_spec_check
        )

    def _on_spec_check(self) -> None:
        self._spec_check_scheduled = False
        if not self._jobs:
            return
        self._reschedule(evaluate_speculation=True)
        self._ensure_spec_check()

    def _launch_copy(self, jr: _JobRuntime, task: Task, speculative: bool) -> bool:
        machine_id = self._pick_machine(task)
        if machine_id is None:
            return False
        attempt = jr.view.attempts(task)
        slowdown = self.straggler_model.slowdown(
            self._rng, task, machine_id, attempt
        )
        local = True
        penalty = 1.0
        if self.datastore is not None:
            local = self.datastore.is_local(task, machine_id)
            penalty = self.datastore.duration_multiplier(task, machine_id)
        duration = task.size * slowdown * penalty
        self.ledger.launch(
            jr.view,
            task,
            machine_id,
            duration,
            speculative,
            local,
            self._on_copy_finish,
            jr,
        )
        jr.spec_dirty = True
        jr.running_copies += 1
        if speculative:
            jr.running_speculative += 1
            self._running_spec_copies += 1
            self._spec_job_ids.add(jr.job.job_id)
        else:
            self._running_original_copies += 1
        task.state = TaskState.RUNNING
        self.cluster.acquire_slot(machine_id)
        return True

    def _kill_copy(self, copy: TaskCopy, jr: _JobRuntime) -> None:
        self.ledger.kill(copy, jr.view)
        self.cluster.release_slot(copy.machine_id)
        jr.spec_dirty = True
        jr.running_copies -= 1
        if copy.speculative:
            jr.running_speculative -= 1
            self._running_spec_copies -= 1
            if jr.running_speculative <= 0:
                self._spec_job_ids.discard(jr.job.job_id)
        else:
            self._running_original_copies -= 1

    def _on_copy_finish(self, copy: TaskCopy, jr: _JobRuntime) -> None:
        self.cluster.release_slot(copy.machine_id)
        won = self.ledger.finish(copy, jr.view)
        jr.spec_dirty = True
        jr.running_copies -= 1
        if copy.speculative:
            jr.running_speculative -= 1
            self._running_spec_copies -= 1
            if jr.running_speculative <= 0:
                self._spec_job_ids.discard(jr.job.job_id)
        else:
            self._running_original_copies -= 1

        if won:
            # Kill the losers of the race.
            for other in self.ledger.finish_task(jr.view, copy):
                self._kill_copy(other, jr)
            jr.discard_pending_id(copy.task.task_id)
            jr.activate_runnable_phases()
            # A won race is the one event that moves this job's
            # allocation inputs (remaining tasks, phase front, alpha).
            jr.alloc_dirty = True
            if jr.job.is_complete:
                self._complete_job(jr)
            else:
                self._alloc_dirty_jobs.add(jr.job.job_id)
        if self._blacklist_policy is not None:
            self._observe_blacklist(copy, jr)
        self._request_dispatch()

    def _request_dispatch(self) -> None:
        """Dispatch point after a completion event. Per-arrival planes
        reschedule immediately; the batch plane overrides this to defer
        work to its next periodic round."""
        self._reschedule()

    def _complete_job(self, jr: _JobRuntime) -> None:
        self.ledger.record_job_completion(jr.job, self.alpha_estimator)
        job_id = jr.job.job_id
        del self._jobs[job_id]
        self._alloc.remove(job_id)
        self._alloc_dirty_jobs.discard(job_id)
        self._spec_job_ids.discard(job_id)
        self._jobs_completed += 1

    # ---------------------------------------------------------- blacklist ----

    def _observe_blacklist(self, copy: TaskCopy, jr: _JobRuntime) -> None:
        """Feed one completion to the eviction policy and act on it."""
        obs = self.obs
        if obs is None:
            reinstated, evict = evaluate_completion(
                self._blacklist_policy, self.sim.now, copy, jr.view
            )
        else:
            with obs.timers.phase("policy.evaluate_completion"):
                reinstated, evict = evaluate_completion(
                    self._blacklist_policy, self.sim.now, copy, jr.view
                )
        for machine_id in reinstated:
            self._reinstate_machine(machine_id)
        if evict is not None:
            self._evict_machine(evict)

    def _kill_machine_copies(self, machine_id: int) -> int:
        """Kill every copy running on ``machine_id`` and requeue
        originals whose last copy died. Shared by blacklist eviction and
        autoscaler removal; returns the victim count."""
        victims: List[tuple] = []
        for jr in self._jobs.values():
            for copies in jr.view.copies_by_task.values():
                for c in copies:
                    if c.machine_id == machine_id:
                        victims.append((c, jr))
        orphaned: List[tuple] = []
        for c, jr in victims:
            self._kill_copy(c, jr)
            if not c.task.is_finished:
                orphaned.append((c.task, jr))
        for task, jr in orphaned:
            # Only requeue when no sibling copy survived the kill —
            # a live copy elsewhere still carries the task.
            if jr.view.num_live_copies(task) == 0 and jr.requeue(task):
                task.state = TaskState.PENDING
        return len(victims)

    def _evict_machine(self, machine_id: int) -> None:
        """Blacklist ``machine_id`` mid-run: kill its running copies,
        requeue originals whose last copy died, and rebuild the index."""
        cluster = self.cluster
        cluster.blacklist.add(machine_id)
        num_victims = self._kill_machine_copies(machine_id)
        self._apply_blacklist()  # machine flags + totals + index rebuild
        self._resize_slot_pool()
        self.metrics.record_eviction()
        obs = self.obs
        if obs is not None:
            obs.counters.inc("blacklist.evictions")
            if obs.tracer is not None:
                obs.tracer.instant(
                    "blacklist", "evict", self.sim.now, machine=machine_id,
                    victims=num_victims,
                )

    def _reinstate_machine(self, machine_id: int) -> None:
        """Probation served: return the machine's slots to the pool."""
        cluster = self.cluster
        cluster.blacklist.remove(machine_id)
        self._apply_blacklist()
        self._resize_slot_pool()
        self.metrics.record_reinstatement()
        obs = self.obs
        if obs is not None:
            obs.counters.inc("blacklist.reinstatements")
            if obs.tracer is not None:
                obs.tracer.instant(
                    "blacklist", "reinstate", self.sim.now, machine=machine_id
                )

    def _apply_blacklist(self) -> None:
        """Apply blacklist changes to the cluster (index rebuild), timed
        as ``index.rebuild`` when observability is on."""
        obs = self.obs
        if obs is None:
            self.cluster.apply_blacklist()
        else:
            with obs.timers.phase("index.rebuild"):
                self.cluster.apply_blacklist()

    # ------------------------------------------------------------- elastic ----

    def _autoscale_add(self, count: int) -> int:
        """ADD_MACHINE: append ``count`` machines (O(log machines) each
        via the Fenwick append — no index rebuild) and dispatch onto the
        new capacity at this plane's dispatch point."""
        cluster = self.cluster
        num_slots = cluster.machines[0].num_slots
        for _ in range(count):
            cluster.add_machine(num_slots=num_slots)
        self._resize_slot_pool()
        self._request_dispatch()
        return count

    def _autoscale_remove(self, count: int) -> int:
        """REMOVE_MACHINE: retire up to ``count`` machines (highest live
        ids first), reusing the eviction kill→requeue path for their
        running copies. Clamped so at least ``min_machines`` stay live."""
        cluster = self.cluster
        floor = max(1, self._autoscaler.min_machines)
        count = min(count, cluster.live_machine_count() - floor)
        if count <= 0:
            return 0
        removed = 0
        for machine in reversed(cluster.machines):
            if removed >= count:
                break
            if machine.retired or machine.blacklisted:
                continue
            # Retire first (the machine leaves the index and the totals
            # in O(log machines)), then kill its copies: each kill's
            # release_slot refreshes a bit that stays 0 for a retired
            # machine, so no new work lands on it mid-teardown.
            cluster.remove_machine(machine.machine_id)
            self._kill_machine_copies(machine.machine_id)
            removed += 1
        self._resize_slot_pool()
        self._request_dispatch()
        return removed

    def _resize_slot_pool(self) -> None:
        """Eviction/reinstatement changed the usable slot count; refresh
        the cached total AND the budgeted-speculation reservation, which
        is a fraction of it (a stale budget could otherwise exceed the
        shrunken cluster and starve original dispatch)."""
        self._total_slots = self.cluster.total_slots
        if self.config.speculation_mode is SpeculationMode.BUDGETED:
            self._spec_budget = int(
                self.config.budget_fraction * self._total_slots
            )

    # ----------------------------------------------------------- dispatch ----

    def _reschedule(self, evaluate_speculation: bool = False) -> None:
        """Recompute targets and dispatch.

        Original copies are dispatched on every event; the speculation
        sweep (which scans every running copy's progress) runs only from
        the periodic straggler scan, mirroring how LATE/Mantri run as a
        periodic monitor thread in real frameworks.
        """
        if not self._jobs:
            return
        obs = self.obs
        if obs is None:
            states = self._refresh_allocation_states()
        else:
            with obs.timers.phase("alloc.refresh"):
                states = self._refresh_allocation_states()
        if not states:
            return

        mode = self.config.speculation_mode
        if mode is SpeculationMode.BUDGETED:
            original_slots = self._total_slots - self._spec_budget
        else:
            original_slots = self._total_slots

        if obs is None:
            targets = self._alloc.allocate(original_slots)
        else:
            with obs.timers.phase("policy.allocate"):
                targets = self._alloc.allocate(original_slots)
        # Same insertion-order float sum the solve's regime test uses,
        # memoized per state version inside the allocator.
        self.metrics.record_guideline_decision(
            constrained=self._alloc.virtual_size_sum() > self._total_slots
        )
        order = self._alloc.ordered()

        # Coordinated mode may reclaim slots from over-target speculative
        # copies (killing a redundant copy loses no unique work) — this is
        # the "dynamically reallocate the slots" step of Fig. 2.
        if mode is SpeculationMode.INTEGRATED and self.config.preempt_speculative:
            self._preempt_excess_speculation(targets)

        if mode is SpeculationMode.INTEGRATED:
            # Originals within targets, then speculation within targets
            # (small jobs' speculation outranks big jobs' extra
            # originals — the coordination the paper argues for), then
            # work-conserving overflow.
            self._dispatch_originals(order, targets)
            self._dispatch_speculation(order, targets, pool_limit=None)
            self._dispatch_originals(order, targets=None)
        elif mode is SpeculationMode.BEST_EFFORT:
            # All originals first; speculation gets only leftover slots.
            self._dispatch_originals(order, targets)
            self._dispatch_originals(order, targets=None)
            self._dispatch_speculation(order, targets=None, pool_limit=None)
        else:  # BUDGETED
            # Originals may never enter the reserved pool, even when the
            # pool idles — the §3 strawman's defining waste.
            self._dispatch_originals(
                order,
                targets=None,
                original_limit=self._total_slots - self._spec_budget,
            )
            self._dispatch_speculation(
                order, targets=None, pool_limit=self._spec_budget
            )

    def _preempt_excess_speculation(self, targets: Dict[int, int]) -> None:
        """Kill speculative copies of jobs running above their target.

        Victims are the youngest speculative copies (least work lost).
        Original copies are never preempted. Only jobs in the
        incrementally tracked live-speculation set are visited — most
        reschedules have zero live speculative copies, and the old
        full-job sweep paid O(active jobs) to discover that. Iteration
        is in ascending job id, which is exactly the arrival-order walk
        ``list(self._jobs.items())`` did (job ids are assigned in
        arrival order), so kill order — and therefore every downstream
        RNG draw — is unchanged."""
        spec_ids = self._spec_job_ids
        if not spec_ids:
            return
        now = self.sim.now
        jobs = self._jobs
        for job_id in sorted(spec_ids):
            jr = jobs.get(job_id)
            if jr is None or jr.running_speculative <= 0:
                continue
            excess = jr.running_copies - targets.get(job_id, 0)
            if excess <= 0:
                continue
            victims = jr.view.live_speculative_copies()
            victims.sort(key=lambda c: c.elapsed(now))
            for victim in victims[: min(excess, len(victims))]:
                self._kill_copy(victim, jr)

    def _dispatch_originals(
        self,
        order: List[JobAllocationState],
        targets: Optional[Dict[int, int]],
        original_limit: Optional[int] = None,
    ) -> None:
        """Launch first copies of pending tasks.

        With ``targets`` set, each job is bounded by its allocation; with
        ``targets=None`` the pass is work-conserving (any pending task may
        take a free slot). ``original_limit`` caps the total number of
        running original copies (budgeted-speculation pool fencing).
        """
        k = self.config.locality_k_percent if self.policy.uses_virtual_sizes else 0.0
        jobs = self._jobs
        cluster = self.cluster
        index = cluster.index
        progress = True
        while progress and cluster.free_slots > 0:
            if (
                original_limit is not None
                and self._running_original_copies >= original_limit
            ):
                return
            progress = False
            deficient = [
                s
                for s in order
                if s.job_id in jobs
                and jobs[s.job_id].pending
                and (
                    targets is None
                    or jobs[s.job_id].running_copies < targets.get(s.job_id, 0)
                )
            ]
            if not deficient:
                break
            machine_id = index.first_free_machine()
            if machine_id is None:
                break

            def has_local(state: JobAllocationState) -> bool:
                return jobs[state.job_id].has_pending_local_to(machine_id)

            chosen = pick_job_with_locality(deficient, k, has_local)
            if chosen is None:
                break
            jr = jobs[chosen.job_id]
            task = jr.pop_pending(prefer_machine=machine_id)
            if task is None:
                continue
            if self._launch_copy(jr, task, speculative=False):
                progress = True

    def _job_speculation_candidates(self, jr: _JobRuntime) -> list:
        return jr.speculation_candidates(
            self.sim.now, self._spec_eval_min_interval
        )

    def _dispatch_speculation(
        self,
        order: List[JobAllocationState],
        targets: Optional[Dict[int, int]],
        pool_limit: Optional[int],
    ) -> None:
        cluster = self.cluster
        jobs = self._jobs
        now = self.sim.now
        min_interval = self._spec_eval_min_interval
        for state in order:
            jr = jobs.get(state.job_id)
            if jr is None:
                continue
            if cluster.free_slots <= 0:
                return
            if pool_limit is not None and self._running_spec_copies >= pool_limit:
                return
            # Inlined cache fast path of JobRuntime.speculation_candidates
            # — this sweep visits every active job per reschedule and the
            # throttle hits far more often than it misses.
            if jr.spec_dirty or now - jr.spec_cache_time >= min_interval:
                candidates = jr.speculation_candidates(now, min_interval)
            else:
                candidates = jr.spec_candidates
            for request in candidates:
                if cluster.free_slots <= 0:
                    return
                if (
                    pool_limit is not None
                    and self._running_spec_copies >= pool_limit
                ):
                    return
                if targets is not None and jr.running_copies >= targets.get(
                    state.job_id, 0
                ):
                    break
                if request.task.is_finished:
                    continue
                max_copies = jr.spec_policy.max_copies_per_task()
                if jr.view.num_live_copies(request.task) >= max_copies:
                    continue  # stale cached candidate
                self._launch_copy(jr, request.task, speculative=True)
