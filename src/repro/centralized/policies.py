"""Centralized allocation policies: Fair, SRPT, and Hopper.

A policy maps job states to integer slot targets and defines the order in
which slot deficits are filled. The heavy lifting lives in
:mod:`repro.core.allocation`; policies are thin, named adapters around it.

Two hooks exist for the incremental allocation engine
(:class:`repro.core.incremental.IncrementalAllocator`):

* :meth:`CentralizedPolicy.sort_key` — the dispatch-order key. It MUST
  end in the unique ``job_id`` (the engine's sorted container needs a
  total order, and maps entries back to states by that trailing id).
* :meth:`CentralizedPolicy.allocate_ordered` — the solve given
  pre-maintained orders. The default falls back to the full
  :meth:`allocate`; policies whose solve begins with a sort override it
  so the maintained order is reused. An override must produce the same
  ordering its :meth:`sort_key` defines — a subclass changing one must
  change both.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    hopper_allocation_ordered,
    srpt_allocation,
    srpt_allocation_ordered,
)
from repro.core.fairness import fairness_floors as core_fairness_floors


class CentralizedPolicy(ABC):
    """Interface for centralized slot-allocation policies."""

    name: str = "base"

    #: Hopper uses learned virtual sizes; baselines ignore them.
    uses_virtual_sizes: bool = False

    @abstractmethod
    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        """Target slots per job id, summing to at most ``total_slots``."""

    def sort_key(self, state: JobAllocationState) -> tuple:
        """Dispatch-order sort key; must end in the unique ``job_id``."""
        return (state.order_key, state.job_id)

    def dispatch_order(
        self, states: Sequence[JobAllocationState]
    ) -> List[JobAllocationState]:
        """Order in which deficits are filled when slots free up."""
        return sorted(states, key=self.sort_key)

    def fairness_floors(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Optional[Dict[int, int]]:
        """Per-job minimum slot guarantees, or None for floor-free
        policies. Floors depend only on membership, weights, and the
        slot pool, so the incremental engine caches them across the
        per-completion state churn."""
        return None

    def allocate_ordered(
        self,
        active: Sequence[JobAllocationState],
        ascending: Sequence[JobAllocationState],
        total_slots: int,
        total_virtual: Optional[float] = None,
        floors: Optional[Dict[int, int]] = None,
    ) -> Tuple[Dict[int, int], Optional[str]]:
        """Solve with pre-maintained orders: ``active`` in insertion
        order (pre-filtered to ``remaining_tasks > 0``), ``ascending``
        sorted by :meth:`sort_key`. ``total_virtual`` and ``floors``
        are optional precomputed values (the insertion-order virtual
        size sum and this policy's :meth:`fairness_floors`) the caller
        may pass to skip recomputing them. Returns ``(targets,
        regime)`` where ``regime`` is non-None only for
        regime-switching policies.

        The base falls back to the from-scratch solve — correct for any
        policy, incremental for none."""
        return self.allocate(active, total_slots), None


class FairPolicy(CentralizedPolicy):
    """Weighted max-min fair sharing — the deployed default (§2.1)."""

    name = "fair"

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return fair_allocation(states, total_slots)

    def sort_key(self, state: JobAllocationState) -> tuple:
        # Serve jobs round-robin-ish: fewest remaining first keeps parity.
        return (state.remaining_tasks, state.job_id)

    def allocate_ordered(
        self,
        active: Sequence[JobAllocationState],
        ascending: Sequence[JobAllocationState],
        total_slots: int,
        total_virtual: Optional[float] = None,
        floors: Optional[Dict[int, int]] = None,
    ) -> Tuple[Dict[int, int], Optional[str]]:
        # Water-filling iterates the insertion-ordered active list
        # directly (no internal sort to hoist); the incremental win for
        # fair is the cached states + memoized targets, not the solve.
        return fair_allocation(active, total_slots), None


class SRPTPolicy(CentralizedPolicy):
    """Shortest Remaining Processing Time — the performance baseline the
    paper compares centralized Hopper against (§7.4)."""

    name = "srpt"

    def __init__(self, best_effort_speculation: bool = True) -> None:
        self.best_effort_speculation = best_effort_speculation

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return srpt_allocation(
            states,
            total_slots,
            best_effort_speculation=self.best_effort_speculation,
        )

    def sort_key(self, state: JobAllocationState) -> tuple:
        return (state.remaining_tasks, state.job_id)

    def allocate_ordered(
        self,
        active: Sequence[JobAllocationState],
        ascending: Sequence[JobAllocationState],
        total_slots: int,
        total_virtual: Optional[float] = None,
        floors: Optional[Dict[int, int]] = None,
    ) -> Tuple[Dict[int, int], Optional[str]]:
        # sort_key == (remaining_tasks, job_id) == the solve's own
        # ascending order, so the maintained dispatch order doubles as
        # the solve order.
        return (
            srpt_allocation_ordered(
                active,
                ascending,
                total_slots,
                best_effort_speculation=self.best_effort_speculation,
            ),
            None,
        )


class HopperPolicy(CentralizedPolicy):
    """Speculation-aware allocation (Pseudocode 1) with ε-fairness.

    ``force_regime`` is an ablation hook: "constrained" always applies
    Guideline 2, "rich" always Guideline 3 (see DESIGN.md ablations).
    """

    name = "hopper"
    uses_virtual_sizes = True

    def __init__(
        self, epsilon: float = 0.1, force_regime: str = None
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.force_regime = force_regime
        if force_regime is not None:
            self.name = f"hopper-{force_regime}"

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return hopper_allocation(
            states,
            total_slots,
            epsilon=self.epsilon,
            force_regime=self.force_regime,
        )

    def fairness_floors(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Optional[Dict[int, int]]:
        return core_fairness_floors(states, total_slots, self.epsilon)

    def allocate_ordered(
        self,
        active: Sequence[JobAllocationState],
        ascending: Sequence[JobAllocationState],
        total_slots: int,
        total_virtual: Optional[float] = None,
        floors: Optional[Dict[int, int]] = None,
    ) -> Tuple[Dict[int, int], Optional[str]]:
        # sort_key == (order_key, job_id) == the ascending virtual-size
        # order Guideline 2/3 fill in.
        return hopper_allocation_ordered(
            active,
            ascending,
            total_slots,
            epsilon=self.epsilon,
            force_regime=self.force_regime,
            total_virtual=total_virtual,
            floors=floors,
        )
