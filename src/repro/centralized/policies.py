"""Centralized allocation policies: Fair, SRPT, and Hopper.

A policy maps job states to integer slot targets and defines the order in
which slot deficits are filled. The heavy lifting lives in
:mod:`repro.core.allocation`; policies are thin, named adapters around it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from repro.core.allocation import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    srpt_allocation,
)


class CentralizedPolicy(ABC):
    """Interface for centralized slot-allocation policies."""

    name: str = "base"

    #: Hopper uses learned virtual sizes; baselines ignore them.
    uses_virtual_sizes: bool = False

    @abstractmethod
    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        """Target slots per job id, summing to at most ``total_slots``."""

    def dispatch_order(
        self, states: Sequence[JobAllocationState]
    ) -> List[JobAllocationState]:
        """Order in which deficits are filled when slots free up."""
        return sorted(states, key=lambda s: (s.order_key, s.job_id))


class FairPolicy(CentralizedPolicy):
    """Weighted max-min fair sharing — the deployed default (§2.1)."""

    name = "fair"

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return fair_allocation(states, total_slots)

    def dispatch_order(
        self, states: Sequence[JobAllocationState]
    ) -> List[JobAllocationState]:
        # Serve jobs round-robin-ish: fewest remaining first keeps parity.
        return sorted(states, key=lambda s: (s.remaining_tasks, s.job_id))


class SRPTPolicy(CentralizedPolicy):
    """Shortest Remaining Processing Time — the performance baseline the
    paper compares centralized Hopper against (§7.4)."""

    name = "srpt"

    def __init__(self, best_effort_speculation: bool = True) -> None:
        self.best_effort_speculation = best_effort_speculation

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return srpt_allocation(
            states,
            total_slots,
            best_effort_speculation=self.best_effort_speculation,
        )

    def dispatch_order(
        self, states: Sequence[JobAllocationState]
    ) -> List[JobAllocationState]:
        return sorted(states, key=lambda s: (s.remaining_tasks, s.job_id))


class HopperPolicy(CentralizedPolicy):
    """Speculation-aware allocation (Pseudocode 1) with ε-fairness.

    ``force_regime`` is an ablation hook: "constrained" always applies
    Guideline 2, "rich" always Guideline 3 (see DESIGN.md ablations).
    """

    name = "hopper"
    uses_virtual_sizes = True

    def __init__(
        self, epsilon: float = 0.1, force_regime: str = None
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.force_regime = force_regime
        if force_regime is not None:
            self.name = f"hopper-{force_regime}"

    def allocate(
        self, states: Sequence[JobAllocationState], total_slots: int
    ) -> Dict[int, int]:
        return hopper_allocation(
            states,
            total_slots,
            epsilon=self.epsilon,
            force_regime=self.force_regime,
        )
