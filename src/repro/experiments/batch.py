"""The ``batch_rounds`` study: periodic rounds vs per-arrival scheduling.

The paper argues against batch-mode/periodic scheduling only abstractly;
this study makes the comparison concrete. The grid crosses:

* **round interval** — how long jobs wait in the pending buffer between
  scheduling rounds (``0`` labels the per-arrival centralized baseline,
  which is the interval's limit — pinned by a property test in
  ``tests/test_batch.py``);
* **plane** — the ``batch`` plane at each interval vs the ``centralized``
  per-arrival plane, same policy (Hopper), same trace, same run seed;
* **speculation** — LATE vs none, because a long round interval also
  delays speculative relaunches, compounding the straggler cost.

The cell metric is mean JCT: buffering delay is a per-job additive cost,
so the mean (not a tail) is the honest headline. Quick mode trims the
interval points and the workload; its golden digest is pinned in
``tests/test_golden_results.py`` from day one.

Run it like any registered study::

    python -m repro study batch_rounds --quick
    python -m repro study batch_rounds --seeds 1,2,3
"""

from __future__ import annotations

from typing import List, Sequence

from repro.metrics.collector import SimulationResult
from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study


def mean_jct(result: SimulationResult) -> float:
    """Mean job completion time — buffering delay is additive per job,
    so the mean is the round-interval sweep's honest headline."""
    return result.mean_job_duration


def _batch_rounds_cells(
    round_intervals: Sequence[float] = (0.25, 1.0, 4.0),
    speculation: Sequence[str] = ("late", "none"),
    num_jobs: int = 60,
    total_slots: int = 200,
    utilization: float = 0.7,
) -> List[Cell]:
    cells: List[Cell] = []
    for spec_policy in speculation:
        def make_baseline(
            seed: int, spec_policy: str = spec_policy
        ) -> RunSpec:
            return RunSpec(
                "centralized",
                "hopper",
                WorkloadParams(
                    profile="spark-facebook",
                    num_jobs=num_jobs,
                    utilization=utilization,
                    total_slots=total_slots,
                    seed=seed,
                ),
                speculation=spec_policy,
            )

        cells.append(
            cell(
                make_baseline,
                kind="centralized",
                round_interval=0.0,
                speculation=spec_policy,
            )
        )
        for interval in round_intervals:
            def make_batch(
                seed: int,
                interval: float = interval,
                spec_policy: str = spec_policy,
            ) -> RunSpec:
                return RunSpec(
                    "batch",
                    "hopper",
                    WorkloadParams(
                        profile="spark-facebook",
                        num_jobs=num_jobs,
                        utilization=utilization,
                        total_slots=total_slots,
                        seed=seed,
                    ),
                    speculation=spec_policy,
                    knobs={"round_interval": interval},
                )

            cells.append(
                cell(
                    make_batch,
                    kind="batch",
                    round_interval=interval,
                    speculation=spec_policy,
                )
            )
    return cells


BATCH_ROUNDS_STUDY = register_study(
    Study(
        name="batch_rounds",
        description=(
            "periodic batch rounds vs per-arrival scheduling: round "
            "interval x plane x speculation; metric is mean JCT"
        ),
        build_cells=_batch_rounds_cells,
        metric=mean_jct,
        metric_name="mean JCT",
        quick=dict(
            round_intervals=(0.5, 2.0),
            num_jobs=25,
            total_slots=80,
        ),
    )
)
