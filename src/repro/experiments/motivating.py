"""The paper's motivating example (§3, Figures 1-2, Table 1).

Two jobs on a 7-slot cluster: A with 4 tasks, B with 5 tasks. A task's
straggling is detectable once it has run 2 time units; a speculative copy
is launched when the remaining time exceeds the time of a fresh copy
(trem > tnew). Durations (Table 1): every task runs 10 except the last
task of each job (A4, B4) which straggles at 30; fresh copies take 10.

The three strategies:

* **best-effort** (Fig. 1a): SRPT over original tasks; speculative copies
  wait for an idle slot. A's speculative copy of A4 cannot start until
  t=10 even though the straggler is known at t=2 — job A finishes at 20.
* **budgeted** (Fig. 1b): 3 of the 7 slots are reserved exclusively for
  speculation. A4's copy starts promptly at t=2 (A finishes at 12), but
  the reserved slots idle while job B queues for the 4 original slots —
  job B is pushed out.
* **hopper** (Fig. 2): job A is allocated its virtual size (5 slots:
  4 originals + speculation headroom), B gets the remaining 2 and inherits
  slots as A drains. A finishes at 12 *and* B at 22 — strictly better than
  both strawmen, with completion times matching the paper's Figure 2.

The schedules are derived dynamically by a tiny deterministic executor;
exact strawman completion times can differ by a task-length from the
figures (the paper leaves tie-breaking unspecified) but the ordering —
coordination dominates both strawmen on both jobs' averages — always
holds and is asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: (job, task index) -> (t_orig, t_new), from Table 1.
TASKS: Dict[Tuple[str, int], Tuple[float, float]] = {
    ("A", 0): (10.0, 10.0),
    ("A", 1): (10.0, 10.0),
    ("A", 2): (10.0, 10.0),
    ("A", 3): (30.0, 10.0),  # the straggler A4
    ("B", 0): (20.0, 10.0),
    ("B", 1): (20.0, 10.0),
    ("B", 2): (20.0, 10.0),
    ("B", 3): (40.0, 10.0),  # the straggler B4
    ("B", 4): (10.0, 10.0),
}

DETECT_AT = 2.0
NUM_SLOTS = 7
#: Virtual-size multiplier: job A's 4 tasks get 5 slots, as in Figure 2.
VIRTUAL_MULTIPLIER = 1.25


@dataclass
class MotivatingExampleResult:
    """Completion times for jobs A and B under one strategy."""

    strategy: str
    completion_a: float
    completion_b: float

    @property
    def average(self) -> float:
        return (self.completion_a + self.completion_b) / 2.0


@dataclass
class _Copy:
    job: str
    index: int
    start: float
    duration: float
    speculative: bool

    @property
    def end(self) -> float:
        return self.start + self.duration


class _ToyState:
    """Deterministic executor state for the 7-slot example."""

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self.running: List[_Copy] = []
        self.done: Dict[Tuple[str, int], float] = {}
        self.launched: Dict[Tuple[str, int], List[_Copy]] = {}
        self.job_done: Dict[str, float] = {}

    # -- queries -------------------------------------------------------------

    def remaining(self, job: str) -> int:
        return sum(
            1 for (j, _i) in TASKS if j == job and (j, _i) not in self.done
        )

    def unlaunched(self, job: str) -> List[Tuple[str, int]]:
        return [
            key
            for key in sorted(TASKS)
            if key[0] == job and key not in self.launched
        ]

    def speculation_candidates(self, job: str, now: float) -> List[Tuple[str, int]]:
        out = []
        for key, copies in sorted(self.launched.items()):
            if key[0] != job or key in self.done:
                continue
            if len(copies) >= 2:
                continue
            original = copies[0]
            if now - original.start < DETECT_AT:
                continue
            trem = original.end - now
            if trem > TASKS[key][1]:
                out.append(key)
        return out

    def slots_used(self, job: Optional[str] = None) -> int:
        if job is None:
            return len(self.running)
        return sum(1 for c in self.running if c.job == job)

    # -- actions -------------------------------------------------------------

    def launch(self, key: Tuple[str, int], now: float, speculative: bool) -> None:
        torig, tnew = TASKS[key]
        duration = tnew if speculative else torig
        copy = _Copy(key[0], key[1], now, duration, speculative)
        self.running.append(copy)
        self.launched.setdefault(key, []).append(copy)

    def advance_to(self, now: float) -> None:
        for copy in sorted(self.running, key=lambda c: c.end):
            if copy.end <= now + 1e-9:
                key = (copy.job, copy.index)
                if key not in self.done:
                    self.done[key] = copy.end
                # kill all copies of a finished task
                self.running = [
                    c
                    for c in self.running
                    if (c.job, c.index) != key or c is copy
                ]
                if c_all_done(self, copy.job) and copy.job not in self.job_done:
                    self.job_done[copy.job] = self.done_time(copy.job)
        self.running = [c for c in self.running if c.end > now + 1e-9]

    def done_time(self, job: str) -> float:
        return max(t for (j, _i), t in self.done.items() if j == job)


def c_all_done(state: _ToyState, job: str) -> bool:
    return all(
        (j, i) in state.done for (j, i) in TASKS if j == job
    )


def _dispatch(state: _ToyState, now: float) -> None:
    """Fill free slots according to the strategy's rules."""
    while True:
        free = NUM_SLOTS - len(state.running)
        if free <= 0:
            return
        action = _next_action(state, now)
        if action is None:
            return
        key, speculative = action
        state.launch(key, now, speculative)


def _next_action(
    state: _ToyState, now: float
) -> Optional[Tuple[Tuple[str, int], bool]]:
    jobs_by_srpt = sorted(
        (j for j in ("A", "B") if state.remaining(j) > 0),
        key=lambda j: (state.remaining(j), j),
    )
    strategy = state.strategy

    if strategy == "best_effort":
        # Originals first (SRPT order), then speculation into leftovers.
        for job in jobs_by_srpt:
            unlaunched = state.unlaunched(job)
            if unlaunched:
                return unlaunched[0], False
        for job in jobs_by_srpt:
            candidates = state.speculation_candidates(job, now)
            if candidates:
                return candidates[0], True
        return None

    if strategy == "budgeted":
        budget = 3
        originals_running = sum(1 for c in state.running if not c.speculative)
        spec_running = sum(1 for c in state.running if c.speculative)
        if originals_running < NUM_SLOTS - budget:
            for job in jobs_by_srpt:
                unlaunched = state.unlaunched(job)
                if unlaunched:
                    return unlaunched[0], False
        if spec_running < budget:
            for job in jobs_by_srpt:
                candidates = state.speculation_candidates(job, now)
                if candidates:
                    return candidates[0], True
        return None

    if strategy == "hopper":
        # Pseudocode 1 over the two jobs: virtual size = 1.25x remaining
        # tasks; each job may use its allocation for originals and
        # speculation alike (the coordination). Slots reserved for
        # speculation headroom may idle briefly (slot 5 from t=0 to t=2
        # in Figure 2).
        from repro.core.allocation import JobAllocationState, hopper_allocation

        states = [
            JobAllocationState(
                job_id=0 if j == "A" else 1,
                virtual_size=VIRTUAL_MULTIPLIER * state.remaining(j),
                remaining_tasks=state.remaining(j),
            )
            for j in jobs_by_srpt
        ]
        allocation = hopper_allocation(states, NUM_SLOTS, epsilon=1.0)
        for job in jobs_by_srpt:
            target = allocation.get(0 if job == "A" else 1, 0)
            if state.slots_used(job) >= target:
                continue
            unlaunched = state.unlaunched(job)
            if unlaunched:
                return unlaunched[0], False
            candidates = state.speculation_candidates(job, now)
            if candidates:
                return candidates[0], True
        return None

    raise ValueError(f"unknown strategy: {strategy!r}")


def _run(strategy: str) -> MotivatingExampleResult:
    state = _ToyState(strategy)
    now = 0.0
    _dispatch(state, now)
    guard = 0
    while len(state.done) < len(TASKS):
        guard += 1
        if guard > 1000:
            raise RuntimeError("motivating example failed to converge")
        events = [c.end for c in state.running]
        # Straggler-detection instants also matter (they unlock spec).
        events.extend(
            c.start + DETECT_AT
            for c in state.running
            if c.start + DETECT_AT > now
        )
        now = min(e for e in events if e > now + 1e-9)
        state.advance_to(now)
        _dispatch(state, now)
    return MotivatingExampleResult(
        strategy=strategy,
        completion_a=state.done_time("A"),
        completion_b=state.done_time("B"),
    )


def run_motivating_example() -> List[MotivatingExampleResult]:
    """Run all three strategies; returns results in §3 order."""
    return [_run(s) for s in ("best_effort", "budgeted", "hopper")]
