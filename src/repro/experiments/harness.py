"""Shared experiment plumbing: trace construction and simulator runners.

Every figure experiment reduces to: build a trace at a target utilization,
replay it under two or more systems, and compare matched job records. The
runners here own the (many) constructor arguments so figure code stays
declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro import registry
from repro.batch.simulator import BatchSimulator
from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.centralized.policies import CentralizedPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.cluster.elastic import AutoscalerPolicy
from repro.cluster.policy import BlacklistPolicy
from repro.decentralized.config import DecentralizedConfig
from repro.decentralized.simulator import DecentralizedSimulator
from repro.metrics.collector import SimulationResult
from repro.obs import Obs, obs_from_env
from repro.simulation.rng import RandomSource
from repro.speculation import make_speculation_policy
from repro.stragglers.model import ParetoRedrawStragglerModel, StragglerModel
from repro.workload.generator import (
    FACEBOOK_PROFILE,
    TraceGenerator,
    WorkloadProfile,
)
from repro.workload.traces import Trace


@dataclass
class WorkloadSpec:
    """Declarative description of an experiment workload."""

    profile: WorkloadProfile = field(default_factory=lambda: FACEBOOK_PROFILE)
    num_jobs: int = 150
    utilization: float = 0.6
    total_slots: int = 400
    seed: int = 42
    max_phase_tasks: Optional[int] = 300
    locality_machines: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        if self.total_slots <= 0:
            raise ValueError("total_slots must be positive")


def build_trace(spec: WorkloadSpec) -> Trace:
    """Generate a trace and rescale it to the spec's offered utilization."""
    source = RandomSource(seed=spec.seed)
    generator = TraceGenerator(
        spec.profile,
        random_source=source,
        num_machines=spec.locality_machines,
        max_phase_tasks=spec.max_phase_tasks,
    )
    jobs = generator.generate(num_jobs=spec.num_jobs, interarrival_mean=1.0)
    trace = Trace(jobs=jobs)
    return trace.rescaled_to_utilization(spec.total_slots, spec.utilization)


def default_straggler_model(profile: WorkloadProfile) -> StragglerModel:
    """The paper-faithful i.i.d. Pareto redraw model for this profile."""
    return ParetoRedrawStragglerModel(
        beta=profile.beta, scale=profile.task_scale
    )


def _centralized_system(
    name: str,
    epsilon: float,
    systems: Optional[registry.Registry] = None,
) -> tuple[CentralizedPolicy, SpeculationMode]:
    """Resolve a centralized-family scheduler: the policy plus its
    registered default speculation mode.

    ``systems`` selects the registry (``CENTRALIZED_SYSTEMS`` by
    default; the batch plane resolves through ``BATCH_SYSTEMS``).
    Plain-callable registrations (no
    :class:`~repro.registry.CentralizedSystemDefaults` wrapper) default
    to BEST_EFFORT, the mode every non-Hopper baseline runs under.
    """
    if systems is None:
        systems = registry.CENTRALIZED_SYSTEMS
    entry = systems.get(name.lower())
    mode_name = getattr(entry.factory, "speculation_mode", None)
    mode = (
        SpeculationMode(mode_name)
        if mode_name is not None
        else SpeculationMode.BEST_EFFORT
    )
    return entry.factory(epsilon=epsilon), mode


def _resolve_straggler_model(
    straggler_model: Union[StragglerModel, str, None],
    profile: WorkloadProfile,
    num_machines: Optional[int] = None,
) -> StragglerModel:
    """Accept a model instance, a registry name, or None (paper default).

    ``num_machines`` is the run's cluster size; machine-correlated models
    require it (the runners below pass it automatically).
    """
    if straggler_model is None:
        return default_straggler_model(profile)
    if isinstance(straggler_model, str):
        return registry.make_straggler_model(
            straggler_model, profile, num_machines=num_machines
        )
    return straggler_model


def _resolve_blacklist_policy(
    blacklist_policy: Union[BlacklistPolicy, str, None],
    num_machines: int,
    strike_threshold: Optional[int] = None,
    strike_window: Optional[float] = None,
    eviction_cap: Optional[float] = None,
) -> Optional[BlacklistPolicy]:
    """Accept a policy instance, a registry name, or None/"none" (off).

    The strike knobs only apply when the policy is built by name here;
    omitted knobs keep the policy's own defaults. ``num_machines`` is
    the run's cluster size (bounds the eviction cap).
    """
    if blacklist_policy is None:
        return None
    if isinstance(blacklist_policy, str):
        kwargs = {}
        if strike_threshold is not None:
            kwargs["strike_threshold"] = strike_threshold
        if strike_window is not None:
            kwargs["strike_window"] = strike_window
        if eviction_cap is not None:
            kwargs["eviction_cap"] = eviction_cap
        return registry.make_blacklist_policy(
            blacklist_policy, num_machines=num_machines, **kwargs
        )
    return blacklist_policy


def _resolve_autoscaler(
    autoscaler: Union[AutoscalerPolicy, str, None],
    resize_schedule: Optional[str] = None,
    scale_interval: Optional[float] = None,
    scale_up_threshold: Optional[float] = None,
    scale_down_threshold: Optional[float] = None,
    scale_step: Optional[int] = None,
    min_machines: Optional[int] = None,
) -> Optional[AutoscalerPolicy]:
    """Accept a policy instance, a registry name, or None/"none" (off).

    The scale knobs only apply when the policy is built by name here;
    omitted knobs keep the policy's own defaults. ``"none"`` resolves
    through the registry to None, so a run that spells the default
    explicitly builds the exact same simulator.
    """
    if autoscaler is None:
        return None
    if isinstance(autoscaler, str):
        kwargs = {}
        if resize_schedule is not None:
            kwargs["resize_schedule"] = resize_schedule
        if scale_interval is not None:
            kwargs["scale_interval"] = scale_interval
        if scale_up_threshold is not None:
            kwargs["scale_up_threshold"] = scale_up_threshold
        if scale_down_threshold is not None:
            kwargs["scale_down_threshold"] = scale_down_threshold
        if scale_step is not None:
            kwargs["scale_step"] = scale_step
        if min_machines is not None:
            kwargs["min_machines"] = min_machines
        return registry.make_autoscaler(autoscaler, **kwargs)
    return autoscaler


#: Sentinel: "the caller did not choose" — consult ``REPRO_OBS``. An
#: explicit ``obs=None`` forces observability off regardless of env.
_OBS_FROM_ENV = object()


def _resolve_obs(obs) -> Optional[Obs]:
    if obs is _OBS_FROM_ENV:
        return obs_from_env()
    return obs


def build_centralized_simulator(
    trace: Trace,
    policy: str,
    spec: WorkloadSpec,
    speculation: str = "late",
    epsilon: float = 0.1,
    locality_k_percent: float = 3.0,
    speculation_mode: Optional[SpeculationMode] = None,
    straggler_model: Union[StragglerModel, str, None] = None,
    with_locality: bool = False,
    slots_per_machine: int = 4,
    run_seed: int = 7,
    config: Optional[CentralizedConfig] = None,
    blacklist_policy: Union[BlacklistPolicy, str, None] = None,
    strike_threshold: Optional[int] = None,
    strike_window: Optional[float] = None,
    eviction_cap: Optional[float] = None,
    autoscaler: Union[AutoscalerPolicy, str, None] = None,
    resize_schedule: Optional[str] = None,
    scale_interval: Optional[float] = None,
    scale_up_threshold: Optional[float] = None,
    scale_down_threshold: Optional[float] = None,
    scale_step: Optional[int] = None,
    min_machines: Optional[int] = None,
    obs=_OBS_FROM_ENV,
) -> CentralizedSimulator:
    """Construct (without running) a centralized simulator for ``trace``.

    The trace is deep-copied first, so the same object can be replayed
    under several systems. ``policy`` and (string-valued)
    ``straggler_model`` / ``blacklist_policy`` / ``autoscaler`` resolve
    through :mod:`repro.registry`; each centralized system's registry
    entry carries its default speculation mode (BEST_EFFORT for the
    baselines, INTEGRATED for Hopper). With a blacklist policy the
    simulator evicts struck machines mid-run (see
    :mod:`repro.cluster.policy`); with an autoscaler it resizes the
    cluster mid-run (see :mod:`repro.cluster.elastic`). The serving
    driver builds through here too, then primes the engine before
    calling ``run()``.
    """
    return CentralizedSimulator(
        **_centralized_family_kwargs(
            trace,
            policy,
            spec,
            registry.CENTRALIZED_SYSTEMS,
            speculation=speculation,
            epsilon=epsilon,
            locality_k_percent=locality_k_percent,
            speculation_mode=speculation_mode,
            straggler_model=straggler_model,
            with_locality=with_locality,
            slots_per_machine=slots_per_machine,
            run_seed=run_seed,
            config=config,
            blacklist_policy=blacklist_policy,
            strike_threshold=strike_threshold,
            strike_window=strike_window,
            eviction_cap=eviction_cap,
            autoscaler=autoscaler,
            resize_schedule=resize_schedule,
            scale_interval=scale_interval,
            scale_up_threshold=scale_up_threshold,
            scale_down_threshold=scale_down_threshold,
            scale_step=scale_step,
            min_machines=min_machines,
            obs=obs,
        )
    )


def _centralized_family_kwargs(
    trace: Trace,
    policy: str,
    spec: WorkloadSpec,
    systems: registry.Registry,
    speculation: str,
    epsilon: float,
    locality_k_percent: float,
    speculation_mode: Optional[SpeculationMode],
    straggler_model: Union[StragglerModel, str, None],
    with_locality: bool,
    slots_per_machine: int,
    run_seed: int,
    config: Optional[CentralizedConfig],
    blacklist_policy: Union[BlacklistPolicy, str, None],
    strike_threshold: Optional[int],
    strike_window: Optional[float],
    eviction_cap: Optional[float],
    autoscaler: Union[AutoscalerPolicy, str, None],
    resize_schedule: Optional[str],
    scale_interval: Optional[float],
    scale_up_threshold: Optional[float],
    scale_down_threshold: Optional[float],
    scale_step: Optional[int],
    min_machines: Optional[int],
    obs,
) -> dict:
    """Constructor kwargs shared by the centralized and batch planes.

    Both planes build the exact same cluster, config, and seed
    hierarchy — the batch plane only adds *when* dispatch happens, so
    keeping construction common here guarantees the entropy streams
    stay aligned between them.
    """
    policy_obj, default_mode = _centralized_system(policy, epsilon, systems)
    if speculation_mode is None:
        speculation_mode = default_mode
    num_machines = max(1, spec.total_slots // slots_per_machine)
    cluster = Cluster(
        num_machines=num_machines, slots_per_machine=slots_per_machine
    )
    datastore = None
    if with_locality:
        datastore = DataStore(
            num_machines=num_machines,
            random_source=RandomSource(seed=spec.seed + 1),
        )
    if config is None:
        config = CentralizedConfig(
            epsilon=epsilon,
            locality_k_percent=locality_k_percent,
            speculation_mode=speculation_mode,
            default_beta=spec.profile.beta,
        )
    return dict(
        cluster=cluster,
        policy=policy_obj,
        speculation=lambda: make_speculation_policy(speculation),
        trace=trace.fresh_copy(),
        straggler_model=_resolve_straggler_model(
            straggler_model, spec.profile, num_machines=num_machines
        ),
        config=config,
        datastore=datastore,
        random_source=RandomSource(seed=run_seed),
        blacklist_policy=_resolve_blacklist_policy(
            blacklist_policy,
            num_machines,
            strike_threshold=strike_threshold,
            strike_window=strike_window,
            eviction_cap=eviction_cap,
        ),
        autoscaler=_resolve_autoscaler(
            autoscaler,
            resize_schedule=resize_schedule,
            scale_interval=scale_interval,
            scale_up_threshold=scale_up_threshold,
            scale_down_threshold=scale_down_threshold,
            scale_step=scale_step,
            min_machines=min_machines,
        ),
        obs=_resolve_obs(obs),
    )


def run_centralized(
    trace: Trace,
    policy: str,
    spec: WorkloadSpec,
    until: Optional[float] = None,
    **kwargs,
) -> SimulationResult:
    """Replay ``trace`` under one centralized policy (build, then run).

    See :func:`build_centralized_simulator` for every keyword.
    """
    simulator = build_centralized_simulator(trace, policy, spec, **kwargs)
    return simulator.run(until=until)


def build_batch_simulator(
    trace: Trace,
    policy: str,
    spec: WorkloadSpec,
    round_interval: float = 0.5,
    speculation: str = "late",
    epsilon: float = 0.1,
    locality_k_percent: float = 3.0,
    speculation_mode: Optional[SpeculationMode] = None,
    straggler_model: Union[StragglerModel, str, None] = None,
    with_locality: bool = False,
    slots_per_machine: int = 4,
    run_seed: int = 7,
    config: Optional[CentralizedConfig] = None,
    blacklist_policy: Union[BlacklistPolicy, str, None] = None,
    strike_threshold: Optional[int] = None,
    strike_window: Optional[float] = None,
    eviction_cap: Optional[float] = None,
    autoscaler: Union[AutoscalerPolicy, str, None] = None,
    resize_schedule: Optional[str] = None,
    scale_interval: Optional[float] = None,
    scale_up_threshold: Optional[float] = None,
    scale_down_threshold: Optional[float] = None,
    scale_step: Optional[int] = None,
    min_machines: Optional[int] = None,
    obs=_OBS_FROM_ENV,
) -> BatchSimulator:
    """Construct (without running) a batch-plane simulator for ``trace``.

    Same surface as :func:`build_centralized_simulator` plus
    ``round_interval``, the period of the recurring scheduling round.
    ``policy`` names an entry of :data:`repro.registry.BATCH_SYSTEMS`.
    Autoscaler resizes land between rounds: the controller requests a
    dispatch, and the batch plane coalesces that into its next round.
    """
    return BatchSimulator(
        round_interval=round_interval,
        **_centralized_family_kwargs(
            trace,
            policy,
            spec,
            registry.BATCH_SYSTEMS,
            speculation=speculation,
            epsilon=epsilon,
            locality_k_percent=locality_k_percent,
            speculation_mode=speculation_mode,
            straggler_model=straggler_model,
            with_locality=with_locality,
            slots_per_machine=slots_per_machine,
            run_seed=run_seed,
            config=config,
            blacklist_policy=blacklist_policy,
            strike_threshold=strike_threshold,
            strike_window=strike_window,
            eviction_cap=eviction_cap,
            autoscaler=autoscaler,
            resize_schedule=resize_schedule,
            scale_interval=scale_interval,
            scale_up_threshold=scale_up_threshold,
            scale_down_threshold=scale_down_threshold,
            scale_step=scale_step,
            min_machines=min_machines,
            obs=obs,
        ),
    )


def run_batch(
    trace: Trace,
    policy: str,
    spec: WorkloadSpec,
    until: Optional[float] = None,
    **kwargs,
) -> SimulationResult:
    """Replay ``trace`` under the batch plane (build, then run).

    See :func:`build_batch_simulator` for every keyword.
    """
    simulator = build_batch_simulator(trace, policy, spec, **kwargs)
    return simulator.run(until=until)


def build_decentralized_simulator(
    trace: Trace,
    system: str,
    spec: WorkloadSpec,
    speculation: str = "late",
    probe_ratio: Optional[float] = None,
    epsilon: Optional[float] = None,
    refusal_threshold: int = 2,
    num_schedulers: int = 10,
    power_of_d: Optional[int] = None,
    straggler_model: Union[StragglerModel, str, None] = None,
    run_seed: int = 7,
    config: Optional[DecentralizedConfig] = None,
    blacklist_policy: Union[BlacklistPolicy, str, None] = None,
    strike_threshold: Optional[int] = None,
    strike_window: Optional[float] = None,
    eviction_cap: Optional[float] = None,
    autoscaler: Union[AutoscalerPolicy, str, None] = None,
    resize_schedule: Optional[str] = None,
    scale_interval: Optional[float] = None,
    scale_up_threshold: Optional[float] = None,
    scale_down_threshold: Optional[float] = None,
    scale_step: Optional[int] = None,
    min_machines: Optional[int] = None,
    obs=_OBS_FROM_ENV,
) -> DecentralizedSimulator:
    """Construct (without running) a decentralized simulator for ``trace``.

    ``system`` names an entry of
    :data:`repro.registry.DECENTRALIZED_SYSTEMS`; each entry carries the
    paper's default probe ratio (2 for the baselines, 4 for Hopper) and
    fairness setting, overridable per experiment. With a blacklist
    policy the simulator evicts struck workers from the probe pool
    mid-run (see :mod:`repro.cluster.policy`); with an autoscaler it
    grows/shrinks the worker set mid-run (see
    :mod:`repro.cluster.elastic`). The serving driver builds through
    here too, then primes the engine before ``run()``.
    """
    defaults = registry.DECENTRALIZED_SYSTEMS.get(system).factory()
    if config is None:
        config = DecentralizedConfig(
            worker_policy=defaults.worker_policy,
            probe_ratio=(
                probe_ratio if probe_ratio is not None else defaults.probe_ratio
            ),
            epsilon=epsilon if epsilon is not None else defaults.epsilon,
            refusal_threshold=refusal_threshold,
            num_schedulers=num_schedulers,
            default_beta=spec.profile.beta,
            # getattr: custom registrations may hand back bare objects
            # without the late-binding/power-of-d fields.
            late_binding=getattr(defaults, "late_binding", False),
            power_of_d=(
                power_of_d
                if power_of_d is not None
                else getattr(defaults, "power_of_d", 1)
            ),
        )
    return DecentralizedSimulator(
        num_workers=spec.total_slots,
        speculation=lambda: make_speculation_policy(speculation),
        trace=trace.fresh_copy(),
        straggler_model=_resolve_straggler_model(
            straggler_model, spec.profile, num_machines=spec.total_slots
        ),
        config=config,
        random_source=RandomSource(seed=run_seed),
        name=system,
        blacklist_policy=_resolve_blacklist_policy(
            blacklist_policy,
            spec.total_slots,
            strike_threshold=strike_threshold,
            strike_window=strike_window,
            eviction_cap=eviction_cap,
        ),
        autoscaler=_resolve_autoscaler(
            autoscaler,
            resize_schedule=resize_schedule,
            scale_interval=scale_interval,
            scale_up_threshold=scale_up_threshold,
            scale_down_threshold=scale_down_threshold,
            scale_step=scale_step,
            min_machines=min_machines,
        ),
        obs=_resolve_obs(obs),
    )


def run_decentralized(
    trace: Trace,
    system: str,
    spec: WorkloadSpec,
    until: Optional[float] = None,
    **kwargs,
) -> SimulationResult:
    """Replay ``trace`` under one decentralized system (build, then run).

    See :func:`build_decentralized_simulator` for every keyword.
    """
    simulator = build_decentralized_simulator(trace, system, spec, **kwargs)
    return simulator.run(until=until)


# --------------------------------------------------------------------------
# The plane-agnostic surface
# --------------------------------------------------------------------------

#: plane name -> the per-plane builder it dispatches to. Planes without
#: a direct simulator (serving wraps a plane; single_job synthesizes its
#: own trace) are deliberately absent.
_PLANE_BUILDERS = {
    "centralized": build_centralized_simulator,
    "decentralized": build_decentralized_simulator,
    "batch": build_batch_simulator,
}


def build_simulator(
    system: str,
    trace: Trace,
    spec: WorkloadSpec,
    plane: Optional[str] = None,
    **knobs,
):
    """Construct a simulator for any plane, resolved by system name.

    ``system`` resolves through the plane-tagged
    :data:`repro.registry.SYSTEMS` table: pass a qualified name like
    ``"batch/hopper"``, or a bare name plus ``plane=``, or a bare name
    alone when it is registered on exactly one plane. Remaining
    ``knobs`` go to the plane's builder
    (:func:`build_centralized_simulator`,
    :func:`build_decentralized_simulator`, or
    :func:`build_batch_simulator`).
    """
    entry = registry.SYSTEMS.get(system, plane=plane)
    try:
        builder = _PLANE_BUILDERS[entry.plane]
    except KeyError:
        raise ValueError(
            f"plane {entry.plane!r} has no direct simulator builder "
            f"(valid planes: {', '.join(_PLANE_BUILDERS)}); serving "
            f"runs go through repro.serving.driver.run_serving"
        ) from None
    return builder(trace, entry.name, spec, **knobs)


def run_simulator(
    system: str,
    trace: Trace,
    spec: WorkloadSpec,
    until: Optional[float] = None,
    plane: Optional[str] = None,
    **knobs,
) -> SimulationResult:
    """Build and run a simulator for any plane (see
    :func:`build_simulator`). ``until=`` bounds the virtual horizon on
    every plane alike."""
    simulator = build_simulator(system, trace, spec, plane=plane, **knobs)
    return simulator.run(until=until)
