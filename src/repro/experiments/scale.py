"""The ``scale`` study: decentralized scheduling at 10k+-slot clusters.

The paper's decentralized results run at a few hundred slots; the
interesting regime for a *decentralized* design is the one where a
central scheduler could not keep up. This study sweeps cluster size
(1k -> 20k slots) crossed with the probe ratio d, under the Spark-like
Facebook workload, on decentralized Hopper vs Sparrow-SRPT. It became
tractable when the simulator's hot path was batched/indexed (see
``repro.simulation.engine`` and ``repro.decentralized.simulator``);
``benchmarks/bench_scale.py`` tracks the events/sec this regime runs at
and gates CI on it.

Run it like any registered study::

    python -m repro study scale --quick          # >=10k slots, seconds
    python -m repro study scale --seeds 1,2,3    # full grid, CI tables
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study


def _scale_cells(
    cluster_sizes: Sequence[int] = (1000, 2500, 5000, 10000, 20000),
    probe_ratios: Sequence[float] = (2.0, 4.0),
    systems: Sequence[str] = ("hopper", "sparrow-srpt"),
    num_jobs: int = 150,
    utilization: float = 0.6,
) -> List[Cell]:
    cells: List[Cell] = []
    for total_slots in cluster_sizes:
        for system in systems:
            for ratio in probe_ratios:
                def make_spec(
                    seed: int,
                    total_slots: int = total_slots,
                    system: str = system,
                    ratio: float = ratio,
                ) -> RunSpec:
                    return RunSpec(
                        "decentralized",
                        system,
                        WorkloadParams(
                            profile="spark-facebook",
                            num_jobs=num_jobs,
                            utilization=utilization,
                            total_slots=total_slots,
                            seed=seed,
                        ),
                        knobs={"probe_ratio": ratio},
                    )

                cells.append(
                    cell(
                        make_spec,
                        total_slots=total_slots,
                        system=system,
                        probe_ratio=ratio,
                    )
                )
    return cells


SCALE_STUDY = register_study(
    Study(
        name="scale",
        description=(
            "decentralized Hopper vs Sparrow-SRPT on 1k-20k-slot clusters "
            "across probe ratios"
        ),
        build_cells=_scale_cells,
        # --quick still covers the >=10k-slot regime (that is the point
        # of the study); it trims the grid, not the cluster size.
        quick=dict(
            cluster_sizes=(2000, 10000),
            probe_ratios=(4.0,),
            systems=("hopper",),
            num_jobs=40,
        ),
    )
)
