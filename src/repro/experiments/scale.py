"""The ``scale`` study: scheduling at 10k+-slot clusters.

The paper's results run at a few hundred slots; the interesting regime
for the *systems* comparison is the one where cluster size itself is the
stressor. This study sweeps cluster size (1k -> 100k slots) on two
axes (the 100k row is the regime the incremental allocation engine
opened — per-event work no longer rebuilds O(active jobs) state):

* **decentralized** — Hopper vs Sparrow-SRPT crossed with the probe
  ratio d, under the Spark-like Facebook workload (became tractable
  when the event loop was batched/indexed, PR 3);
* **centralized** — Hopper-C and SRPT on the same cluster sizes, which
  became tractable when the centralized simulator was rebuilt on the
  shared runtime core and the incremental
  :class:`~repro.cluster.index.ClusterIndex` (this is the regime the
  old O(machines)-per-reschedule scan could not reach).

``benchmarks/bench_scale.py`` tracks the events/sec both axes run at
and gates CI on it. The ``--quick`` grid is unchanged from the study's
birth (decentralized Hopper at 2k/10k slots) so its golden digest in
``tests/test_golden_results.py`` keeps pinning bit-identical replays;
the centralized axis lives in the full grid.

Run it like any registered study::

    python -m repro study scale --quick          # >=10k slots, seconds
    python -m repro study scale --seeds 1,2,3    # full grid, CI tables
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study


def _scale_cells(
    cluster_sizes: Sequence[int] = (1000, 2500, 5000, 10000, 20000, 100000),
    probe_ratios: Sequence[float] = (2.0, 4.0),
    systems: Sequence[str] = ("hopper", "sparrow-srpt"),
    centralized_systems: Sequence[str] = ("hopper", "srpt"),
    num_jobs: int = 150,
    utilization: float = 0.6,
) -> List[Cell]:
    cells: List[Cell] = []
    for total_slots in cluster_sizes:
        for system in systems:
            for ratio in probe_ratios:
                def make_spec(
                    seed: int,
                    total_slots: int = total_slots,
                    system: str = system,
                    ratio: float = ratio,
                ) -> RunSpec:
                    return RunSpec(
                        "decentralized",
                        system,
                        WorkloadParams(
                            profile="spark-facebook",
                            num_jobs=num_jobs,
                            utilization=utilization,
                            total_slots=total_slots,
                            seed=seed,
                        ),
                        knobs={"probe_ratio": ratio},
                    )

                cells.append(
                    cell(
                        make_spec,
                        kind="decentralized",
                        total_slots=total_slots,
                        system=system,
                        probe_ratio=ratio,
                    )
                )
    # Centralized axis: same cluster sizes and workload, one omniscient
    # scheduler (no probe-ratio dimension).
    for total_slots in cluster_sizes:
        for system in centralized_systems:
            def make_centralized_spec(
                seed: int,
                total_slots: int = total_slots,
                system: str = system,
            ) -> RunSpec:
                return RunSpec(
                    "centralized",
                    system,
                    WorkloadParams(
                        profile="spark-facebook",
                        num_jobs=num_jobs,
                        utilization=utilization,
                        total_slots=total_slots,
                        seed=seed,
                    ),
                )

            cells.append(
                cell(
                    make_centralized_spec,
                    kind="centralized",
                    total_slots=total_slots,
                    system=system,
                )
            )
    return cells


SCALE_STUDY = register_study(
    Study(
        name="scale",
        description=(
            "decentralized Hopper vs Sparrow-SRPT (and centralized "
            "Hopper-C vs SRPT) on 1k-100k-slot clusters"
        ),
        build_cells=_scale_cells,
        # --quick still covers the >=10k-slot regime (that is the point
        # of the study); it trims the grid, not the cluster size. It
        # predates the centralized axis and must keep producing the
        # exact result sequence its golden digest pins, so the
        # centralized cells stay out of it.
        quick=dict(
            cluster_sizes=(2000, 10000),
            probe_ratios=(4.0,),
            systems=("hopper",),
            centralized_systems=(),
            num_jobs=40,
        ),
    )
)
