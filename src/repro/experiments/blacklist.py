"""The ``blacklist`` study: machine-correlated stragglers vs the paper's
i.i.d. redraw model.

Production clusters blacklist persistently flaky machines (§2.2), which
makes the *shape* of straggling matter: the paper's analysis assumes
i.i.d. Pareto slowdowns redrawn per copy (``pareto-redraw``), while the
blacklisting regime concentrates slowdowns on a fixed flaky fraction of
machines (``machine-correlated``). This study crosses the two straggler
models with the centralized and decentralized Hopper systems (plus the
Sparrow-SRPT baseline) on one workload, so the gap between the regimes
is a first-class, seed-replicated table::

    python -m repro study blacklist --quick
    python -m repro study blacklist --seeds 1,2,3

The ``machine-correlated`` model needs the per-run cluster size; the
harness wires it automatically for both spec kinds (see
``repro.registry.make_straggler_model``). The study's golden digest was
pinned in ``tests/test_golden_results.py`` the day it was born.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study

#: (spec kind, system) pairs the straggler models are compared on.
DEFAULT_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("centralized", "hopper"),
    ("decentralized", "hopper"),
    ("decentralized", "sparrow-srpt"),
)


def _blacklist_cells(
    straggler_models: Sequence[str] = ("pareto-redraw", "machine-correlated"),
    systems: Sequence[Tuple[str, str]] = DEFAULT_SYSTEMS,
    num_jobs: int = 120,
    utilization: float = 0.6,
    total_slots: int = 400,
) -> List[Cell]:
    cells: List[Cell] = []
    for model in straggler_models:
        for kind, system in systems:
            def make_spec(
                seed: int,
                model: str = model,
                kind: str = kind,
                system: str = system,
            ) -> RunSpec:
                return RunSpec(
                    kind,
                    system,
                    WorkloadParams(
                        profile="facebook",
                        num_jobs=num_jobs,
                        utilization=utilization,
                        total_slots=total_slots,
                        seed=seed,
                    ),
                    knobs={"straggler_model": model},
                )

            cells.append(
                cell(
                    make_spec,
                    straggler_model=model,
                    kind=kind,
                    system=system,
                )
            )
    return cells


BLACKLIST_STUDY = register_study(
    Study(
        name="blacklist",
        description=(
            "machine-correlated vs pareto-redraw stragglers on the "
            "centralized + decentralized systems (blacklisting regime)"
        ),
        build_cells=_blacklist_cells,
        quick=dict(num_jobs=30, total_slots=200),
    )
)
