"""The ``steady_state`` study: open-loop heavy traffic near saturation.

Every other study replays a finite job batch; this one streams jobs at
a target utilization rho and reads the *steady-state tail* after
warm-up truncation (see :mod:`repro.serving`). The grid crosses:

* **rho** — 0.7 to 0.95, the heavy-traffic band where speculation-aware
  scheduling should matter most (queueing amplifies every wasted slot);
* **plane** — decentralized Hopper vs centralized Hopper-C, both fed by
  the identical arrival stream (same workload seed => same jobs at the
  same instants);
* **speculation** — LATE vs none, to show the speculation cost/benefit
  under sustained load rather than in a draining batch.

The cell metric is the overall p99 JCT over the measurement interval —
the serving regime's headline number. Quick mode trims rho points,
slots, and the horizon so both planes finish in seconds; its golden
digest is pinned in ``tests/test_golden_results.py`` from day one.

Run it like any registered study::

    python -m repro study steady_state --quick
    python -m repro study steady_state --seeds 1,2,3
"""

from __future__ import annotations

from typing import List, Sequence

from repro.metrics.collector import SimulationResult
from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study


def steady_state_p99(result: SimulationResult) -> float:
    """Overall p99 JCT of the measurement interval.

    Falls back to the batch-style mean job duration when no completion
    landed inside the measurement windows (degenerate tiny grids), so
    the metric never divides a study cell by an empty list.
    """
    serving = result.serving or {}
    p99 = serving.get("overall", {}).get("jct_p99")
    if p99 is None:
        return result.mean_job_duration
    return p99


def _steady_state_cells(
    rhos: Sequence[float] = (0.7, 0.8, 0.9),
    systems: Sequence[str] = ("hopper", "hopper-c"),
    speculation: Sequence[str] = ("late", "none"),
    arrival_process: str = "poisson",
    total_slots: int = 400,
    max_jobs: int = 5000,
    warmup: float = 30.0,
    horizon: float = 270.0,
    cooldown: float = 30.0,
    window: float = 40.0,
) -> List[Cell]:
    cells: List[Cell] = []
    for rho in rhos:
        for system in systems:
            for spec_policy in speculation:
                def make_spec(
                    seed: int,
                    rho: float = rho,
                    system: str = system,
                    spec_policy: str = spec_policy,
                ) -> RunSpec:
                    return RunSpec(
                        "serving",
                        system,
                        WorkloadParams(
                            profile="spark-facebook",
                            num_jobs=max_jobs,
                            utilization=rho,
                            total_slots=total_slots,
                            seed=seed,
                        ),
                        speculation=spec_policy,
                        knobs={
                            "arrival_process": arrival_process,
                            "warmup": warmup,
                            "horizon": horizon,
                            "cooldown": cooldown,
                            "window": window,
                        },
                    )

                cells.append(
                    cell(
                        make_spec,
                        kind="serving",
                        rho=rho,
                        system=system,
                        speculation=spec_policy,
                    )
                )
    return cells


STEADY_STATE_STUDY = register_study(
    Study(
        name="steady_state",
        description=(
            "open-loop rho sweep (0.7-0.95 band) x both planes x "
            "speculation on/off; metric is steady-state p99 JCT"
        ),
        build_cells=_steady_state_cells,
        metric=steady_state_p99,
        metric_name="p99 JCT (steady state)",
        quick=dict(
            rhos=(0.75, 0.9),
            total_slots=160,
            max_jobs=600,
            warmup=10.0,
            horizon=60.0,
            cooldown=15.0,
            window=10.0,
        ),
    )
)
