"""Experiment harness: one entry point per paper table/figure.

Each ``figN_*`` function in :mod:`repro.experiments.figures` regenerates
the corresponding figure's rows/series at laptop scale and returns plain
data structures; ``benchmarks/`` wraps them in pytest-benchmark targets
that print paper-vs-measured tables.
"""

from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    run_centralized,
    run_decentralized,
)
from repro.experiments import figures
from repro.experiments.motivating import (
    MotivatingExampleResult,
    run_motivating_example,
)

__all__ = [
    "WorkloadSpec",
    "build_trace",
    "run_centralized",
    "run_decentralized",
    "figures",
    "MotivatingExampleResult",
    "run_motivating_example",
]
