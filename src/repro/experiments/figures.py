"""Per-figure experiment entry points (see DESIGN.md §4 for the index).

Each function regenerates one paper figure/table at laptop scale and
returns plain data (lists of rows / dicts) that the benchmarks print and
assert shape properties on. Parameters default to sizes that run in
seconds; pass larger values to approach the paper's scale.

Every figure is expressed as a registered :class:`repro.sweep.Study` —
a labelled grid of :class:`repro.sweep.RunSpec` cells (``seed ->
spec``). The figure functions run their study at a single seed and
reduce the grid to the paper's derived quantities; the CLI ``study``
subcommand runs the *same* grid with seed replication and reports
mean/p95 with bootstrap confidence intervals. Fig. 3's single-job
threshold loop, formerly a bespoke serial loop, now rides the same
machinery via the registrable ``single_job`` spec kind.

All replays go through a :class:`repro.sweep.SweepRunner` (pass
``runner=`` to control parallelism/caching; the default runner is
configured from ``REPRO_SWEEP_PARALLEL`` / ``REPRO_SWEEP_CACHE``). Specs
are fully seeded, so parallel, serial, and cached evaluation all return
identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.analysis import (
    gain_cdf,
    mean_reduction_percent,
    percentile,
    reduction_by_bin,
    reduction_by_dag_length,
    slowdown_stats,
)
from repro.sweep import RunSpec, SweepRunner, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study, with_axis
from repro.workload.generator import (
    BING_PROFILE,
    FACEBOOK_PROFILE,
    SPARK_BING_PROFILE,
    SPARK_FACEBOOK_PROFILE,
    bin_label,
)


def _workload(
    profile_name: str,
    num_jobs: int,
    utilization: float,
    total_slots: int,
    seed: int = 42,
    **kwargs,
) -> WorkloadParams:
    return WorkloadParams(
        profile=profile_name,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
        seed=seed,
        **kwargs,
    )


# --------------------------------------------------------------------------
# Figure 3: the sharp threshold in the value of extra slots
# --------------------------------------------------------------------------

def _fig3_cells(
    beta: float = 1.4,
    num_tasks: int = 200,
    normalized_slots: Sequence[float] = (
        0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5,
    ),
    base_seed: int = 11,
) -> List[Cell]:
    """One cell per normalized slot count; study *seeds* are repetition
    indices (``run_seed``), matching the original figure loop exactly."""

    def make(norm: float):
        def make_spec(repetition: int, norm: float = norm) -> RunSpec:
            return RunSpec(
                "single_job",
                "hopper",
                WorkloadParams(
                    profile="facebook",
                    num_jobs=1,
                    utilization=0.5,
                    total_slots=1,
                    seed=base_seed,
                    max_phase_tasks=None,
                ),
                knobs={
                    "beta": float(beta),
                    "num_tasks": int(num_tasks),
                    "normalized_slots": float(norm),
                },
                run_seed=repetition,
            )

        return make_spec

    return [
        cell(make(norm), normalized_slots=norm) for norm in normalized_slots
    ]


FIG3_STUDY = register_study(
    Study(
        name="fig3",
        description=(
            "single-job completion vs normalized slots; knee near 2/beta "
            "(seeds are repetition indices)"
        ),
        build_cells=_fig3_cells,
        seeds=tuple(range(8)),
        metric=lambda result: result.jobs[0].duration,
        metric_name="single-job completion time",
        quick=dict(num_tasks=50, normalized_slots=(0.6, 1.0, 1.4, 1.8, 2.2)),
    )
)


def fig3_threshold(
    beta: float = 1.4,
    num_tasks: int = 200,
    normalized_slots: Sequence[float] = (
        0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5,
    ),
    repetitions: int = 30,
    seed: int = 11,
    runner: Optional[SweepRunner] = None,
) -> List[Tuple[float, float]]:
    """Single-job completion time vs normalized slot count.

    Returns (slots / num_tasks, median completion normalized by the best
    point). The knee should sit near ``2 / beta`` (the red line in
    Fig. 3). LATE is run uncapped so that the job can actually exploit
    slots beyond one-per-task — the question the figure asks is how much
    that exploitation is worth.
    """
    result = FIG3_STUDY.run(
        seeds=tuple(range(repetitions)),
        runner=runner,
        beta=beta,
        num_tasks=num_tasks,
        normalized_slots=normalized_slots,
        base_seed=seed,
    )
    raw: List[Tuple[float, float]] = []
    for norm, durations in zip(
        normalized_slots, result.values(FIG3_STUDY.metric)
    ):
        samples = sorted(durations)
        median = samples[len(samples) // 2]
        raw.append((norm, median))
    best = min(v for _, v in raw)
    return [(norm, v / best) for norm, v in raw]


def knee_position(curve: Sequence[Tuple[float, float]]) -> float:
    """Locate the knee: the first x at which the curve has entered its
    plateau (within 10% of the remaining drop to the final value)."""
    if len(curve) < 3:
        raise ValueError("need at least 3 points")
    initial = curve[0][1]
    final = min(v for _, v in curve)
    threshold = final + 0.10 * max(initial - final, 1e-9)
    for x, v in curve:
        if v <= threshold:
            return x
    return curve[-1][0]


# --------------------------------------------------------------------------
# Figures 5a/5b: probes and refusals vs the centralized scheduler
# --------------------------------------------------------------------------

@dataclass
class DecentralizationRow:
    """One point of Fig. 5a/5b: ratio of decentralized to centralized
    mean job duration."""

    parameter: float
    utilization: float
    system: str
    ratio: float


def _fig5a_cells(
    probe_ratios: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[Cell]:
    cells: List[Cell] = []
    for utilization in utilizations:
        def wl(seed: int, utilization: float = utilization) -> WorkloadParams:
            return _workload(
                "spark-facebook", num_jobs, utilization, total_slots, seed=seed
            )

        cells.append(
            cell(
                lambda seed, wl=wl: RunSpec("centralized", "hopper", wl(seed)),
                system="hopper (centralized)",
                parameter="-",
                utilization=utilization,
            )
        )
        cells.extend(
            cell(
                lambda seed, wl=wl, ratio=ratio: RunSpec(
                    "decentralized",
                    "hopper",
                    wl(seed),
                    knobs={"probe_ratio": ratio},
                ),
                system="hopper",
                parameter=ratio,
                utilization=utilization,
            )
            for ratio in probe_ratios
        )
        cells.append(
            cell(
                lambda seed, wl=wl: RunSpec(
                    "decentralized",
                    "sparrow",
                    wl(seed),
                    knobs={"probe_ratio": 2.0},
                ),
                system="sparrow",
                parameter=2.0,
                utilization=utilization,
            )
        )
    return cells


def _fig5b_cells(
    refusal_counts: Sequence[int] = (0, 1, 2, 3, 5, 8),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[Cell]:
    cells: List[Cell] = []
    for utilization in utilizations:
        def wl(seed: int, utilization: float = utilization) -> WorkloadParams:
            return _workload(
                "spark-facebook", num_jobs, utilization, total_slots, seed=seed
            )

        cells.append(
            cell(
                lambda seed, wl=wl: RunSpec("centralized", "hopper", wl(seed)),
                system="hopper (centralized)",
                parameter="-",
                utilization=utilization,
            )
        )
        cells.extend(
            cell(
                lambda seed, wl=wl, refusals=refusals: RunSpec(
                    "decentralized",
                    "hopper",
                    wl(seed),
                    knobs={"refusal_threshold": refusals},
                ),
                system="hopper",
                parameter=float(refusals),
                utilization=utilization,
            )
            for refusals in refusal_counts
        )
    return cells


def _fig5_cells(
    probe_ratios: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    refusal_counts: Sequence[int] = (0, 1, 2, 3, 5, 8),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[Cell]:
    """Fig. 5a and 5b as one grid, distinguished by a ``variant`` axis."""
    return with_axis(
        _fig5a_cells(probe_ratios, utilizations, num_jobs, total_slots),
        variant="probe-count",
    ) + with_axis(
        _fig5b_cells(refusal_counts, utilizations, num_jobs, total_slots),
        variant="refusal-count",
    )


FIG5A_STUDY = register_study(
    Study(
        name="fig5a",
        description="decentralized-to-centralized ratio vs probe count d",
        build_cells=_fig5a_cells,
        quick=dict(
            probe_ratios=(2.0, 4.0),
            utilizations=(0.7,),
            num_jobs=25,
            total_slots=80,
        ),
    )
)

FIG5B_STUDY = register_study(
    Study(
        name="fig5b",
        description=(
            "decentralized-to-centralized ratio vs refusal threshold"
        ),
        build_cells=_fig5b_cells,
        quick=dict(
            refusal_counts=(0, 2),
            utilizations=(0.7,),
            num_jobs=25,
            total_slots=80,
        ),
    )
)

FIG5_STUDY = register_study(
    Study(
        name="fig5",
        description="fig5a + fig5b combined (probe count and refusals)",
        build_cells=_fig5_cells,
        quick=dict(
            probe_ratios=(2.0, 4.0),
            refusal_counts=(0, 2),
            utilizations=(0.7,),
            num_jobs=25,
            total_slots=80,
        ),
    )
)


def fig5a_probe_count(
    probe_ratios: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> List[DecentralizationRow]:
    """Ratio of decentralized Hopper (and Sparrow) to centralized Hopper
    as the probe count d varies (Fig. 5a)."""
    results = FIG5A_STUDY.run(
        runner=runner,
        probe_ratios=probe_ratios,
        utilizations=utilizations,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    rows: List[DecentralizationRow] = []
    group = len(probe_ratios) + 2
    for i, utilization in enumerate(utilizations):
        reference = results[i * group].mean_job_duration
        for j, ratio in enumerate(probe_ratios):
            rows.append(
                DecentralizationRow(
                    parameter=ratio,
                    utilization=utilization,
                    system="hopper",
                    ratio=results[i * group + 1 + j].mean_job_duration
                    / reference,
                )
            )
        rows.append(
            DecentralizationRow(
                parameter=2.0,
                utilization=utilization,
                system="sparrow",
                ratio=results[(i + 1) * group - 1].mean_job_duration
                / reference,
            )
        )
    return rows


def fig5b_refusal_count(
    refusal_counts: Sequence[int] = (0, 1, 2, 3, 5, 8),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> List[DecentralizationRow]:
    """Ratio vs centralized as the refusal threshold varies (Fig. 5b)."""
    results = FIG5B_STUDY.run(
        runner=runner,
        refusal_counts=refusal_counts,
        utilizations=utilizations,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    rows: List[DecentralizationRow] = []
    group = len(refusal_counts) + 1
    for i, utilization in enumerate(utilizations):
        reference = results[i * group].mean_job_duration
        for j, refusals in enumerate(refusal_counts):
            rows.append(
                DecentralizationRow(
                    parameter=float(refusals),
                    utilization=utilization,
                    system="hopper",
                    ratio=results[i * group + 1 + j].mean_job_duration
                    / reference,
                )
            )
    return rows


# --------------------------------------------------------------------------
# Figure 6: decentralized gains vs utilization (Facebook & Bing)
# --------------------------------------------------------------------------

@dataclass
class UtilizationGainRow:
    utilization: float
    vs_sparrow: float
    vs_sparrow_srpt: float


def _fig6_cells(
    profile_name: str = "facebook",
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[Cell]:
    profile = (
        SPARK_FACEBOOK_PROFILE
        if profile_name == "facebook"
        else SPARK_BING_PROFILE
    )
    return [
        cell(
            lambda seed, u=utilization, s=system: RunSpec(
                "decentralized",
                s,
                _workload(profile.name, num_jobs, u, total_slots, seed=seed),
            ),
            utilization=utilization,
            system=system,
        )
        for utilization in utilizations
        for system in ("hopper", "sparrow", "sparrow-srpt")
    ]


FIG6_STUDY = register_study(
    Study(
        name="fig6",
        description=(
            "decentralized Hopper vs Sparrow / Sparrow-SRPT across "
            "utilizations"
        ),
        build_cells=_fig6_cells,
        quick=dict(utilizations=(0.7,), num_jobs=30, total_slots=100),
    )
)


def fig6_utilization_gains(
    profile_name: str = "facebook",
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> List[UtilizationGainRow]:
    """Reduction in average job duration of decentralized Hopper vs
    Sparrow and Sparrow-SRPT across utilizations (Fig. 6a/6b)."""
    results = FIG6_STUDY.run(
        runner=runner,
        profile_name=profile_name,
        utilizations=utilizations,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    rows: List[UtilizationGainRow] = []
    for i, utilization in enumerate(utilizations):
        hopper, sparrow, srpt = results[i * 3 : i * 3 + 3]
        rows.append(
            UtilizationGainRow(
                utilization=utilization,
                vs_sparrow=mean_reduction_percent(sparrow, hopper),
                vs_sparrow_srpt=mean_reduction_percent(srpt, hopper),
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 7: gains by job-size bin
# --------------------------------------------------------------------------

def _fig7_cells(
    profile_name: str = "facebook",
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
) -> List[Cell]:
    profile = (
        SPARK_FACEBOOK_PROFILE
        if profile_name == "facebook"
        else SPARK_BING_PROFILE
    )
    return [
        cell(
            lambda seed, s=system: RunSpec(
                "decentralized",
                s,
                _workload(
                    profile.name, num_jobs, utilization, total_slots, seed=seed
                ),
            ),
            system=system,
        )
        for system in ("hopper", "sparrow-srpt")
    ]


FIG7_STUDY = register_study(
    Study(
        name="fig7",
        description="Hopper vs Sparrow-SRPT, reduction by job-size bin",
        build_cells=_fig7_cells,
        quick=dict(num_jobs=40, total_slots=100),
    )
)


def fig7_job_bins(
    profile_name: str = "facebook",
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """Per-bin reduction vs Sparrow-SRPT (Fig. 7); keys are bin labels."""
    hopper, srpt = FIG7_STUDY.run(
        runner=runner,
        profile_name=profile_name,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    by_bin = reduction_by_bin(srpt, hopper)
    out = {bin_label(i): gain for i, gain in sorted(by_bin.items())}
    out["overall"] = mean_reduction_percent(srpt, hopper)
    return out


# --------------------------------------------------------------------------
# Figure 8a: CDF of gains; Figure 8b: gains vs DAG length
# --------------------------------------------------------------------------

def _fig8a_cells(
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
) -> List[Cell]:
    return [
        cell(
            lambda seed, s=system: RunSpec(
                "decentralized",
                s,
                _workload(
                    "spark-facebook",
                    num_jobs,
                    utilization,
                    total_slots,
                    seed=seed,
                ),
            ),
            system=system,
        )
        for system in ("hopper", "sparrow-srpt")
    ]


FIG8A_STUDY = register_study(
    Study(
        name="fig8a",
        description="per-job gain CDF of Hopper vs Sparrow-SRPT",
        build_cells=_fig8a_cells,
        quick=dict(num_jobs=40, total_slots=100),
    )
)


def fig8a_gain_cdf(
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """CDF of per-job gains vs Sparrow-SRPT plus summary percentiles."""
    hopper, srpt = FIG8A_STUDY.run(
        runner=runner,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    cdf = gain_cdf(srpt, hopper)
    gains = [g for g, _ in cdf]
    return {
        "cdf": cdf,
        "p10": percentile(gains, 0.10),
        "p50": percentile(gains, 0.50),
        "p90": percentile(gains, 0.90),
        "mean": sum(gains) / len(gains) if gains else 0.0,
    }


def _fig8b_cells(
    utilization: float = 0.6,
    num_jobs: int = 220,
    total_slots: int = 400,
) -> List[Cell]:
    return [
        cell(
            lambda seed, s=system: RunSpec(
                "decentralized",
                s,
                _workload(
                    "facebook",  # full DAG mix
                    num_jobs,
                    utilization,
                    total_slots,
                    seed=seed,
                    max_phase_tasks=120,
                ),
            ),
            system=system,
        )
        for system in ("hopper", "sparrow-srpt")
    ]


FIG8B_STUDY = register_study(
    Study(
        name="fig8b",
        description="Hopper vs Sparrow-SRPT, reduction by DAG length",
        build_cells=_fig8b_cells,
        quick=dict(num_jobs=40, total_slots=100),
    )
)


def fig8b_dag_length(
    utilization: float = 0.6,
    num_jobs: int = 220,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[int, float]:
    """Reduction vs Sparrow-SRPT grouped by DAG length (Fig. 8b)."""
    hopper, srpt = FIG8B_STUDY.run(
        runner=runner,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    return reduction_by_dag_length(srpt, hopper)


# --------------------------------------------------------------------------
# Figure 9: gains under different speculation algorithms
# --------------------------------------------------------------------------

def _fig9_cells(
    algorithms: Sequence[str] = ("late", "mantri", "grass"),
    utilization: float = 0.6,
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[Cell]:
    return [
        cell(
            lambda seed, a=algorithm, s=system: RunSpec(
                "decentralized",
                s,
                _workload(
                    "spark-facebook",
                    num_jobs,
                    utilization,
                    total_slots,
                    seed=seed,
                ),
                speculation=a,
            ),
            speculation=algorithm,
            system=system,
        )
        for algorithm in algorithms
        for system in ("hopper", "sparrow-srpt")
    ]


FIG9_STUDY = register_study(
    Study(
        name="fig9",
        description="gains under LATE / Mantri / GRASS speculation",
        build_cells=_fig9_cells,
        quick=dict(num_jobs=30, total_slots=100),
    )
)


def fig9_speculation_algorithms(
    algorithms: Sequence[str] = ("late", "mantri", "grass"),
    utilization: float = 0.6,
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Overall and per-bin gains of Hopper vs Sparrow-SRPT, pairing both
    systems with each speculation algorithm (Fig. 9)."""
    results = FIG9_STUDY.run(
        runner=runner,
        algorithms=algorithms,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    out: Dict[str, Dict[str, float]] = {}
    for i, algorithm in enumerate(algorithms):
        hopper, srpt = results[i * 2 : i * 2 + 2]
        per_bin = {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        }
        per_bin["overall"] = mean_reduction_percent(srpt, hopper)
        out[algorithm] = per_bin
    return out


# --------------------------------------------------------------------------
# Figure 10: fairness knob epsilon
# --------------------------------------------------------------------------

@dataclass
class FairnessRow:
    epsilon: float
    gain_vs_srpt: float
    fraction_slowed: float
    mean_slowdown: float
    worst_slowdown: float


def _fig10_cells(
    epsilons: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[Cell]:
    def wl(seed: int) -> WorkloadParams:
        return _workload(
            "spark-facebook", num_jobs, utilization, total_slots, seed=seed
        )

    cells = [
        cell(
            lambda seed: RunSpec("decentralized", "sparrow-srpt", wl(seed)),
            system="sparrow-srpt",
            epsilon="-",
        ),
        cell(
            lambda seed: RunSpec(
                "decentralized", "hopper", wl(seed), knobs={"epsilon": 0.0}
            ),
            system="hopper (fair reference)",
            epsilon=0.0,
        ),
    ]
    cells.extend(
        cell(
            lambda seed, e=epsilon: RunSpec(
                "decentralized", "hopper", wl(seed), knobs={"epsilon": e}
            ),
            system="hopper",
            epsilon=epsilon,
        )
        for epsilon in epsilons
    )
    return cells


FIG10_STUDY = register_study(
    Study(
        name="fig10",
        description="fairness knob epsilon: gains vs slowdowns",
        build_cells=_fig10_cells,
        quick=dict(epsilons=(0.0, 0.1), num_jobs=25, total_slots=80),
    )
)


def fig10_fairness(
    epsilons: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> List[FairnessRow]:
    """Gains and slowdown-vs-fair as epsilon varies (Fig. 10a/b/c).

    The slowdown reference is Hopper at epsilon=0 (perfectly fair floors),
    the paper's "perfectly fair allocation"."""
    results = FIG10_STUDY.run(
        runner=runner,
        epsilons=epsilons,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    srpt, fair_reference = results[0], results[1]
    rows: List[FairnessRow] = []
    for epsilon, result in zip(epsilons, results[2:]):
        fraction, mean_slow, worst = slowdown_stats(fair_reference, result)
        rows.append(
            FairnessRow(
                epsilon=epsilon,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                fraction_slowed=fraction,
                mean_slowdown=mean_slow,
                worst_slowdown=worst,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 11: probe ratio sweep
# --------------------------------------------------------------------------

def _fig11_cells(
    probe_ratios: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[Cell]:
    cells: List[Cell] = []
    for utilization in utilizations:
        def wl(seed: int, utilization: float = utilization) -> WorkloadParams:
            return _workload(
                "spark-facebook", num_jobs, utilization, total_slots, seed=seed
            )

        cells.append(
            cell(
                lambda seed, wl=wl: RunSpec(
                    "decentralized", "sparrow-srpt", wl(seed)
                ),
                utilization=utilization,
                system="sparrow-srpt",
                probe_ratio="-",
            )
        )
        cells.extend(
            cell(
                lambda seed, wl=wl, ratio=ratio: RunSpec(
                    "decentralized",
                    "hopper",
                    wl(seed),
                    knobs={"probe_ratio": ratio},
                ),
                utilization=utilization,
                system="hopper",
                probe_ratio=ratio,
            )
            for ratio in probe_ratios
        )
    return cells


FIG11_STUDY = register_study(
    Study(
        name="fig11",
        description="Hopper's gain vs Sparrow-SRPT across probe ratios",
        build_cells=_fig11_cells,
        quick=dict(
            probe_ratios=(2.0, 4.0),
            utilizations=(0.7,),
            num_jobs=30,
            total_slots=100,
        ),
    )
)


def fig11_probe_ratio(
    probe_ratios: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> Dict[float, Dict[float, float]]:
    """Hopper's gain vs Sparrow-SRPT as the probe ratio varies
    (Fig. 11); keyed [utilization][probe_ratio] -> reduction %."""
    results = FIG11_STUDY.run(
        runner=runner,
        probe_ratios=probe_ratios,
        utilizations=utilizations,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    out: Dict[float, Dict[float, float]] = {}
    group = len(probe_ratios) + 1
    for i, utilization in enumerate(utilizations):
        srpt = results[i * group]
        out[utilization] = {
            ratio: mean_reduction_percent(
                srpt, results[i * group + 1 + j]
            )
            for j, ratio in enumerate(probe_ratios)
        }
    return out


# --------------------------------------------------------------------------
# Figure 12: centralized Hopper vs SRPT
# --------------------------------------------------------------------------

def _fig12_cells(
    profile_name: str = "facebook",
    utilization: float = 0.7,
    num_jobs: int = 200,
    total_slots: int = 200,
) -> List[Cell]:
    profile = FACEBOOK_PROFILE if profile_name == "facebook" else BING_PROFILE
    return [
        cell(
            lambda seed, s=system: RunSpec(
                "centralized",
                s,
                _workload(
                    profile.name,
                    num_jobs,
                    utilization,
                    total_slots,
                    seed=seed,
                    max_phase_tasks=300,
                ),
            ),
            system=system,
        )
        for system in ("hopper", "srpt")
    ]


FIG12_STUDY = register_study(
    Study(
        name="fig12",
        description="centralized Hopper vs centralized SRPT",
        build_cells=_fig12_cells,
        quick=dict(num_jobs=30, total_slots=60),
    )
)


def fig12_centralized(
    profile_name: str = "facebook",
    utilization: float = 0.7,
    num_jobs: int = 200,
    total_slots: int = 200,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Centralized Hopper vs centralized SRPT+best-effort-LATE: overall,
    per-bin, per-DAG-length (Fig. 12a/12b).

    The "Spark-like" variant (small interactive jobs) shows modestly
    higher gains than "Hadoop-like", mirroring the paper's observation.
    """
    hopper, srpt = FIG12_STUDY.run(
        runner=runner,
        profile_name=profile_name,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    return {
        "overall": mean_reduction_percent(srpt, hopper),
        "by_bin": {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        },
        "by_dag_length": reduction_by_dag_length(srpt, hopper),
    }


# --------------------------------------------------------------------------
# Figure 13: locality allowance k
# --------------------------------------------------------------------------

@dataclass
class LocalityRow:
    k_percent: float
    gain_vs_srpt: float
    locality_fraction: float


def _fig13_cells(
    k_values: Sequence[float] = (0.0, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 200,
) -> List[Cell]:
    def wl(seed: int) -> WorkloadParams:
        return _workload(
            "facebook",
            num_jobs,
            utilization,
            total_slots,
            seed=seed,
            max_phase_tasks=200,
            locality_machines=total_slots // 4,
        )

    cells = [
        cell(
            lambda seed: RunSpec(
                "centralized",
                "srpt",
                wl(seed),
                knobs={"with_locality": True},
            ),
            system="srpt",
            k_percent="-",
        )
    ]
    cells.extend(
        cell(
            lambda seed, k=k: RunSpec(
                "centralized",
                "hopper",
                wl(seed),
                knobs={"with_locality": True, "locality_k_percent": k},
            ),
            system="hopper",
            k_percent=k,
        )
        for k in k_values
    )
    return cells


FIG13_STUDY = register_study(
    Study(
        name="fig13",
        description="data-locality allowance k: gains and local fraction",
        build_cells=_fig13_cells,
        quick=dict(k_values=(0.0, 5.0), num_jobs=25, total_slots=60),
    )
)


def fig13_locality(
    k_values: Sequence[float] = (0.0, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 200,
    runner: Optional[SweepRunner] = None,
) -> List[LocalityRow]:
    """Centralized Hopper with data locality: gains and fraction of
    data-local tasks as the allowance k varies (Fig. 13)."""
    results = FIG13_STUDY.run(
        runner=runner,
        k_values=k_values,
        utilization=utilization,
        num_jobs=num_jobs,
        total_slots=total_slots,
    ).first_seed_results
    srpt = results[0]
    rows: List[LocalityRow] = []
    for k, result in zip(k_values, results[1:]):
        rows.append(
            LocalityRow(
                k_percent=k,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                locality_fraction=result.data_locality_fraction,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Headline: §1 / §7 aggregate gains
# --------------------------------------------------------------------------

def _headline_cells(
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[Cell]:
    def decentralized_wl(seed: int) -> WorkloadParams:
        return _workload("spark-facebook", num_jobs, 0.6, total_slots, seed=seed)

    def centralized_wl(seed: int) -> WorkloadParams:
        return _workload(
            "facebook",
            num_jobs,
            0.7,
            total_slots // 2,
            seed=seed,
            max_phase_tasks=300,
        )

    return [
        cell(
            lambda seed: RunSpec(
                "decentralized", "hopper", decentralized_wl(seed)
            ),
            kind="decentralized",
            system="hopper",
        ),
        cell(
            lambda seed: RunSpec(
                "decentralized", "sparrow-srpt", decentralized_wl(seed)
            ),
            kind="decentralized",
            system="sparrow-srpt",
        ),
        cell(
            lambda seed: RunSpec("centralized", "hopper", centralized_wl(seed)),
            kind="centralized",
            system="hopper",
        ),
        cell(
            lambda seed: RunSpec("centralized", "srpt", centralized_wl(seed)),
            kind="centralized",
            system="srpt",
        ),
    ]


HEADLINE_STUDY = register_study(
    Study(
        name="headline",
        description="the paper's headline aggregate gains (Sections 1 and 7)",
        build_cells=_headline_cells,
        quick=dict(num_jobs=40, total_slots=120),
    )
)


def headline_gains(
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """The paper's headline numbers: decentralized Hopper vs the best
    decentralized baseline, and centralized Hopper vs centralized SRPT."""
    hopper_d, srpt_d, hopper_c, srpt_c = HEADLINE_STUDY.run(
        runner=runner, num_jobs=num_jobs, total_slots=total_slots
    ).first_seed_results
    return {
        "decentralized_vs_sparrow_srpt": mean_reduction_percent(
            srpt_d, hopper_d
        ),
        "centralized_vs_srpt": mean_reduction_percent(srpt_c, hopper_c),
    }
