"""Per-figure experiment entry points (see DESIGN.md §4 for the index).

Each function regenerates one paper figure/table at laptop scale and
returns plain data (lists of rows / dicts) that the benchmarks print and
assert shape properties on. Parameters default to sizes that run in
seconds; pass larger values to approach the paper's scale.

The multi-run figures build declarative :class:`repro.sweep.RunSpec`
grids and evaluate them through a :class:`repro.sweep.SweepRunner`
(pass ``runner=`` to control parallelism/caching; the default runner is
configured from ``REPRO_SWEEP_PARALLEL`` / ``REPRO_SWEEP_CACHE``). Specs
are fully seeded, so parallel, serial, and cached evaluation all return
identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.cluster.cluster import Cluster
from repro.centralized.policies import HopperPolicy, SRPTPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.core.virtual_size import threshold_multiplier
from repro.metrics.analysis import (
    gain_cdf,
    mean_reduction_percent,
    percentile,
    reduction_by_bin,
    reduction_by_dag_length,
    slowdown_stats,
)
from repro.simulation.rng import RandomSource
from repro.speculation import make_speculation_policy
from repro.stragglers.model import ParetoRedrawStragglerModel
from repro.sweep import RunSpec, SweepRunner, WorkloadParams, evaluate
from repro.workload.generator import (
    BING_PROFILE,
    FACEBOOK_PROFILE,
    SPARK_BING_PROFILE,
    SPARK_FACEBOOK_PROFILE,
    bin_label,
)
from repro.workload.job import make_single_phase_job
from repro.workload.traces import Trace


# --------------------------------------------------------------------------
# Figure 3: the sharp threshold in the value of extra slots
# --------------------------------------------------------------------------

def fig3_threshold(
    beta: float = 1.4,
    num_tasks: int = 200,
    normalized_slots: Sequence[float] = (
        0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5,
    ),
    repetitions: int = 30,
    seed: int = 11,
) -> List[Tuple[float, float]]:
    """Single-job completion time vs normalized slot count.

    Returns (slots / num_tasks, median completion normalized by the best
    point). The knee should sit near ``2 / beta`` (the red line in
    Fig. 3). LATE is run uncapped so that the job can actually exploit
    slots beyond one-per-task — the question the figure asks is how much
    that exploitation is worth.
    """
    from repro.workload.distributions import ParetoDistribution

    duration_dist = ParetoDistribution(shape=beta, scale=1.0)
    raw: List[Tuple[float, float]] = []
    for norm in normalized_slots:
        slots = max(1, int(round(norm * num_tasks)))
        samples: List[float] = []
        for rep in range(repetitions):
            source = RandomSource(seed=seed + 1000 * rep)
            rng = source.child("fig3").rng
            sizes = [duration_dist.sample(rng) for _ in range(num_tasks)]
            job = make_single_phase_job(0, 0.0, sizes)
            trace = Trace(jobs=[job])
            cluster = Cluster(num_machines=slots, slots_per_machine=1)
            sim = CentralizedSimulator(
                cluster=cluster,
                policy=HopperPolicy(epsilon=1.0),
                speculation=lambda: make_speculation_policy(
                    "late",
                    detect_after=0.25,
                    speculative_cap_fraction=1.0,
                    slow_task_pct=1.0,
                    max_copies=6,
                ),
                trace=trace.fresh_copy(),
                straggler_model=ParetoRedrawStragglerModel(beta=beta),
                config=CentralizedConfig(
                    learn_beta=False,
                    default_beta=beta,
                    epsilon=1.0,
                    speculation_check_interval=0.25,
                    preempt_speculative=False,
                    max_copies_cap=6,
                ),
                random_source=RandomSource(seed=seed + rep),
            )
            result = sim.run()
            samples.append(result.jobs[0].duration)
        samples.sort()
        median = samples[len(samples) // 2]
        raw.append((norm, median))
    best = min(v for _, v in raw)
    return [(norm, v / best) for norm, v in raw]


def knee_position(curve: Sequence[Tuple[float, float]]) -> float:
    """Locate the knee: the first x at which the curve has entered its
    plateau (within 10% of the remaining drop to the final value)."""
    if len(curve) < 3:
        raise ValueError("need at least 3 points")
    initial = curve[0][1]
    final = min(v for _, v in curve)
    threshold = final + 0.10 * max(initial - final, 1e-9)
    for x, v in curve:
        if v <= threshold:
            return x
    return curve[-1][0]


# --------------------------------------------------------------------------
# Figures 5a/5b: probes and refusals vs the centralized scheduler
# --------------------------------------------------------------------------

@dataclass
class DecentralizationRow:
    """One point of Fig. 5a/5b: ratio of decentralized to centralized
    mean job duration."""

    parameter: float
    utilization: float
    system: str
    ratio: float


def _workload(
    profile_name: str,
    num_jobs: int,
    utilization: float,
    total_slots: int,
    **kwargs,
) -> WorkloadParams:
    return WorkloadParams(
        profile=profile_name,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
        **kwargs,
    )


def fig5a_probe_count(
    probe_ratios: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> List[DecentralizationRow]:
    """Ratio of decentralized Hopper (and Sparrow) to centralized Hopper
    as the probe count d varies (Fig. 5a)."""
    specs: List[RunSpec] = []
    for utilization in utilizations:
        workload = _workload(
            "spark-facebook", num_jobs, utilization, total_slots
        )
        specs.append(RunSpec("centralized", "hopper", workload))
        specs.extend(
            RunSpec(
                "decentralized",
                "hopper",
                workload,
                knobs={"probe_ratio": ratio},
            )
            for ratio in probe_ratios
        )
        specs.append(
            RunSpec(
                "decentralized",
                "sparrow",
                workload,
                knobs={"probe_ratio": 2.0},
            )
        )
    results = evaluate(specs, runner)
    rows: List[DecentralizationRow] = []
    group = len(probe_ratios) + 2
    for i, utilization in enumerate(utilizations):
        reference = results[i * group].mean_job_duration
        for j, ratio in enumerate(probe_ratios):
            rows.append(
                DecentralizationRow(
                    parameter=ratio,
                    utilization=utilization,
                    system="hopper",
                    ratio=results[i * group + 1 + j].mean_job_duration
                    / reference,
                )
            )
        rows.append(
            DecentralizationRow(
                parameter=2.0,
                utilization=utilization,
                system="sparrow",
                ratio=results[(i + 1) * group - 1].mean_job_duration
                / reference,
            )
        )
    return rows


def fig5b_refusal_count(
    refusal_counts: Sequence[int] = (0, 1, 2, 3, 5, 8),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> List[DecentralizationRow]:
    """Ratio vs centralized as the refusal threshold varies (Fig. 5b)."""
    specs: List[RunSpec] = []
    for utilization in utilizations:
        workload = _workload(
            "spark-facebook", num_jobs, utilization, total_slots
        )
        specs.append(RunSpec("centralized", "hopper", workload))
        specs.extend(
            RunSpec(
                "decentralized",
                "hopper",
                workload,
                knobs={"refusal_threshold": refusals},
            )
            for refusals in refusal_counts
        )
    results = evaluate(specs, runner)
    rows: List[DecentralizationRow] = []
    group = len(refusal_counts) + 1
    for i, utilization in enumerate(utilizations):
        reference = results[i * group].mean_job_duration
        for j, refusals in enumerate(refusal_counts):
            rows.append(
                DecentralizationRow(
                    parameter=float(refusals),
                    utilization=utilization,
                    system="hopper",
                    ratio=results[i * group + 1 + j].mean_job_duration
                    / reference,
                )
            )
    return rows


# --------------------------------------------------------------------------
# Figure 6: decentralized gains vs utilization (Facebook & Bing)
# --------------------------------------------------------------------------

@dataclass
class UtilizationGainRow:
    utilization: float
    vs_sparrow: float
    vs_sparrow_srpt: float


def fig6_utilization_gains(
    profile_name: str = "facebook",
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> List[UtilizationGainRow]:
    """Reduction in average job duration of decentralized Hopper vs
    Sparrow and Sparrow-SRPT across utilizations (Fig. 6a/6b)."""
    profile = (
        SPARK_FACEBOOK_PROFILE if profile_name == "facebook" else SPARK_BING_PROFILE
    )
    systems = ("hopper", "sparrow", "sparrow-srpt")
    specs = [
        RunSpec(
            "decentralized",
            system,
            _workload(profile.name, num_jobs, utilization, total_slots),
        )
        for utilization in utilizations
        for system in systems
    ]
    results = evaluate(specs, runner)
    rows: List[UtilizationGainRow] = []
    for i, utilization in enumerate(utilizations):
        hopper, sparrow, srpt = results[i * 3 : i * 3 + 3]
        rows.append(
            UtilizationGainRow(
                utilization=utilization,
                vs_sparrow=mean_reduction_percent(sparrow, hopper),
                vs_sparrow_srpt=mean_reduction_percent(srpt, hopper),
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 7: gains by job-size bin
# --------------------------------------------------------------------------

def fig7_job_bins(
    profile_name: str = "facebook",
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """Per-bin reduction vs Sparrow-SRPT (Fig. 7); keys are bin labels."""
    profile = (
        SPARK_FACEBOOK_PROFILE if profile_name == "facebook" else SPARK_BING_PROFILE
    )
    workload = _workload(profile.name, num_jobs, utilization, total_slots)
    hopper, srpt = evaluate(
        [
            RunSpec("decentralized", "hopper", workload),
            RunSpec("decentralized", "sparrow-srpt", workload),
        ],
        runner,
    )
    by_bin = reduction_by_bin(srpt, hopper)
    out = {bin_label(i): gain for i, gain in sorted(by_bin.items())}
    out["overall"] = mean_reduction_percent(srpt, hopper)
    return out


# --------------------------------------------------------------------------
# Figure 8a: CDF of gains; Figure 8b: gains vs DAG length
# --------------------------------------------------------------------------

def fig8a_gain_cdf(
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """CDF of per-job gains vs Sparrow-SRPT plus summary percentiles."""
    workload = _workload(
        "spark-facebook", num_jobs, utilization, total_slots
    )
    hopper, srpt = evaluate(
        [
            RunSpec("decentralized", "hopper", workload),
            RunSpec("decentralized", "sparrow-srpt", workload),
        ],
        runner,
    )
    cdf = gain_cdf(srpt, hopper)
    gains = [g for g, _ in cdf]
    return {
        "cdf": cdf,
        "p10": percentile(gains, 0.10),
        "p50": percentile(gains, 0.50),
        "p90": percentile(gains, 0.90),
        "mean": sum(gains) / len(gains) if gains else 0.0,
    }


def fig8b_dag_length(
    utilization: float = 0.6,
    num_jobs: int = 220,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[int, float]:
    """Reduction vs Sparrow-SRPT grouped by DAG length (Fig. 8b)."""
    workload = _workload(
        "facebook",  # full DAG mix
        num_jobs,
        utilization,
        total_slots,
        max_phase_tasks=120,
    )
    hopper, srpt = evaluate(
        [
            RunSpec("decentralized", "hopper", workload),
            RunSpec("decentralized", "sparrow-srpt", workload),
        ],
        runner,
    )
    return reduction_by_dag_length(srpt, hopper)


# --------------------------------------------------------------------------
# Figure 9: gains under different speculation algorithms
# --------------------------------------------------------------------------

def fig9_speculation_algorithms(
    algorithms: Sequence[str] = ("late", "mantri", "grass"),
    utilization: float = 0.6,
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Overall and per-bin gains of Hopper vs Sparrow-SRPT, pairing both
    systems with each speculation algorithm (Fig. 9)."""
    workload = _workload(
        "spark-facebook", num_jobs, utilization, total_slots
    )
    specs = [
        RunSpec("decentralized", system, workload, speculation=algorithm)
        for algorithm in algorithms
        for system in ("hopper", "sparrow-srpt")
    ]
    results = evaluate(specs, runner)
    out: Dict[str, Dict[str, float]] = {}
    for i, algorithm in enumerate(algorithms):
        hopper, srpt = results[i * 2 : i * 2 + 2]
        per_bin = {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        }
        per_bin["overall"] = mean_reduction_percent(srpt, hopper)
        out[algorithm] = per_bin
    return out


# --------------------------------------------------------------------------
# Figure 10: fairness knob epsilon
# --------------------------------------------------------------------------

@dataclass
class FairnessRow:
    epsilon: float
    gain_vs_srpt: float
    fraction_slowed: float
    mean_slowdown: float
    worst_slowdown: float


def fig10_fairness(
    epsilons: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> List[FairnessRow]:
    """Gains and slowdown-vs-fair as epsilon varies (Fig. 10a/b/c).

    The slowdown reference is Hopper at epsilon=0 (perfectly fair floors),
    the paper's "perfectly fair allocation"."""
    workload = _workload(
        "spark-facebook", num_jobs, utilization, total_slots
    )
    specs = [
        RunSpec("decentralized", "sparrow-srpt", workload),
        RunSpec(
            "decentralized", "hopper", workload, knobs={"epsilon": 0.0}
        ),
    ]
    specs.extend(
        RunSpec(
            "decentralized", "hopper", workload, knobs={"epsilon": epsilon}
        )
        for epsilon in epsilons
    )
    results = evaluate(specs, runner)
    srpt, fair_reference = results[0], results[1]
    rows: List[FairnessRow] = []
    for epsilon, result in zip(epsilons, results[2:]):
        fraction, mean_slow, worst = slowdown_stats(fair_reference, result)
        rows.append(
            FairnessRow(
                epsilon=epsilon,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                fraction_slowed=fraction,
                mean_slowdown=mean_slow,
                worst_slowdown=worst,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 11: probe ratio sweep
# --------------------------------------------------------------------------

def fig11_probe_ratio(
    probe_ratios: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
    runner: Optional[SweepRunner] = None,
) -> Dict[float, Dict[float, float]]:
    """Hopper's gain vs Sparrow-SRPT as the probe ratio varies
    (Fig. 11); keyed [utilization][probe_ratio] -> reduction %."""
    specs: List[RunSpec] = []
    for utilization in utilizations:
        workload = _workload(
            "spark-facebook", num_jobs, utilization, total_slots
        )
        specs.append(RunSpec("decentralized", "sparrow-srpt", workload))
        specs.extend(
            RunSpec(
                "decentralized",
                "hopper",
                workload,
                knobs={"probe_ratio": ratio},
            )
            for ratio in probe_ratios
        )
    results = evaluate(specs, runner)
    out: Dict[float, Dict[float, float]] = {}
    group = len(probe_ratios) + 1
    for i, utilization in enumerate(utilizations):
        srpt = results[i * group]
        out[utilization] = {
            ratio: mean_reduction_percent(
                srpt, results[i * group + 1 + j]
            )
            for j, ratio in enumerate(probe_ratios)
        }
    return out


# --------------------------------------------------------------------------
# Figure 12: centralized Hopper vs SRPT
# --------------------------------------------------------------------------

def fig12_centralized(
    profile_name: str = "facebook",
    utilization: float = 0.7,
    num_jobs: int = 200,
    total_slots: int = 200,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Centralized Hopper vs centralized SRPT+best-effort-LATE: overall,
    per-bin, per-DAG-length (Fig. 12a/12b).

    The "Spark-like" variant (small interactive jobs) shows modestly
    higher gains than "Hadoop-like", mirroring the paper's observation.
    """
    profile = FACEBOOK_PROFILE if profile_name == "facebook" else BING_PROFILE
    workload = _workload(
        profile.name,
        num_jobs,
        utilization,
        total_slots,
        max_phase_tasks=300,
    )
    hopper, srpt = evaluate(
        [
            RunSpec("centralized", "hopper", workload),
            RunSpec("centralized", "srpt", workload),
        ],
        runner,
    )
    return {
        "overall": mean_reduction_percent(srpt, hopper),
        "by_bin": {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        },
        "by_dag_length": reduction_by_dag_length(srpt, hopper),
    }


# --------------------------------------------------------------------------
# Figure 13: locality allowance k
# --------------------------------------------------------------------------

@dataclass
class LocalityRow:
    k_percent: float
    gain_vs_srpt: float
    locality_fraction: float


def fig13_locality(
    k_values: Sequence[float] = (0.0, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 200,
    runner: Optional[SweepRunner] = None,
) -> List[LocalityRow]:
    """Centralized Hopper with data locality: gains and fraction of
    data-local tasks as the allowance k varies (Fig. 13)."""
    workload = _workload(
        "facebook",
        num_jobs,
        utilization,
        total_slots,
        max_phase_tasks=200,
        locality_machines=total_slots // 4,
    )
    specs = [
        RunSpec(
            "centralized",
            "srpt",
            workload,
            knobs={"with_locality": True},
        )
    ]
    specs.extend(
        RunSpec(
            "centralized",
            "hopper",
            workload,
            knobs={"with_locality": True, "locality_k_percent": k},
        )
        for k in k_values
    )
    results = evaluate(specs, runner)
    srpt = results[0]
    rows: List[LocalityRow] = []
    for k, result in zip(k_values, results[1:]):
        rows.append(
            LocalityRow(
                k_percent=k,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                locality_fraction=result.data_locality_fraction,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Headline: §1 / §7 aggregate gains
# --------------------------------------------------------------------------

def headline_gains(
    num_jobs: int = 150,
    total_slots: int = 400,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, float]:
    """The paper's headline numbers: decentralized Hopper vs the best
    decentralized baseline, and centralized Hopper vs centralized SRPT."""
    decentralized_wl = _workload("spark-facebook", num_jobs, 0.6, total_slots)
    centralized_wl = _workload(
        "facebook", num_jobs, 0.7, total_slots // 2, max_phase_tasks=300
    )
    hopper_d, srpt_d, hopper_c, srpt_c = evaluate(
        [
            RunSpec("decentralized", "hopper", decentralized_wl),
            RunSpec("decentralized", "sparrow-srpt", decentralized_wl),
            RunSpec("centralized", "hopper", centralized_wl),
            RunSpec("centralized", "srpt", centralized_wl),
        ],
        runner,
    )
    return {
        "decentralized_vs_sparrow_srpt": mean_reduction_percent(
            srpt_d, hopper_d
        ),
        "centralized_vs_srpt": mean_reduction_percent(srpt_c, hopper_c),
    }
