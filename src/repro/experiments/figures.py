"""Per-figure experiment entry points (see DESIGN.md §4 for the index).

Each function regenerates one paper figure/table at laptop scale and
returns plain data (lists of rows / dicts) that the benchmarks print and
assert shape properties on. Parameters default to sizes that run in
seconds; pass larger values to approach the paper's scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.centralized.config import CentralizedConfig, SpeculationMode
from repro.cluster.cluster import Cluster
from repro.centralized.policies import HopperPolicy, SRPTPolicy
from repro.centralized.simulator import CentralizedSimulator
from repro.core.virtual_size import threshold_multiplier
from repro.experiments.harness import (
    WorkloadSpec,
    build_trace,
    default_straggler_model,
    run_centralized,
    run_decentralized,
)
from repro.metrics.analysis import (
    gain_cdf,
    mean_reduction_percent,
    percentile,
    reduction_by_bin,
    reduction_by_dag_length,
    slowdown_stats,
)
from repro.metrics.collector import SimulationResult
from repro.simulation.rng import RandomSource
from repro.speculation import make_speculation_policy
from repro.stragglers.model import ParetoRedrawStragglerModel
from repro.workload.generator import (
    BING_PROFILE,
    FACEBOOK_PROFILE,
    SPARK_BING_PROFILE,
    SPARK_FACEBOOK_PROFILE,
    bin_label,
)
from repro.workload.job import make_single_phase_job
from repro.workload.traces import Trace


# --------------------------------------------------------------------------
# Figure 3: the sharp threshold in the value of extra slots
# --------------------------------------------------------------------------

def fig3_threshold(
    beta: float = 1.4,
    num_tasks: int = 200,
    normalized_slots: Sequence[float] = (
        0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5,
    ),
    repetitions: int = 30,
    seed: int = 11,
) -> List[Tuple[float, float]]:
    """Single-job completion time vs normalized slot count.

    Returns (slots / num_tasks, median completion normalized by the best
    point). The knee should sit near ``2 / beta`` (the red line in
    Fig. 3). LATE is run uncapped so that the job can actually exploit
    slots beyond one-per-task — the question the figure asks is how much
    that exploitation is worth.
    """
    from repro.workload.distributions import ParetoDistribution

    duration_dist = ParetoDistribution(shape=beta, scale=1.0)
    raw: List[Tuple[float, float]] = []
    for norm in normalized_slots:
        slots = max(1, int(round(norm * num_tasks)))
        samples: List[float] = []
        for rep in range(repetitions):
            source = RandomSource(seed=seed + 1000 * rep)
            rng = source.child("fig3").rng
            sizes = [duration_dist.sample(rng) for _ in range(num_tasks)]
            job = make_single_phase_job(0, 0.0, sizes)
            trace = Trace(jobs=[job])
            cluster = Cluster(num_machines=slots, slots_per_machine=1)
            sim = CentralizedSimulator(
                cluster=cluster,
                policy=HopperPolicy(epsilon=1.0),
                speculation=lambda: make_speculation_policy(
                    "late",
                    detect_after=0.25,
                    speculative_cap_fraction=1.0,
                    slow_task_pct=1.0,
                    max_copies=6,
                ),
                trace=trace.fresh_copy(),
                straggler_model=ParetoRedrawStragglerModel(beta=beta),
                config=CentralizedConfig(
                    learn_beta=False,
                    default_beta=beta,
                    epsilon=1.0,
                    speculation_check_interval=0.25,
                    preempt_speculative=False,
                    max_copies_cap=6,
                ),
                random_source=RandomSource(seed=seed + rep),
            )
            result = sim.run()
            samples.append(result.jobs[0].duration)
        samples.sort()
        median = samples[len(samples) // 2]
        raw.append((norm, median))
    best = min(v for _, v in raw)
    return [(norm, v / best) for norm, v in raw]


def knee_position(curve: Sequence[Tuple[float, float]]) -> float:
    """Locate the knee: the first x at which the curve has entered its
    plateau (within 10% of the remaining drop to the final value)."""
    if len(curve) < 3:
        raise ValueError("need at least 3 points")
    initial = curve[0][1]
    final = min(v for _, v in curve)
    threshold = final + 0.10 * max(initial - final, 1e-9)
    for x, v in curve:
        if v <= threshold:
            return x
    return curve[-1][0]


# --------------------------------------------------------------------------
# Figures 5a/5b: probes and refusals vs the centralized scheduler
# --------------------------------------------------------------------------

@dataclass
class DecentralizationRow:
    """One point of Fig. 5a/5b: ratio of decentralized to centralized
    mean job duration."""

    parameter: float
    utilization: float
    system: str
    ratio: float


def _centralized_reference(spec: WorkloadSpec, trace: Trace) -> float:
    result = run_centralized(trace, "hopper", spec)
    return result.mean_job_duration


def fig5a_probe_count(
    probe_ratios: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[DecentralizationRow]:
    """Ratio of decentralized Hopper (and Sparrow) to centralized Hopper
    as the probe count d varies (Fig. 5a)."""
    rows: List[DecentralizationRow] = []
    for utilization in utilizations:
        spec = WorkloadSpec(
            profile=SPARK_FACEBOOK_PROFILE,
            num_jobs=num_jobs,
            utilization=utilization,
            total_slots=total_slots,
        )
        trace = build_trace(spec)
        reference = _centralized_reference(spec, trace)
        for ratio in probe_ratios:
            result = run_decentralized(
                trace, "hopper", spec, probe_ratio=ratio
            )
            rows.append(
                DecentralizationRow(
                    parameter=ratio,
                    utilization=utilization,
                    system="hopper",
                    ratio=result.mean_job_duration / reference,
                )
            )
        sparrow = run_decentralized(trace, "sparrow", spec, probe_ratio=2.0)
        rows.append(
            DecentralizationRow(
                parameter=2.0,
                utilization=utilization,
                system="sparrow",
                ratio=sparrow.mean_job_duration / reference,
            )
        )
    return rows


def fig5b_refusal_count(
    refusal_counts: Sequence[int] = (0, 1, 2, 3, 5, 8),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> List[DecentralizationRow]:
    """Ratio vs centralized as the refusal threshold varies (Fig. 5b)."""
    rows: List[DecentralizationRow] = []
    for utilization in utilizations:
        spec = WorkloadSpec(
            profile=SPARK_FACEBOOK_PROFILE,
            num_jobs=num_jobs,
            utilization=utilization,
            total_slots=total_slots,
        )
        trace = build_trace(spec)
        reference = _centralized_reference(spec, trace)
        for refusals in refusal_counts:
            result = run_decentralized(
                trace, "hopper", spec, refusal_threshold=refusals
            )
            rows.append(
                DecentralizationRow(
                    parameter=float(refusals),
                    utilization=utilization,
                    system="hopper",
                    ratio=result.mean_job_duration / reference,
                )
            )
    return rows


# --------------------------------------------------------------------------
# Figure 6: decentralized gains vs utilization (Facebook & Bing)
# --------------------------------------------------------------------------

@dataclass
class UtilizationGainRow:
    utilization: float
    vs_sparrow: float
    vs_sparrow_srpt: float


def fig6_utilization_gains(
    profile_name: str = "facebook",
    utilizations: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[UtilizationGainRow]:
    """Reduction in average job duration of decentralized Hopper vs
    Sparrow and Sparrow-SRPT across utilizations (Fig. 6a/6b)."""
    profile = (
        SPARK_FACEBOOK_PROFILE if profile_name == "facebook" else SPARK_BING_PROFILE
    )
    rows: List[UtilizationGainRow] = []
    for utilization in utilizations:
        spec = WorkloadSpec(
            profile=profile,
            num_jobs=num_jobs,
            utilization=utilization,
            total_slots=total_slots,
        )
        trace = build_trace(spec)
        hopper = run_decentralized(trace, "hopper", spec)
        sparrow = run_decentralized(trace, "sparrow", spec)
        srpt = run_decentralized(trace, "sparrow-srpt", spec)
        rows.append(
            UtilizationGainRow(
                utilization=utilization,
                vs_sparrow=mean_reduction_percent(sparrow, hopper),
                vs_sparrow_srpt=mean_reduction_percent(srpt, hopper),
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 7: gains by job-size bin
# --------------------------------------------------------------------------

def fig7_job_bins(
    profile_name: str = "facebook",
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
) -> Dict[str, float]:
    """Per-bin reduction vs Sparrow-SRPT (Fig. 7); keys are bin labels."""
    profile = (
        SPARK_FACEBOOK_PROFILE if profile_name == "facebook" else SPARK_BING_PROFILE
    )
    spec = WorkloadSpec(
        profile=profile,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
    )
    trace = build_trace(spec)
    hopper = run_decentralized(trace, "hopper", spec)
    srpt = run_decentralized(trace, "sparrow-srpt", spec)
    by_bin = reduction_by_bin(srpt, hopper)
    out = {bin_label(i): gain for i, gain in sorted(by_bin.items())}
    out["overall"] = mean_reduction_percent(srpt, hopper)
    return out


# --------------------------------------------------------------------------
# Figure 8a: CDF of gains; Figure 8b: gains vs DAG length
# --------------------------------------------------------------------------

def fig8a_gain_cdf(
    utilization: float = 0.6,
    num_jobs: int = 200,
    total_slots: int = 400,
) -> Dict[str, object]:
    """CDF of per-job gains vs Sparrow-SRPT plus summary percentiles."""
    spec = WorkloadSpec(
        profile=SPARK_FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
    )
    trace = build_trace(spec)
    hopper = run_decentralized(trace, "hopper", spec)
    srpt = run_decentralized(trace, "sparrow-srpt", spec)
    cdf = gain_cdf(srpt, hopper)
    gains = [g for g, _ in cdf]
    return {
        "cdf": cdf,
        "p10": percentile(gains, 0.10),
        "p50": percentile(gains, 0.50),
        "p90": percentile(gains, 0.90),
        "mean": sum(gains) / len(gains) if gains else 0.0,
    }


def fig8b_dag_length(
    utilization: float = 0.6,
    num_jobs: int = 220,
    total_slots: int = 400,
) -> Dict[int, float]:
    """Reduction vs Sparrow-SRPT grouped by DAG length (Fig. 8b)."""
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,  # full DAG mix
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
        max_phase_tasks=120,
    )
    trace = build_trace(spec)
    hopper = run_decentralized(trace, "hopper", spec)
    srpt = run_decentralized(trace, "sparrow-srpt", spec)
    return reduction_by_dag_length(srpt, hopper)


# --------------------------------------------------------------------------
# Figure 9: gains under different speculation algorithms
# --------------------------------------------------------------------------

def fig9_speculation_algorithms(
    algorithms: Sequence[str] = ("late", "mantri", "grass"),
    utilization: float = 0.6,
    num_jobs: int = 150,
    total_slots: int = 400,
) -> Dict[str, Dict[str, float]]:
    """Overall and per-bin gains of Hopper vs Sparrow-SRPT, pairing both
    systems with each speculation algorithm (Fig. 9)."""
    spec = WorkloadSpec(
        profile=SPARK_FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
    )
    trace = build_trace(spec)
    out: Dict[str, Dict[str, float]] = {}
    for algorithm in algorithms:
        hopper = run_decentralized(trace, "hopper", spec, speculation=algorithm)
        srpt = run_decentralized(
            trace, "sparrow-srpt", spec, speculation=algorithm
        )
        per_bin = {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        }
        per_bin["overall"] = mean_reduction_percent(srpt, hopper)
        out[algorithm] = per_bin
    return out


# --------------------------------------------------------------------------
# Figure 10: fairness knob epsilon
# --------------------------------------------------------------------------

@dataclass
class FairnessRow:
    epsilon: float
    gain_vs_srpt: float
    fraction_slowed: float
    mean_slowdown: float
    worst_slowdown: float


def fig10_fairness(
    epsilons: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 400,
) -> List[FairnessRow]:
    """Gains and slowdown-vs-fair as epsilon varies (Fig. 10a/b/c).

    The slowdown reference is Hopper at epsilon=0 (perfectly fair floors),
    the paper's "perfectly fair allocation"."""
    spec = WorkloadSpec(
        profile=SPARK_FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
    )
    trace = build_trace(spec)
    srpt = run_decentralized(trace, "sparrow-srpt", spec)
    fair_reference = run_decentralized(trace, "hopper", spec, epsilon=0.0)
    rows: List[FairnessRow] = []
    for epsilon in epsilons:
        result = run_decentralized(trace, "hopper", spec, epsilon=epsilon)
        fraction, mean_slow, worst = slowdown_stats(fair_reference, result)
        rows.append(
            FairnessRow(
                epsilon=epsilon,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                fraction_slowed=fraction,
                mean_slowdown=mean_slow,
                worst_slowdown=worst,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 11: probe ratio sweep
# --------------------------------------------------------------------------

def fig11_probe_ratio(
    probe_ratios: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    utilizations: Sequence[float] = (0.6, 0.8),
    num_jobs: int = 120,
    total_slots: int = 300,
) -> Dict[float, Dict[float, float]]:
    """Hopper's gain vs Sparrow-SRPT as the probe ratio varies
    (Fig. 11); keyed [utilization][probe_ratio] -> reduction %."""
    out: Dict[float, Dict[float, float]] = {}
    for utilization in utilizations:
        spec = WorkloadSpec(
            profile=SPARK_FACEBOOK_PROFILE,
            num_jobs=num_jobs,
            utilization=utilization,
            total_slots=total_slots,
        )
        trace = build_trace(spec)
        srpt = run_decentralized(trace, "sparrow-srpt", spec)
        out[utilization] = {}
        for ratio in probe_ratios:
            result = run_decentralized(
                trace, "hopper", spec, probe_ratio=ratio
            )
            out[utilization][ratio] = mean_reduction_percent(srpt, result)
    return out


# --------------------------------------------------------------------------
# Figure 12: centralized Hopper vs SRPT
# --------------------------------------------------------------------------

def fig12_centralized(
    profile_name: str = "facebook",
    utilization: float = 0.7,
    num_jobs: int = 200,
    total_slots: int = 200,
) -> Dict[str, object]:
    """Centralized Hopper vs centralized SRPT+best-effort-LATE: overall,
    per-bin, per-DAG-length (Fig. 12a/12b).

    The "Spark-like" variant (small interactive jobs) shows modestly
    higher gains than "Hadoop-like", mirroring the paper's observation.
    """
    profile = FACEBOOK_PROFILE if profile_name == "facebook" else BING_PROFILE
    spec = WorkloadSpec(
        profile=profile,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
        max_phase_tasks=300,
    )
    trace = build_trace(spec)
    hopper = run_centralized(trace, "hopper", spec)
    srpt = run_centralized(trace, "srpt", spec)
    return {
        "overall": mean_reduction_percent(srpt, hopper),
        "by_bin": {
            bin_label(i): gain
            for i, gain in sorted(reduction_by_bin(srpt, hopper).items())
        },
        "by_dag_length": reduction_by_dag_length(srpt, hopper),
    }


# --------------------------------------------------------------------------
# Figure 13: locality allowance k
# --------------------------------------------------------------------------

@dataclass
class LocalityRow:
    k_percent: float
    gain_vs_srpt: float
    locality_fraction: float


def fig13_locality(
    k_values: Sequence[float] = (0.0, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0),
    utilization: float = 0.7,
    num_jobs: int = 150,
    total_slots: int = 200,
) -> List[LocalityRow]:
    """Centralized Hopper with data locality: gains and fraction of
    data-local tasks as the allowance k varies (Fig. 13)."""
    spec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=utilization,
        total_slots=total_slots,
        max_phase_tasks=200,
        locality_machines=total_slots // 4,
    )
    trace = build_trace(spec)
    srpt = run_centralized(trace, "srpt", spec, with_locality=True)
    rows: List[LocalityRow] = []
    for k in k_values:
        result = run_centralized(
            trace, "hopper", spec, with_locality=True, locality_k_percent=k
        )
        rows.append(
            LocalityRow(
                k_percent=k,
                gain_vs_srpt=mean_reduction_percent(srpt, result),
                locality_fraction=result.data_locality_fraction,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Headline: §1 / §7 aggregate gains
# --------------------------------------------------------------------------

def headline_gains(
    num_jobs: int = 150,
    total_slots: int = 400,
) -> Dict[str, float]:
    """The paper's headline numbers: decentralized Hopper vs the best
    decentralized baseline, and centralized Hopper vs centralized SRPT."""
    spec = WorkloadSpec(
        profile=SPARK_FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=0.6,
        total_slots=total_slots,
    )
    trace = build_trace(spec)
    hopper_d = run_decentralized(trace, "hopper", spec)
    srpt_d = run_decentralized(trace, "sparrow-srpt", spec)

    cspec = WorkloadSpec(
        profile=FACEBOOK_PROFILE,
        num_jobs=num_jobs,
        utilization=0.7,
        total_slots=total_slots // 2,
        max_phase_tasks=300,
    )
    ctrace = build_trace(cspec)
    hopper_c = run_centralized(ctrace, "hopper", cspec)
    srpt_c = run_centralized(ctrace, "srpt", cspec)
    return {
        "decentralized_vs_sparrow_srpt": mean_reduction_percent(
            srpt_d, hopper_d
        ),
        "centralized_vs_srpt": mean_reduction_percent(srpt_c, hopper_c),
    }
