"""The ``blacklist_policy`` study: does strike-driven mid-run eviction
close the §2.2 loop?

The ``blacklist`` study (PR 4) showed *that* machine-correlated
stragglers behave differently from the paper's i.i.d. redraw model; this
study asks whether the strike-driven :class:`~repro.cluster.policy.
StrikeBlacklistPolicy` actually helps once it is allowed to evict flaky
machines while the run is in flight. The grid crosses:

* **eviction**: ``none`` (the substrate stays idle) vs ``strikes``
  (k slow completions within a sliding window evict, capped);
* **straggler model**: ``machine-correlated`` (a persistent flaky
  fraction — the regime blacklisting is *for*) vs ``pareto-redraw``
  (the paper's i.i.d. model, where eviction can only misfire);
* **plane**: the centralized dispatch/reschedule path and the
  decentralized probe/launch path, both on Hopper.

Expected shape: under ``machine-correlated``, eviction drains the flaky
fraction's busy-slot share and mean job completion time improves; under
``pareto-redraw`` there is no machine signal to find, so the policy
should stay close to neutral (strikes scatter and rarely cluster within
the window) — the cap bounds the damage when it does misfire::

    python -m repro study blacklist_policy --quick
    python -m repro study blacklist_policy --seeds 1,2,3

The study's golden digest was pinned in ``tests/test_golden_results.py``
the day it was born, and the eviction-on / eviction-off comparison under
machine-correlated stragglers is asserted behaviourally there too.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study

#: (spec kind, system) pairs — one per simulator plane.
DEFAULT_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("centralized", "hopper"),
    ("decentralized", "hopper"),
)

#: Strike knobs the eviction cells run with. Spelled out explicitly in
#: the spec knobs (never defaulted) so the cells' content digests are
#: stable even if the policy's own defaults move later.
STRIKE_KNOBS: Dict[str, object] = {
    "blacklist_policy": "strikes",
    "strike_threshold": 3,
    "strike_window": 60.0,
    "eviction_cap": 0.15,
}


def _blacklist_policy_cells(
    straggler_models: Sequence[str] = ("machine-correlated", "pareto-redraw"),
    policies: Sequence[str] = ("none", "strikes"),
    systems: Sequence[Tuple[str, str]] = DEFAULT_SYSTEMS,
    num_jobs: int = 120,
    utilization: float = 0.6,
    total_slots: int = 400,
) -> List[Cell]:
    cells: List[Cell] = []
    for model in straggler_models:
        for policy in policies:
            for kind, system in systems:

                def make_spec(
                    seed: int,
                    model: str = model,
                    policy: str = policy,
                    kind: str = kind,
                    system: str = system,
                ) -> RunSpec:
                    knobs: Dict[str, object] = {"straggler_model": model}
                    if policy != "none":
                        knobs.update(STRIKE_KNOBS)
                        knobs["blacklist_policy"] = policy
                    return RunSpec(
                        kind,
                        system,
                        WorkloadParams(
                            profile="facebook",
                            num_jobs=num_jobs,
                            utilization=utilization,
                            total_slots=total_slots,
                            seed=seed,
                        ),
                        knobs=knobs,
                    )

                cells.append(
                    cell(
                        make_spec,
                        straggler_model=model,
                        eviction=policy,
                        kind=kind,
                        system=system,
                    )
                )
    return cells


BLACKLIST_POLICY_STUDY = register_study(
    Study(
        name="blacklist_policy",
        description=(
            "strike-driven mid-run eviction on/off x machine-correlated/"
            "pareto-redraw stragglers, on both simulator planes"
        ),
        build_cells=_blacklist_policy_cells,
        quick=dict(num_jobs=30, total_slots=200),
    )
)
