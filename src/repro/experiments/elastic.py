"""The ``elastic`` study: mid-run cluster resizes across all planes.

The paper's experiments hold cluster size fixed for a run; production
clusters do not — autoscalers add and remove machines while jobs are in
flight. This study measures what that churn costs each scheduler plane.
The grid crosses:

* **resize amplitude** — the fraction of the cluster a scheduled
  autoscaler removes mid-run and later adds back (``0`` labels the
  static baseline, spelled as an explicit ``autoscaler="none"`` knob —
  pinned byte-identical to the bare spec by a differential test in
  ``tests/test_golden_results.py``);
* **plane** — centralized per-arrival, decentralized probe-based, and
  batch rounds, same policy (Hopper), same trace, same run seed. Each
  plane absorbs the resize differently: centralized re-dispatches at
  the resize instant, batch folds it into the next round, decentralized
  shrinks the probe pool and requeues orphaned copies;
* **speculation** — LATE vs none, because losing machines mid-run also
  kills speculative copies, compounding the straggler cost.

The cell metric is mean JCT: capacity churn is an additive per-job
delay (requeue + wait for the grow-back), so the mean is the honest
headline. Quick mode trims the workload; its golden digest is pinned in
``tests/test_golden_results.py`` from day one.

Run it like any registered study::

    python -m repro study elastic --quick
    python -m repro study elastic --seeds 1,2,3
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.metrics.collector import SimulationResult
from repro.sweep import RunSpec, WorkloadParams
from repro.sweep.study import Cell, Study, cell, register_study

#: (kind, machines-per-slot divisor) per plane. The centralized family
#: packs 4 slots per machine (the harness default); a decentralized
#: worker is one machine.
_PLANE_SLOTS_PER_MACHINE: Dict[str, int] = {
    "centralized": 4,
    "batch": 4,
    "decentralized": 1,
}


def mean_jct(result: SimulationResult) -> float:
    """Mean job completion time — resize churn is additive per job, so
    the mean is the amplitude sweep's honest headline."""
    return result.mean_job_duration


def _resize_knobs(kind: str, amplitude: float, total_slots: int) -> dict:
    """Autoscaler knobs for one cell: shrink by ``amplitude`` of the
    cluster at t=15, grow it back at t=45 (amplitude 0 is the explicit
    static baseline)."""
    if amplitude <= 0.0:
        return {"autoscaler": "none"}
    machines = max(1, total_slots // _PLANE_SLOTS_PER_MACHINE[kind])
    delta = max(1, int(amplitude * machines))
    return {
        "autoscaler": "schedule",
        "resize_schedule": f"15:-{delta},45:+{delta}",
    }


def _elastic_cells(
    amplitudes: Sequence[float] = (0.0, 0.25),
    planes: Sequence[Tuple[str, str]] = (
        ("centralized", "hopper"),
        ("decentralized", "hopper"),
        ("batch", "hopper"),
    ),
    speculation: Sequence[str] = ("late", "none"),
    num_jobs: int = 100,
    utilization: float = 0.7,
    total_slots: int = 400,
) -> List[Cell]:
    cells: List[Cell] = []
    for amplitude in amplitudes:
        for kind, system in planes:
            for spec_policy in speculation:
                def make_spec(
                    seed: int,
                    amplitude: float = amplitude,
                    kind: str = kind,
                    system: str = system,
                    spec_policy: str = spec_policy,
                ) -> RunSpec:
                    knobs = _resize_knobs(kind, amplitude, total_slots)
                    if kind == "batch":
                        # Spelled explicitly so the batch cells stay
                        # pinned even if the plane default ever moves.
                        knobs["round_interval"] = 0.5
                    return RunSpec(
                        kind,
                        system,
                        WorkloadParams(
                            profile="spark-facebook",
                            num_jobs=num_jobs,
                            utilization=utilization,
                            total_slots=total_slots,
                            seed=seed,
                        ),
                        speculation=spec_policy,
                        knobs=knobs,
                    )

                cells.append(
                    cell(
                        make_spec,
                        kind=kind,
                        amplitude=amplitude,
                        speculation=spec_policy,
                    )
                )
    return cells


ELASTIC_STUDY = register_study(
    Study(
        name="elastic",
        description=(
            "mid-run cluster resizes: amplitude x plane x speculation "
            "under a scheduled autoscaler; metric is mean JCT"
        ),
        build_cells=_elastic_cells,
        metric=mean_jct,
        metric_name="mean JCT",
        quick=dict(
            num_jobs=24,
            total_slots=120,
            speculation=("late",),
        ),
    )
)
