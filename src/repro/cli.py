"""``python -m repro`` — list and run paper figures, studies and sweeps.

Subcommands
-----------
``list``
    Show every registered figure, study, system, policy, straggler
    model and workload profile (everything resolves through
    :mod:`repro.registry`).
``run FIG [FIG ...]``
    Regenerate figures and print paper-vs-measured tables. ``--quick``
    uses scaled-down parameters (CI smoke scale); ``--cache`` makes
    repeated invocations incremental via ``.repro-cache/``.
``study NAME [NAME ...]``
    Run registered studies with seed replication (``--seeds 1,2,3``)
    and print per-cell mean / p95 / bootstrap-CI tables.
``sweep``
    Run an ad-hoc (system x utilization x seed) grid and print mean job
    durations — the building block for custom scale-out studies.
``cache``
    Inspect (``stats``), prune (``prune [--older-than DAYS]``) or clear
    the on-disk result cache.
``workload preview PROFILE --rho 0.9``
    Print the calibrated open-loop arrival rate for a profile at a
    target utilization plus a per-window arrival-count table for every
    registered arrival process (the serving regime's traffic shapes).
``trace capture / trace export``
    Record a structured JSONL event trace of one instrumented run, and
    convert it to Chrome ``chrome://tracing`` / Perfetto JSON.
``bench trajectory``
    Render the events/sec trajectory of the committed ``BENCH_*.json``
    files across the repo's git history.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import registry
from repro.metrics.tables import print_table
from repro.sweep import (
    ResultCache,
    RunSpec,
    SweepRunner,
    WorkloadParams,
)


# --------------------------------------------------------------------------
# Figure registry
# --------------------------------------------------------------------------

@dataclass
class FigureDef:
    """One CLI-runnable paper figure."""

    name: str
    description: str
    func: Callable[..., Any]
    printer: Callable[[Any], None]
    quick: Dict[str, Any]
    takes_runner: bool = True


def _print_fig3(curve) -> None:
    from repro.experiments.figures import knee_position

    print_table(
        "Fig 3: completion vs normalized slots (paper: knee near 2/beta)",
        ("slots/tasks", "norm. completion"),
        curve,
    )
    print(f"knee position: {knee_position(curve):.2f}")


def _print_fig5(rows) -> None:
    print_table(
        "Fig 5: ratio vs centralized Hopper "
        "(paper: within ~15% at d>=4 / 2-3 refusals)",
        ("system", "parameter", "utilization", "ratio vs centralized"),
        [(r.system, r.parameter, r.utilization, r.ratio) for r in rows],
    )


def _print_fig6(rows) -> None:
    print_table(
        "Fig 6: reduction (%) in avg job duration "
        "(paper: 50-60% at 60% util falling to <20% at >=80%)",
        ("utilization", "vs Sparrow", "vs Sparrow-SRPT"),
        [(r.utilization, r.vs_sparrow, r.vs_sparrow_srpt) for r in rows],
    )


def _print_bin_dict(title: str):
    def printer(out: Dict[str, float]) -> None:
        print_table(title, ("job bin", "reduction %"), sorted(out.items()))

    return printer


def _print_fig8a(out) -> None:
    print_table(
        "Fig 8a: per-job gain distribution vs Sparrow-SRPT "
        "(paper: ~70% of jobs improve)",
        ("percentile", "gain %"),
        [
            ("p10", out["p10"]),
            ("p50", out["p50"]),
            ("p90", out["p90"]),
            ("mean", out["mean"]),
        ],
    )


def _print_fig8b(out) -> None:
    print_table(
        "Fig 8b: reduction vs Sparrow-SRPT by DAG length",
        ("dag length", "reduction %"),
        sorted(out.items()),
    )


def _print_fig9(out) -> None:
    print_table(
        "Fig 9: gains vs Sparrow-SRPT per speculation algorithm "
        "(paper: gains hold across LATE/Mantri/GRASS)",
        ("algorithm", "bin", "reduction %"),
        [
            (algorithm, bin_name, gain)
            for algorithm, bins in out.items()
            for bin_name, gain in bins.items()
        ],
    )


def _print_fig10(rows) -> None:
    print_table(
        "Fig 10: fairness knob epsilon "
        "(paper: eps~0.1 keeps most gains, few jobs slowed)",
        ("epsilon", "gain vs SRPT %", "frac slowed", "mean slowdown",
         "worst slowdown"),
        [
            (r.epsilon, r.gain_vs_srpt, r.fraction_slowed, r.mean_slowdown,
             r.worst_slowdown)
            for r in rows
        ],
    )


def _print_fig11(out) -> None:
    print_table(
        "Fig 11: Hopper's gain vs Sparrow-SRPT by probe ratio "
        "(paper: gains increase up to ratio ~4)",
        ("utilization", "probe ratio", "reduction %"),
        [
            (utilization, ratio, gain)
            for utilization, inner in out.items()
            for ratio, gain in sorted(inner.items())
        ],
    )


def _print_fig12(out) -> None:
    print_table(
        "Fig 12: centralized Hopper vs SRPT (paper: up to ~50%)",
        ("slice", "reduction %"),
        [("overall", out["overall"])]
        + [(f"bin {k}", v) for k, v in out["by_bin"].items()]
        + [
            (f"dag length {k}", v)
            for k, v in sorted(out["by_dag_length"].items())
        ],
    )


def _print_fig13(rows) -> None:
    print_table(
        "Fig 13: locality allowance k "
        "(paper: small k buys locality without losing gains)",
        ("k %", "gain vs SRPT %", "locality fraction"),
        [(r.k_percent, r.gain_vs_srpt, r.locality_fraction) for r in rows],
    )


def _print_headline(out) -> None:
    print_table(
        "Headline gains (paper: decentralized up to 66%, centralized up "
        "to 50%)",
        ("comparison", "reduction %"),
        [
            ("decentralized Hopper vs Sparrow-SRPT",
             out["decentralized_vs_sparrow_srpt"]),
            ("centralized Hopper vs SRPT", out["centralized_vs_srpt"]),
        ],
    )


def _registry() -> Dict[str, FigureDef]:
    from repro.experiments import figures

    defs = [
        FigureDef(
            "fig3",
            "Sharp threshold in the value of extra slots (knee at 2/beta)",
            figures.fig3_threshold,
            _print_fig3,
            quick=dict(
                num_tasks=50,
                normalized_slots=(0.6, 1.0, 1.4, 1.8, 2.2),
                repetitions=3,
            ),
        ),
        FigureDef(
            "fig5a",
            "Decentralized-to-centralized ratio vs probe count d",
            figures.fig5a_probe_count,
            _print_fig5,
            quick=dict(
                probe_ratios=(2.0, 4.0),
                utilizations=(0.7,),
                num_jobs=25,
                total_slots=80,
            ),
        ),
        FigureDef(
            "fig5b",
            "Decentralized-to-centralized ratio vs refusal threshold",
            figures.fig5b_refusal_count,
            _print_fig5,
            quick=dict(
                refusal_counts=(0, 2),
                utilizations=(0.7,),
                num_jobs=25,
                total_slots=80,
            ),
        ),
        FigureDef(
            "fig6",
            "Decentralized Hopper gains vs utilization (Facebook profile)",
            figures.fig6_utilization_gains,
            _print_fig6,
            quick=dict(utilizations=(0.7,), num_jobs=30, total_slots=100),
        ),
        FigureDef(
            "fig7",
            "Gains by job-size bin vs Sparrow-SRPT",
            figures.fig7_job_bins,
            _print_bin_dict(
                "Fig 7: reduction vs Sparrow-SRPT by job-size bin "
                "(paper: all bins gain; small jobs most)"
            ),
            quick=dict(num_jobs=40, total_slots=100),
        ),
        FigureDef(
            "fig8a",
            "CDF of per-job gains vs Sparrow-SRPT",
            figures.fig8a_gain_cdf,
            _print_fig8a,
            quick=dict(num_jobs=40, total_slots=100),
        ),
        FigureDef(
            "fig8b",
            "Gains vs Sparrow-SRPT by DAG length",
            figures.fig8b_dag_length,
            _print_fig8b,
            quick=dict(num_jobs=40, total_slots=100),
        ),
        FigureDef(
            "fig9",
            "Gains under LATE / Mantri / GRASS speculation",
            figures.fig9_speculation_algorithms,
            _print_fig9,
            quick=dict(num_jobs=30, total_slots=100),
        ),
        FigureDef(
            "fig10",
            "Fairness knob epsilon: gains vs slowdowns",
            figures.fig10_fairness,
            _print_fig10,
            quick=dict(epsilons=(0.0, 0.1), num_jobs=25, total_slots=80),
        ),
        FigureDef(
            "fig11",
            "Gain vs Sparrow-SRPT across probe ratios",
            figures.fig11_probe_ratio,
            _print_fig11,
            quick=dict(
                probe_ratios=(2.0, 4.0),
                utilizations=(0.7,),
                num_jobs=30,
                total_slots=100,
            ),
        ),
        FigureDef(
            "fig12",
            "Centralized Hopper vs centralized SRPT",
            figures.fig12_centralized,
            _print_fig12,
            quick=dict(num_jobs=30, total_slots=60),
        ),
        FigureDef(
            "fig13",
            "Data locality allowance k",
            figures.fig13_locality,
            _print_fig13,
            quick=dict(k_values=(0.0, 5.0), num_jobs=25, total_slots=60),
        ),
        FigureDef(
            "headline",
            "The paper's headline aggregate gains (Sections 1 and 7)",
            figures.headline_gains,
            _print_headline,
            quick=dict(num_jobs=40, total_slots=120),
        ),
    ]
    return {d.name: d for d in defs}


# --------------------------------------------------------------------------
# Subcommands
# --------------------------------------------------------------------------

def _build_runner(args: argparse.Namespace) -> SweepRunner:
    cache = None
    if getattr(args, "cache", False):
        cache = ResultCache(root=getattr(args, "cache_dir", None))
    parallel: Optional[bool] = None
    if getattr(args, "serial", False):
        parallel = False
    elif getattr(args, "jobs", None):
        parallel = True
    return SweepRunner(
        max_workers=getattr(args, "jobs", None),
        cache=cache,
        parallel=parallel,
    )


def _print_stats(runner: SweepRunner) -> None:
    stats = runner.stats
    if stats.requested:
        print(
            f"\n[sweep] {stats.requested} runs requested: "
            f"{stats.cache_hits} cache hit(s), {stats.deduplicated} "
            f"deduplicated, {stats.executed} executed"
            f"{' in parallel' if stats.parallel else ''}"
        )


def _print_entries(title: str, entries) -> None:
    print(f"\n{title}:")
    width = max((len(entry.name) for entry in entries), default=0)
    for entry in entries:
        print(f"  {entry.name.ljust(width)}  {entry.description}")


def _cmd_list(args: argparse.Namespace) -> int:
    figure_registry = _registry()
    width = max(len(name) for name in figure_registry)
    print("Available figures (python -m repro run <name> [...]):\n")
    for name, definition in figure_registry.items():
        print(f"  {name.ljust(width)}  {definition.description}")

    _print_entries(
        "Studies (python -m repro study <name> --seeds 1,2,3)",
        registry.studies().entries(),
    )
    print("\nSystems (python -m repro sweep --kind <plane> ...):")
    systems = registry.SYSTEMS.entries()
    plane_width = max((len(e.plane) for e in systems), default=0)
    name_width = max((len(e.name) for e in systems), default=0)
    for entry in systems:
        print(
            f"  {entry.plane.ljust(plane_width)}  "
            f"{entry.name.ljust(name_width)}  {entry.description}"
        )
    for kind_entry in registry.SPEC_KINDS.entries():
        kind = kind_entry.factory
        if kind.knobs:
            knobs = ", ".join(
                f"{knob.name}:{registry.type_label(knob.type)}"
                for knob in kind.knobs.values()
            )
            print(f"\n{kind.name} knobs ({kind.description}):\n  {knobs}")
    _print_entries(
        "Speculation policies", registry.SPECULATION_POLICIES.entries()
    )
    _print_entries("Straggler models", registry.STRAGGLER_MODELS.entries())
    _print_entries(
        "Blacklist policies (mid-run machine eviction)",
        registry.BLACKLIST_POLICIES.entries(),
    )
    _print_entries("Workload profiles", registry.WORKLOAD_PROFILES.entries())
    print(
        "\nAll figures and studies accept --quick (CI smoke scale), "
        "--serial / --jobs N, and --cache / --cache-dir."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registry = _registry()
    unknown = [name for name in args.figures if name not in registry]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"try: python -m repro list",
            file=sys.stderr,
        )
        return 2
    runner = _build_runner(args)
    for name in args.figures:
        definition = registry[name]
        kwargs: Dict[str, Any] = dict(definition.quick) if args.quick else {}
        if definition.takes_runner:
            kwargs["runner"] = runner
        definition.printer(definition.func(**kwargs))
    _print_stats(runner)
    return 0


def _parse_floats(text: str) -> List[float]:
    return [float(v) for v in text.split(",") if v]


def _parse_ints(text: str) -> List[int]:
    return [int(v) for v in text.split(",") if v]


def _cmd_sweep(args: argparse.Namespace) -> int:
    valid = registry.spec_kind(args.kind).systems.names()
    systems = [s for s in args.systems.split(",") if s]
    unknown = [s for s in systems if s not in valid]
    if unknown:
        print(
            f"unknown {args.kind} system(s): {', '.join(unknown)}; "
            f"expected one of {', '.join(valid)}",
            file=sys.stderr,
        )
        return 2
    try:
        specs = [
            RunSpec(
                args.kind,
                system,
                WorkloadParams(
                    profile=args.profile,
                    num_jobs=args.num_jobs,
                    utilization=utilization,
                    total_slots=args.total_slots,
                    seed=seed,
                ),
                speculation=args.speculation,
            )
            for system in systems
            for utilization in _parse_floats(args.utilizations)
            for seed in _parse_ints(args.seeds)
        ]
    except ValueError as exc:
        print(f"invalid sweep parameters: {exc}", file=sys.stderr)
        return 2
    runner = _build_runner(args)
    results = runner.run(specs)
    print_table(
        f"Sweep: {args.kind} systems on {args.profile!r} "
        f"({args.num_jobs} jobs, {args.total_slots} slots)",
        ("system", "utilization", "seed", "jobs", "mean duration"),
        [
            (
                spec.system,
                spec.workload.utilization,
                spec.workload.seed,
                result.num_jobs,
                result.mean_job_duration,
            )
            for spec, result in zip(specs, results)
        ],
    )
    _print_stats(runner)
    return 0


def _print_profile(name: str, result) -> None:
    """Per-phase wall-time table aggregated over a study's runs.

    Only instrumented runs contribute (cache hits recorded without
    ``REPRO_OBS`` carry no report); with none, say so rather than
    printing an empty table.
    """
    from repro.obs import aggregate_counters, aggregate_timers

    reports = [
        r.obs
        for per_cell in result.results
        for r in per_cell
        if r.obs is not None
    ]
    timers = aggregate_timers(reports)
    if not timers:
        print(
            f"\n[profile] study {name}: no phase timings recorded "
            f"(runs may have been served from a cache written without "
            f"REPRO_OBS)"
        )
        return
    total = sum(cell["seconds"] for cell in timers.values())
    print_table(
        f"Profile {name}: wall seconds by phase "
        f"({len(reports)} instrumented run(s))",
        ("phase", "calls", "seconds", "share %"),
        [
            (
                phase,
                cell["calls"],
                round(cell["seconds"], 6),
                round(100.0 * cell["seconds"] / total, 1) if total else 0.0,
            )
            for phase, cell in timers.items()
        ],
    )
    counters = aggregate_counters(reports)
    if counters:
        print_table(
            f"Profile {name}: event counters",
            ("counter", "count"),
            sorted(counters.items()),
        )


def _cmd_study(args: argparse.Namespace) -> int:
    study_registry = registry.studies()
    unknown = [name for name in args.studies if name not in study_registry]
    if unknown:
        print(
            f"unknown study(s): {', '.join(unknown)}; "
            f"try: python -m repro list",
            file=sys.stderr,
        )
        return 2
    seeds: Optional[List[int]] = (
        _parse_ints(args.seeds) if args.seeds else None
    )
    if seeds is not None and not seeds:
        print("--seeds needs at least one integer", file=sys.stderr)
        return 2
    runner = _build_runner(args)
    ci_pct = round(args.confidence * 100)
    profile = getattr(args, "profile", False)
    saved_obs = None
    if profile:
        # The sweep layer enables observability out-of-band (REPRO_OBS
        # propagates into pool workers) so RunSpec digests stay pinned.
        from repro.obs import OBS_ENV

        saved_obs = os.environ.get(OBS_ENV)
        os.environ[OBS_ENV] = "1"
    try:
        for name in args.studies:
            study = study_registry.get(name).factory
            result = study.run(seeds=seeds, runner=runner, quick=args.quick)
            rows = result.aggregate(
                metric=study.metric,
                confidence=args.confidence,
                resamples=args.resamples,
            )
            axes = [key for key, _ in rows[0].labels]
            print_table(
                f"Study {name}: {study.description} "
                f"[{study.metric_name}; "
                f"seeds {','.join(str(s) for s in result.seeds)}]",
                tuple(axes)
                + ("n", "mean", "p95", f"ci{ci_pct:g} lo", f"ci{ci_pct:g} hi"),
                [
                    tuple(value for _, value in row.labels)
                    + (row.n, row.mean, row.p95, row.ci_lower, row.ci_upper)
                    for row in rows
                ],
            )
            if profile:
                _print_profile(name, result)
    finally:
        if profile:
            from repro.obs import OBS_ENV

            if saved_obs is None:
                os.environ.pop(OBS_ENV, None)
            else:
                os.environ[OBS_ENV] = saved_obs
    _print_stats(runner)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(root=args.cache_dir)
    if args.clear and args.action != "info":
        print(
            f"--clear cannot be combined with 'cache {args.action}'; "
            f"use plain 'cache --clear'",
            file=sys.stderr,
        )
        return 2
    if args.older_than is not None and args.action != "prune":
        print(
            "--older-than only applies to 'cache prune'",
            file=sys.stderr,
        )
        return 2
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    if args.action == "stats":
        rows = cache.stats()
        print_table(
            f"Cache stats for {cache.root}",
            ("version", "entries", "bytes", "current"),
            [
                (
                    row["version_tag"],
                    row["entries"],
                    row["bytes"],
                    "*" if row["current"] else "",
                )
                for row in rows
            ],
        )
        total_entries = sum(row["entries"] for row in rows)
        total_bytes = sum(row["bytes"] for row in rows)
        print(f"\ntotal: {total_entries} entr(ies), {total_bytes} bytes")
        return 0
    if args.action == "prune":
        removed, freed = cache.prune(older_than_days=args.older_than)
        scope = (
            "stale version namespaces"
            if args.older_than is None
            else f"stale namespaces + entries older than "
            f"{args.older_than:g} day(s)"
        )
        print(
            f"pruned {removed} entr(ies), freed {freed} bytes "
            f"({scope}) from {cache.root}"
        )
        return 0
    print(f"cache directory : {cache.directory}")
    print(f"entries         : {cache.entry_count()}")
    print(f"size            : {cache.size_bytes()} bytes")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Obs, Tracer

    if args.action == "export":
        try:
            records = Tracer.read_jsonl(args.input)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.input!r}: {exc}", file=sys.stderr)
            return 2
        doc = Tracer.chrome_trace(records)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
        print(
            f"wrote {len(doc['traceEvents'])} trace event(s) to "
            f"{args.output} (open in chrome://tracing or "
            f"https://ui.perfetto.dev)"
        )
        return 0

    # capture: one instrumented run, trace written as JSONL.
    valid = registry.spec_kind(args.kind).systems.names()
    if args.system not in valid:
        print(
            f"unknown {args.kind} system {args.system!r}; "
            f"expected one of {', '.join(valid)}",
            file=sys.stderr,
        )
        return 2
    from repro.experiments.harness import (
        WorkloadSpec,
        build_trace,
        run_simulator,
    )
    from repro.workload.generator import profile_by_name

    try:
        spec = WorkloadSpec(
            profile=profile_by_name(args.profile),
            num_jobs=args.num_jobs,
            utilization=args.utilization,
            total_slots=args.total_slots,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"invalid capture parameters: {exc}", file=sys.stderr)
        return 2
    obs = Obs(trace=True)
    result = run_simulator(
        args.system,
        build_trace(spec),
        spec,
        plane=args.kind,
        speculation=args.speculation,
        run_seed=args.run_seed,
        obs=obs,
    )
    count = obs.tracer.write_jsonl(args.output)
    print(
        f"wrote {count} trace record(s) to {args.output} "
        f"({args.kind} {args.system}, {result.num_jobs} jobs, "
        f"{obs.tracer.open_spans()} span(s) left open)"
    )
    print(
        f"next: python -m repro trace export {args.output} "
        f"--output trace.chrome.json"
    )
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.serving.arrivals import (
        ARRIVAL_PROCESSES,
        calibrate_arrival_rate,
        estimate_mean_job_work,
        make_arrival_process,
    )
    from repro.simulation.rng import RandomSource
    from repro.workload.generator import TraceGenerator, profile_by_name

    try:
        profile = profile_by_name(args.profile)
    except (KeyError, registry.UnknownEntryError):
        print(
            f"unknown workload profile {args.profile!r}; "
            f"try: python -m repro list",
            file=sys.stderr,
        )
        return 2
    if not 0.0 < args.rho < 1.0:
        print("--rho must be in (0, 1)", file=sys.stderr)
        return 2
    if args.windows < 1 or args.window <= 0:
        print("--windows must be >= 1 and --window positive", file=sys.stderr)
        return 2

    source = RandomSource(seed=args.seed)
    generator = TraceGenerator(profile, random_source=source)
    mean_work = estimate_mean_job_work(generator)
    rate = calibrate_arrival_rate(generator, args.total_slots, args.rho)
    print(f"profile              : {args.profile}")
    print(f"total slots          : {args.total_slots}")
    print(f"mean job work E[W]   : {mean_work:.2f} slot-seconds (probe)")
    print(f"target rho           : {args.rho:g}")
    print(
        f"calibrated rate      : {rate:.4f} jobs/s "
        f"(lambda = rho * slots / E[W])"
    )
    print(
        f"expected utilization : {args.rho:.0%} of {args.total_slots} slots"
    )
    print(f"expected per window  : {rate * args.window:.1f} arrivals")

    # One seeded realization of every registered arrival process,
    # bucketed into the preview windows. Same rate, independent child
    # streams -- the table shows *shape* (burstiness, swing), not noise.
    names = ARRIVAL_PROCESSES.names()
    horizon = args.window * args.windows
    counts: Dict[str, List[int]] = {}
    for name in names:
        process = make_arrival_process(
            name, rate, source.child(f"preview-{name}").rng
        )
        per_window = [0] * args.windows
        now = 0.0
        while True:
            now += process.next_interarrival(now)
            if now >= horizon:
                break
            per_window[int(now // args.window)] += 1
        counts[name] = per_window
    rows: List[tuple] = [
        (f"[{i * args.window:g}, {(i + 1) * args.window:g})",)
        + tuple(counts[name][i] for name in names)
        for i in range(args.windows)
    ]
    rows.append(("total",) + tuple(sum(counts[name]) for name in names))
    print_table(
        f"Arrival counts per {args.window:g}s window "
        f"(rho={args.rho:g}, seed={args.seed})",
        ("window",) + tuple(names),
        rows,
    )
    return 0


def _cmd_plane(args: argparse.Namespace) -> int:
    try:
        entry = registry.SYSTEMS.get(args.system, plane=args.plane)
    except registry.RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"system      : {entry.name}")
    print(f"plane       : {entry.plane}")
    print(f"qualified   : {entry.qualified}")
    print(f"description : {entry.description}")
    try:
        kind = registry.spec_kind(entry.plane)
    except registry.UnknownEntryError:
        kind = None
    if kind is not None and kind.knobs:
        print(f"\nknobs ({kind.description}):")
        for knob in kind.knobs.values():
            print(
                f"  {knob.name:<18} {registry.type_label(knob.type):<7} "
                f"default={knob.default}"
            )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import trajectory as traj

    names = [name for name in args.names.split(",") if name]
    if not names:
        print("--names needs at least one benchmark name", file=sys.stderr)
        return 2
    try:
        histories = traj.report(names, repo_root=args.repo_root)
    except traj.TrajectoryError as exc:
        # Non-blocking by design: trajectory is a reporting aid, and CI
        # smokes must not fail on shallow clones or missing git.
        print(f"[trajectory] unavailable: {exc}", file=sys.stderr)
        return 0
    for name in names:
        entries = histories[name]
        if not entries:
            print(f"\nBENCH_{name}.json: no committed throughput history")
            continue
        print_table(
            f"BENCH_{name}.json: events/sec across commits",
            ("commit", "date", "subject", "events/sec", "delta"),
            traj.trajectory_rows(entries),
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(traj.format_markdown(histories))
            handle.write("\n")
        print(f"\nwrote markdown report to {args.output}")
    return 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serial",
        action="store_true",
        help="force in-process serial execution",
    )
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    parser.add_argument(
        "--jobs",
        "-j",
        type=positive_int,
        default=None,
        metavar="N",
        help="worker processes for the sweep pool (default: cpu count)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse/persist results in the on-disk cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hopper (SIGCOMM 2015) reproduction: regenerate paper figures "
            "and run custom sweeps with parallel, cached orchestration."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list available figures"
    )
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run figures and print paper-vs-measured tables"
    )
    run_parser.add_argument("figures", nargs="+", metavar="FIG")
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down parameters (seconds, for smoke tests)",
    )
    _add_runner_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    study_parser = subparsers.add_parser(
        "study",
        help=(
            "run registered studies with seed replication and print "
            "mean/p95/bootstrap-CI tables"
        ),
    )
    study_parser.add_argument("studies", nargs="+", metavar="STUDY")
    study_parser.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated seeds (default: the study's own seed list)",
    )
    study_parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down grid parameters (seconds, for smoke tests)",
    )
    study_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="bootstrap confidence level (default: 0.95)",
    )
    study_parser.add_argument(
        "--resamples",
        type=int,
        default=2000,
        metavar="N",
        help="bootstrap resamples (default: 2000)",
    )
    study_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run with REPRO_OBS=1 and print per-phase wall-time and "
            "counter tables after each study"
        ),
    )
    _add_runner_arguments(study_parser)
    study_parser.set_defaults(handler=_cmd_study)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an ad-hoc (system x utilization x seed) grid"
    )
    sweep_parser.add_argument(
        "--kind",
        choices=("centralized", "decentralized", "batch"),
        default="decentralized",
    )
    sweep_parser.add_argument(
        "--systems",
        default="hopper,sparrow-srpt",
        help="comma-separated systems (default: hopper,sparrow-srpt)",
    )
    sweep_parser.add_argument(
        "--profile",
        default="spark-facebook",
        help="workload profile name (default: spark-facebook)",
    )
    sweep_parser.add_argument(
        "--utilizations",
        default="0.6,0.8",
        help="comma-separated target utilizations (default: 0.6,0.8)",
    )
    sweep_parser.add_argument(
        "--seeds",
        default="42",
        help="comma-separated trace seeds (default: 42)",
    )
    sweep_parser.add_argument("--num-jobs", type=int, default=100)
    sweep_parser.add_argument("--total-slots", type=int, default=300)
    sweep_parser.add_argument(
        "--speculation",
        choices=("late", "mantri", "grass", "none"),
        default="late",
    )
    _add_runner_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, prune or clear the result cache"
    )
    cache_parser.add_argument(
        "action",
        nargs="?",
        choices=("info", "stats", "prune"),
        default="info",
        help=(
            "info: current-version summary (default); stats: per-version "
            "digest-count/bytes table; prune: drop stale entries"
        ),
    )
    cache_parser.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help=(
            "with prune: also drop current-version entries older than "
            "DAYS days"
        ),
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete all cached results"
    )
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    trace_parser = subparsers.add_parser(
        "trace",
        help="capture a structured event trace / export it for Perfetto",
    )
    trace_sub = trace_parser.add_subparsers(dest="action", required=True)
    capture_parser = trace_sub.add_parser(
        "capture",
        help="run one instrumented simulation and write a JSONL trace",
    )
    capture_parser.add_argument(
        "--kind",
        choices=("centralized", "decentralized", "batch"),
        default="decentralized",
    )
    capture_parser.add_argument(
        "--system",
        default="hopper",
        help="system / policy name for the chosen kind (default: hopper)",
    )
    capture_parser.add_argument(
        "--profile",
        default="spark-facebook",
        help="workload profile name (default: spark-facebook)",
    )
    capture_parser.add_argument("--num-jobs", type=int, default=50)
    capture_parser.add_argument("--total-slots", type=int, default=200)
    capture_parser.add_argument("--utilization", type=float, default=0.7)
    capture_parser.add_argument("--seed", type=int, default=42)
    capture_parser.add_argument("--run-seed", type=int, default=7)
    capture_parser.add_argument(
        "--speculation",
        choices=("late", "mantri", "grass", "none"),
        default="late",
    )
    capture_parser.add_argument(
        "--output",
        default="trace.jsonl",
        metavar="PATH",
        help="JSONL trace destination (default: trace.jsonl)",
    )
    capture_parser.set_defaults(handler=_cmd_trace)
    export_parser = trace_sub.add_parser(
        "export",
        help=(
            "convert a JSONL trace to Chrome chrome://tracing / Perfetto "
            "JSON"
        ),
    )
    export_parser.add_argument("input", metavar="TRACE.jsonl")
    export_parser.add_argument(
        "--output",
        default="trace.chrome.json",
        metavar="PATH",
        help="Chrome trace destination (default: trace.chrome.json)",
    )
    export_parser.set_defaults(handler=_cmd_trace)

    plane_parser = subparsers.add_parser(
        "plane", help="inspect the plane-tagged systems registry"
    )
    plane_sub = plane_parser.add_subparsers(dest="action", required=True)
    info_parser = plane_sub.add_parser(
        "info",
        help=(
            "resolve a system (bare or plane-qualified like batch/hopper) "
            "and print its plane, description and spec-kind knobs"
        ),
    )
    info_parser.add_argument(
        "system", help="system name, optionally qualified as plane/name"
    )
    info_parser.add_argument(
        "--plane",
        default=None,
        help="disambiguate a bare name registered on several planes",
    )
    info_parser.set_defaults(handler=_cmd_plane)

    workload_parser = subparsers.add_parser(
        "workload", help="workload / arrival-stream inspection helpers"
    )
    workload_sub = workload_parser.add_subparsers(dest="action", required=True)
    preview_parser = workload_sub.add_parser(
        "preview",
        help=(
            "print the calibrated open-loop arrival rate for a profile "
            "and a per-window arrival-count table for every registered "
            "arrival process"
        ),
    )
    preview_parser.add_argument("profile", metavar="PROFILE")
    preview_parser.add_argument(
        "--rho",
        type=float,
        default=0.9,
        help="target utilization in (0, 1) (default: 0.9)",
    )
    preview_parser.add_argument("--total-slots", type=int, default=400)
    preview_parser.add_argument("--seed", type=int, default=42)
    preview_parser.add_argument(
        "--windows",
        type=int,
        default=10,
        metavar="N",
        help="number of preview windows (default: 10)",
    )
    preview_parser.add_argument(
        "--window",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="window length in virtual seconds (default: 20)",
    )
    preview_parser.set_defaults(handler=_cmd_workload)

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark reporting helpers"
    )
    bench_sub = bench_parser.add_subparsers(dest="action", required=True)
    trajectory_parser = bench_sub.add_parser(
        "trajectory",
        help=(
            "render the events/sec trajectory of committed BENCH_*.json "
            "files across git history"
        ),
    )
    from repro.obs.trajectory import DEFAULT_BENCH_NAMES

    default_names = ",".join(DEFAULT_BENCH_NAMES)
    trajectory_parser.add_argument(
        "--names",
        default=default_names,
        metavar="N1,N2,...",
        help=f"comma-separated bench names (default: {default_names})",
    )
    trajectory_parser.add_argument(
        "--repo-root",
        default=".",
        metavar="DIR",
        help="git repository to read history from (default: .)",
    )
    trajectory_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write a Markdown report to PATH",
    )
    trajectory_parser.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
