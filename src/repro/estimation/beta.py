"""Online estimation of the Pareto tail index beta (§4.1, §7.2).

Hopper learns beta from completed task durations as the workload executes;
the paper reports the estimate's error falls below 5% after ~6% of jobs
complete. We use the standard Hill / MLE estimator for the Pareto shape:

    beta_hat = n / sum(ln(x_i / x_m))

over a sliding window of recent durations, clamped to a sane range so a
few early samples cannot destabilise the virtual-size computation.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional, Tuple


def fit_pareto_shape(
    durations: Iterable[float],
    scale: Optional[float] = None,
) -> float:
    """Maximum-likelihood Pareto shape from observed durations.

    Parameters
    ----------
    durations:
        Positive samples.
    scale:
        The Pareto scale x_m; defaults to the sample minimum.
    """
    data = [float(d) for d in durations if d > 0]
    if not data:
        raise ValueError("need at least one positive duration")
    xm = scale if scale is not None else min(data)
    if xm <= 0:
        raise ValueError("scale must be positive")
    log_sum = sum(math.log(d / xm) for d in data if d > xm)
    if log_sum <= 0:
        raise ValueError("samples carry no tail information (all <= scale)")
    n = sum(1 for d in data if d > xm)
    return n / log_sum


class OnlineBetaEstimator:
    """Sliding-window beta estimator with a prior and clamping.

    Until ``min_samples`` observations arrive, :attr:`beta` returns the
    prior ``default_beta``; afterwards it returns the windowed MLE clamped
    to ``clamp_range``.
    """

    def __init__(
        self,
        default_beta: float = 1.5,
        min_samples: int = 20,
        window: int = 5000,
        clamp_range: Tuple[float, float] = (1.05, 3.0),
        refresh_every: int = 50,
    ) -> None:
        if default_beta <= 0:
            raise ValueError("default_beta must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if window < min_samples:
            raise ValueError("window must be >= min_samples")
        lo, hi = clamp_range
        if not 0 < lo < hi:
            raise ValueError("invalid clamp_range")
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.default_beta = default_beta
        self.min_samples = min_samples
        self.clamp_range = clamp_range
        self.refresh_every = refresh_every
        self._samples: Deque[float] = deque(maxlen=window)
        self._observations = 0
        self._cached_beta: Optional[float] = None
        self._observations_at_fit = -1

    @property
    def num_observations(self) -> int:
        return self._observations

    def observe(self, duration: float) -> None:
        """Record one completed task duration."""
        if duration <= 0:
            return
        self._samples.append(float(duration))
        self._observations += 1

    @property
    def beta(self) -> float:
        """Current estimate (prior until warm, then clamped windowed MLE).

        The fit is refreshed at most every ``refresh_every`` observations;
        in between the cached value is returned (O(1))."""
        if len(self._samples) < self.min_samples:
            return self.default_beta
        stale = (
            self._cached_beta is None
            or self._observations - self._observations_at_fit
            >= self.refresh_every
        )
        if stale:
            try:
                estimate = fit_pareto_shape(self._samples)
                lo, hi = self.clamp_range
                self._cached_beta = min(hi, max(lo, estimate))
            except ValueError:
                self._cached_beta = self.default_beta
            self._observations_at_fit = self._observations
        return self._cached_beta

    def relative_error(self, true_beta: float) -> float:
        """|beta_hat - beta| / beta — used to reproduce the <=5% claim."""
        if true_beta <= 0:
            raise ValueError("true_beta must be positive")
        return abs(self.beta - true_beta) / true_beta
