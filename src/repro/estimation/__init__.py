"""Online estimation of workload parameters (beta, alpha)."""

from repro.estimation.beta import OnlineBetaEstimator, fit_pareto_shape
from repro.estimation.alpha import AlphaEstimator

__all__ = ["OnlineBetaEstimator", "fit_pareto_shape", "AlphaEstimator"]
