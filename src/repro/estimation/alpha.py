"""Estimating intermediate data sizes and the DAG factor alpha (§6.3).

Intermediate output sizes are unknown upfront; Hopper predicts them from
*recurring* jobs — periodic scripts whose outputs are similar run to run.
The estimator keeps a per-(job name, phase index) running mean of observed
phase output sizes and predicts the next run's outputs from it, falling
back to a neutral alpha of 1.0 for never-seen jobs. The paper reports 92%
average accuracy with this scheme.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.workload.job import Job


class AlphaEstimator:
    """Recurring-job history for intermediate data and alpha prediction.

    All state is **bounded for a bounded set of recurring job names**:
    observations fold into per-(name, phase) running sums, prediction
    accuracy into one running error sum, and the per-job alpha memo is
    dropped on job completion (see :meth:`drop_job`). An open-loop
    serving run can therefore stream jobs indefinitely without the
    estimator growing per job or per observation.
    """

    def __init__(self, network_rate: float = 1.0) -> None:
        if network_rate <= 0:
            raise ValueError("network_rate must be positive")
        self.network_rate = network_rate
        # (job name, phase index) -> (running total, count); the running
        # total accumulates in observation order, so total/count is the
        # exact float mean a stored history would produce.
        self._sums: Dict[Tuple[str, int], Tuple[float, int]] = {}
        # predict_alpha memo: job_id -> (finished tasks, history version,
        # alpha). Alpha is a pure function of the job's per-phase finish
        # counts (monotone, so their total identifies the state) and of
        # the recorded history (versioned below). Entries are evicted
        # when their job completes.
        self._alpha_cache: Dict[int, Tuple[int, int, float]] = {}
        self._history_version = 0
        # Accuracy accounting as a running (error sum, count) — the
        # per-prediction error list it replaces grew without bound
        # under sustained arrivals and was only ever read as a mean.
        self._error_sum = 0.0
        self._error_count = 0

    # -- recording -------------------------------------------------------------

    def observe_phase_output(
        self, job_name: str, phase_index: int, output_data: float
    ) -> None:
        """Record the actual intermediate output of a finished phase."""
        if not job_name:
            return
        if output_data < 0:
            raise ValueError("output_data must be non-negative")
        predicted = self.predict_phase_output(job_name, phase_index)
        if predicted is not None and output_data > 0:
            self._error_sum += abs(predicted - output_data) / output_data
            self._error_count += 1
        key = (job_name, phase_index)
        total, count = self._sums.get(key, (0.0, 0))
        self._sums[key] = (total + float(output_data), count + 1)
        self._history_version += 1

    def observe_job(self, job: Job) -> None:
        """Record all phases of a completed job."""
        for phase in job.phases:
            if phase.output_data > 0:
                self.observe_phase_output(job.name, phase.index, phase.output_data)

    @property
    def history_version(self) -> int:
        """Monotone counter bumped on every recorded observation.

        A cached ``predict_alpha`` result is valid exactly while this and
        the job's finished-task count are unchanged; the incremental
        allocation engine uses it as its alpha epoch."""
        return self._history_version

    # -- prediction --------------------------------------------------------

    def predict_phase_output(
        self, job_name: str, phase_index: int
    ) -> Optional[float]:
        """Predicted output size, or None with no history."""
        entry = self._sums.get((job_name, phase_index))
        if entry is None:
            return None
        total, count = entry
        return total / count

    def predict_alpha(self, job: Job) -> float:
        """Alpha using *predicted* intermediate sizes.

        Computes remaining downstream communication over remaining
        upstream work for the job's running front, exactly like
        ``Job.alpha`` but substituting historical predictions for actual
        output sizes. Returns 1.0 when there is no applicable history.
        """
        finished = 0
        for phase in job.phases:
            finished += phase._finished_count
        cached = self._alpha_cache.get(job.job_id)
        if (
            cached is not None
            and cached[0] == finished
            and cached[1] == self._history_version
        ):
            return cached[2]

        upstream_work = 0.0
        downstream_comm = 0.0
        saw_prediction = False
        for phase in job.current_phases():
            upstream_work += phase.remaining_work()
            predicted = self.predict_phase_output(job.name, phase.index)
            if predicted is None:
                continue
            remaining_fraction = (
                phase.remaining_tasks / phase.num_tasks if phase.num_tasks else 0.0
            )
            for child in job.downstream_of(phase):
                if not child.is_complete:
                    saw_prediction = True
                    downstream_comm += (
                        predicted * remaining_fraction / self.network_rate
                    )
        if not saw_prediction or upstream_work <= 0 or downstream_comm <= 0:
            alpha = 1.0
        else:
            alpha = downstream_comm / upstream_work
        self._alpha_cache[job.job_id] = (
            finished,
            self._history_version,
            alpha,
        )
        return alpha

    # -- completed-job teardown --------------------------------------------

    def drop_job(self, job_id: int) -> None:
        """Evict a completed job's alpha memo.

        Called by the copy ledger on job completion. Safe because a
        completed job is never passed to :meth:`predict_alpha` again;
        without it the memo grows one entry per job forever, which an
        open-loop serving run cannot afford. The per-*name* running
        sums stay — they are the recurring-job history itself.
        """
        self._alpha_cache.pop(job_id, None)

    # -- accuracy reporting ------------------------------------------------

    @property
    def accuracy(self) -> float:
        """Mean prediction accuracy (1 - relative error), as reported in
        §6.3 (92% in the paper's workloads). 0.0 before any repeat runs."""
        if not self._error_count:
            return 0.0
        return max(0.0, 1.0 - self._error_sum / self._error_count)

    @property
    def num_predictions_scored(self) -> int:
        return self._error_count
