"""Machine blacklisting (§2.2).

Production clusters blacklist machines with faulty disks or memory and
never schedule on them. Blacklisting alone does not remove stragglers —
that is the paper's starting observation — but the mechanism still exists
in the substrate, and the straggler model can be configured to make some
machines persistently bad so that blacklisting them is meaningful.
"""

from __future__ import annotations

from typing import Dict, Set


class Blacklist:
    """Tracks blacklisted machines, with optional strike-based policy."""

    def __init__(self, strikes_to_blacklist: int = 3) -> None:
        if strikes_to_blacklist <= 0:
            raise ValueError("strikes_to_blacklist must be positive")
        self.strikes_to_blacklist = strikes_to_blacklist
        self._strikes: Dict[int, int] = {}
        self._blacklisted: Set[int] = set()

    @property
    def blacklisted_machines(self) -> Set[int]:
        return set(self._blacklisted)

    def is_blacklisted(self, machine_id: int) -> bool:
        return machine_id in self._blacklisted

    def add(self, machine_id: int) -> None:
        """Blacklist unconditionally."""
        self._blacklisted.add(machine_id)

    def remove(self, machine_id: int) -> None:
        self._blacklisted.discard(machine_id)
        self._strikes.pop(machine_id, None)

    def record_strike(self, machine_id: int) -> bool:
        """Record a fault observation; returns True if the machine just
        crossed the blacklisting threshold."""
        if machine_id in self._blacklisted:
            return False
        count = self._strikes.get(machine_id, 0) + 1
        self._strikes[machine_id] = count
        if count >= self.strikes_to_blacklist:
            self._blacklisted.add(machine_id)
            return True
        return False
