"""Machine blacklisting (§2.2).

Production clusters blacklist machines with faulty disks or memory and
never schedule on them. Blacklisting alone does not remove stragglers —
that is the paper's starting observation — but the mechanism still exists
in the substrate, and the straggler model can be configured to make some
machines persistently bad so that blacklisting them is meaningful.

Strikes can be counted two ways:

* **lifetime** (``strike_window=None``, the default): every strike ever
  recorded against a machine counts, matching the original substrate;
* **sliding window** (``strike_window=w``): only strikes recorded within
  the last ``w`` time units count, so a machine is blacklisted only when
  faults *cluster* in time — the evidence rule the strike-driven
  eviction policy (:mod:`repro.cluster.policy`) runs mid-simulation.

Removing a machine from the blacklist (reinstatement after probation)
clears its strike history in both modes: a reinstated machine starts
from a clean record.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set


class Blacklist:
    """Tracks blacklisted machines, with optional strike-based policy."""

    def __init__(
        self,
        strikes_to_blacklist: int = 3,
        strike_window: Optional[float] = None,
    ) -> None:
        if strikes_to_blacklist <= 0:
            raise ValueError("strikes_to_blacklist must be positive")
        if strike_window is not None and strike_window <= 0:
            raise ValueError("strike_window must be positive (or None)")
        self.strikes_to_blacklist = strikes_to_blacklist
        self.strike_window = strike_window
        self._strikes: Dict[int, int] = {}
        self._strike_times: Dict[int, Deque[float]] = {}
        self._blacklisted: Set[int] = set()
        #: Lifetime strike totals per machine. Unlike the active strike
        #: state, these survive reinstatement (``remove`` wipes the
        #: counting window, not the record) — they are diagnostics, not
        #: policy inputs, surfaced as ``SimulationResult.machine_strikes``.
        self.strike_totals: Dict[int, int] = {}

    @property
    def blacklisted_machines(self) -> Set[int]:
        return set(self._blacklisted)

    def is_blacklisted(self, machine_id: int) -> bool:
        return machine_id in self._blacklisted

    def add(self, machine_id: int) -> None:
        """Blacklist unconditionally."""
        self._blacklisted.add(machine_id)

    def remove(self, machine_id: int) -> None:
        """Reinstate a machine: un-blacklist it and wipe its strikes."""
        self._blacklisted.discard(machine_id)
        self._strikes.pop(machine_id, None)
        self._strike_times.pop(machine_id, None)

    def strike_count(self, machine_id: int, now: float = 0.0) -> int:
        """Strikes currently counting against ``machine_id``.

        In window mode, strikes older than ``now - strike_window`` have
        expired (a strike at time ``t`` counts while ``now - t`` is
        strictly less than the window).
        """
        if self.strike_window is None:
            return self._strikes.get(machine_id, 0)
        times = self._strike_times.get(machine_id)
        if not times:
            return 0
        cutoff = now - self.strike_window
        return sum(1 for t in times if t > cutoff)

    def record_strike(self, machine_id: int, now: float = 0.0) -> bool:
        """Record a fault observation at time ``now``; returns True if
        the machine just crossed the blacklisting threshold."""
        if machine_id in self._blacklisted:
            return False
        totals = self.strike_totals
        totals[machine_id] = totals.get(machine_id, 0) + 1
        if self.strike_window is None:
            count = self._strikes.get(machine_id, 0) + 1
            self._strikes[machine_id] = count
        else:
            times = self._strike_times.setdefault(machine_id, deque())
            cutoff = now - self.strike_window
            while times and times[0] <= cutoff:
                times.popleft()
            times.append(now)
            count = len(times)
        if count >= self.strikes_to_blacklist:
            self._blacklisted.add(machine_id)
            return True
        return False
