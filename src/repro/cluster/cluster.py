"""The cluster: a collection of machines with aggregate slot accounting.

Aggregate capacity (``total_slots``) and the set of machines with a free
slot are maintained *incrementally* — slot acquire/release updates an
O(log machines) :class:`~repro.cluster.index.ClusterIndex` instead of
every reader rescanning the machine list. Blacklist application and
reset are the only wholesale recomputations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cluster.blacklist import Blacklist
from repro.cluster.index import ClusterIndex
from repro.cluster.machine import Machine


class Cluster:
    """A set of machines; tracks aggregate free/busy slots.

    Parameters
    ----------
    num_machines:
        Number of machines (ignored if ``machines`` given).
    slots_per_machine:
        Slots on each machine.
    machines_per_rack:
        Rack assignment granularity (for locality experiments).
    machines:
        Pre-built machines, overriding the size parameters.
    """

    def __init__(
        self,
        num_machines: int = 0,
        slots_per_machine: int = 1,
        machines_per_rack: int = 20,
        machines: Optional[Iterable[Machine]] = None,
    ) -> None:
        if machines is not None:
            self.machines: List[Machine] = list(machines)
        else:
            if num_machines <= 0:
                raise ValueError("num_machines must be positive")
            self.machines = [
                Machine(
                    machine_id=i,
                    num_slots=slots_per_machine,
                    rack=i // machines_per_rack,
                )
                for i in range(num_machines)
            ]
        if not self.machines:
            raise ValueError("cluster must contain at least one machine")
        self._machines_per_rack = machines_per_rack
        self.blacklist = Blacklist()
        self._busy_count = 0
        self._total_slots = self._scan_total_slots()
        #: Incremental free-slot index (see repro.cluster.index).
        self.index = ClusterIndex(self.machines)

    def _scan_total_slots(self) -> int:
        return sum(
            m.num_slots
            for m in self.machines
            if not m.blacklisted and not m.retired
        )

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def total_slots(self) -> int:
        return self._total_slots

    @property
    def busy_slots(self) -> int:
        return self._busy_count

    @property
    def free_slots(self) -> int:
        return self._total_slots - self._busy_count

    def acquire_slot(self, machine_id: int) -> None:
        """Mark a slot busy on ``machine_id`` (O(1) aggregate tracking)."""
        machine = self.machines[machine_id]
        machine.acquire_slot()
        self._busy_count += 1
        if machine.busy_slots == machine.num_slots:
            self.index.set_machine(machine_id, False)

    def release_slot(self, machine_id: int) -> None:
        """Mark a slot free on ``machine_id``."""
        machine = self.machines[machine_id]
        machine.release_slot()
        self._busy_count -= 1
        self.index.refresh(machine)

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    # -- elastic membership (O(log machines), see repro.cluster.elastic) ----

    def add_machine(
        self,
        num_slots: Optional[int] = None,
        rack: Optional[int] = None,
    ) -> Machine:
        """Append one machine and delta-update the aggregates.

        Machine ids are append-only: a new machine always gets the next
        id, so per-id state elsewhere (straggler flaky sets, worker
        lists) stays valid. Unlike ``apply_blacklist`` this never
        rescans or rebuilds — totals and the Fenwick index update in
        O(log machines).
        """
        machine_id = len(self.machines)
        if num_slots is None:
            num_slots = self.machines[0].num_slots
        if rack is None:
            rack = machine_id // self._machines_per_rack
        machine = Machine(machine_id=machine_id, num_slots=num_slots, rack=rack)
        self.machines.append(machine)
        self._total_slots += num_slots
        self.index.append_machine(machine)
        return machine

    def remove_machine(self, machine_id: int) -> None:
        """Retire one machine and delta-update the aggregates.

        The machine object stays in place (ids are stable) but stops
        counting toward capacity and drops out of the free-slot index.
        Copies still running on it are the caller's problem — the plane
        simulators reuse their eviction kill→requeue paths.
        """
        machine = self.machines[machine_id]
        if machine.retired:
            raise ValueError(f"machine {machine_id} already retired")
        machine.retired = True
        if not machine.blacklisted:
            self._total_slots -= machine.num_slots
        self.index.set_machine(machine_id, False)

    def live_machine_count(self) -> int:
        """Machines contributing capacity (not retired, not blacklisted)."""
        return sum(
            1 for m in self.machines if not m.retired and not m.blacklisted
        )

    def machines_with_free_slots(self) -> List[Machine]:
        return [m for m in self.machines if m.has_free_slot]

    def utilization(self) -> float:
        total = self._total_slots
        return self.busy_slots / total if total else 0.0

    def apply_blacklist(self) -> None:
        """Propagate the blacklist onto machine flags (§2.2: clusters
        blacklist problematic machines and avoid scheduling on them)."""
        for machine in self.machines:
            machine.blacklisted = self.blacklist.is_blacklisted(machine.machine_id)
        self._total_slots = self._scan_total_slots()
        self.index.rebuild(self.machines)

    def reset(self) -> None:
        for machine in self.machines:
            machine.reset()
        self._busy_count = 0
        self._total_slots = self._scan_total_slots()
        self.index.rebuild(self.machines)
