"""Cluster substrate: machines, slots, racks, data placement, blacklists."""

from repro.cluster.machine import Machine
from repro.cluster.cluster import Cluster
from repro.cluster.datastore import DataStore
from repro.cluster.blacklist import Blacklist
from repro.cluster.index import ClusterIndex
from repro.cluster.policy import BlacklistPolicy, StrikeBlacklistPolicy
from repro.cluster.elastic import (
    AutoscalerPolicy,
    ElasticController,
    ReactiveAutoscaler,
    ScheduleAutoscaler,
)

__all__ = [
    "Machine",
    "Cluster",
    "DataStore",
    "Blacklist",
    "ClusterIndex",
    "BlacklistPolicy",
    "StrikeBlacklistPolicy",
    "AutoscalerPolicy",
    "ElasticController",
    "ReactiveAutoscaler",
    "ScheduleAutoscaler",
]
