"""Elastic clusters: autoscaler policies and mid-run resize events.

The paper's schedulers assume a fixed slot pool; production clusters do
not. This module makes capacity changes first-class: an
:class:`AutoscalerPolicy` decides *when* the cluster should grow or
shrink, and an :class:`ElasticController` turns those decisions into
``ADD_MACHINE`` / ``REMOVE_MACHINE`` engine events (cf. Firmament's
machine-add/remove event types) that each scheduler plane consumes
through two callbacks — the controller itself is plane-agnostic.

Policies (registered in ``repro.registry`` under ``AUTOSCALER_POLICIES``):

* ``none`` — resolves to ``None``; every existing run is byte-identical.
* ``schedule`` — a fixed list of ``(time, machine_delta)`` resizes, the
  deterministic workhorse for studies and benchmarks.
* ``reactive`` — utilization-threshold scaler sampled on a window
  cadence: grow ``step`` machines above ``upper``, shrink below
  ``lower``.

The planes apply resizes incrementally: ``Cluster.add_machine`` /
``remove_machine`` delta-update ``_total_slots`` and the Fenwick
:class:`~repro.cluster.index.ClusterIndex` in O(log machines) — no
wholesale rebuild on the resize path — and the
:class:`~repro.core.incremental.IncrementalAllocator` floors memo
invalidates through its existing ``(membership_version, total_slots)``
key with no new hooks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs import Obs

#: A resize instruction: (simulation time, machine count delta).
ResizeEvent = Tuple[float, int]


def parse_resize_schedule(text: str) -> Tuple[ResizeEvent, ...]:
    """Parse a ``"time:delta,time:delta"`` knob string.

    Example: ``"30:+8,90:-8"`` grows by 8 machines at t=30 and shrinks
    by 8 at t=90. Deltas must be non-zero; times non-negative.
    """
    events: List[ResizeEvent] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        time_part, sep, delta_part = chunk.partition(":")
        if not sep:
            raise ValueError(
                f"bad resize schedule entry {chunk!r} (want 'time:delta')"
            )
        time = float(time_part)
        delta = int(delta_part)
        if time < 0:
            raise ValueError(f"resize time must be >= 0, got {time}")
        if delta == 0:
            raise ValueError(f"resize delta must be non-zero in {chunk!r}")
        events.append((time, delta))
    if not events:
        raise ValueError("resize schedule is empty")
    return tuple(events)


class AutoscalerPolicy:
    """Decides when the cluster grows or shrinks.

    Two decision surfaces, either of which may be inert:

    * :meth:`initial_events` — resizes known up front, scheduled as
      absolute-time engine events when the controller primes;
    * :meth:`decide` — called every ``sample_interval`` with the live
      busy/total slot counts, returning a machine-count delta (0 for
      no change). ``sample_interval=None`` disables sampling.
    """

    name = "autoscaler"
    sample_interval: Optional[float] = None
    #: Shrinks never take the cluster below this many live machines.
    min_machines: int = 1

    def initial_events(self) -> Sequence[ResizeEvent]:
        return ()

    def decide(self, now: float, busy_slots: int, total_slots: int) -> int:
        return 0


class ScheduleAutoscaler(AutoscalerPolicy):
    """A fixed schedule of timed resizes — fully deterministic."""

    name = "schedule"

    def __init__(
        self,
        schedule: Sequence[ResizeEvent],
        min_machines: int = 1,
    ) -> None:
        events = tuple((float(t), int(d)) for t, d in schedule)
        if not events:
            raise ValueError("schedule autoscaler needs at least one resize")
        for time, delta in events:
            if time < 0:
                raise ValueError(f"resize time must be >= 0, got {time}")
            if delta == 0:
                raise ValueError("resize delta must be non-zero")
        self.schedule = events
        self.min_machines = min_machines

    def initial_events(self) -> Sequence[ResizeEvent]:
        return self.schedule


class ReactiveAutoscaler(AutoscalerPolicy):
    """Utilization-threshold scaler sampled on a window cadence."""

    name = "reactive"

    def __init__(
        self,
        interval: float = 5.0,
        upper: float = 0.85,
        lower: float = 0.30,
        step: int = 1,
        min_machines: int = 1,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        if not 0.0 <= lower < upper <= 1.0:
            raise ValueError(
                f"need 0 <= lower < upper <= 1, got [{lower}, {upper}]"
            )
        if step <= 0:
            raise ValueError("scale step must be positive")
        self.sample_interval = interval
        self.upper = upper
        self.lower = lower
        self.step = step
        self.min_machines = min_machines

    def decide(self, now: float, busy_slots: int, total_slots: int) -> int:
        if total_slots <= 0:
            return self.step
        utilization = busy_slots / total_slots
        if utilization > self.upper:
            return self.step
        if utilization < self.lower:
            return -self.step
        return 0


class ElasticController:
    """Drives one plane's cluster membership from an autoscaler policy.

    The plane supplies two mutation callbacks — ``add_machines(count)``
    and ``remove_machines(count)``, each returning how many machines
    actually changed after clamping (e.g. to ``policy.min_machines``) —
    plus live ``busy_slots``/``total_slots`` readers for the reactive
    policy. Sampling is demand-armed exactly like the planes' recurring
    speculation checks: the periodic event re-arms only while
    ``keep_sampling()`` holds (jobs are active), so idle runs drain the
    engine heap and terminate.
    """

    __slots__ = (
        "engine",
        "policy",
        "_add",
        "_remove",
        "_busy_slots",
        "_total_slots",
        "_keep_sampling",
        "_sample_armed",
        "obs",
        "resizes_applied",
        "machines_added",
        "machines_removed",
    )

    def __init__(
        self,
        engine,
        policy: AutoscalerPolicy,
        add_machines: Callable[[int], int],
        remove_machines: Callable[[int], int],
        busy_slots: Callable[[], int],
        total_slots: Callable[[], int],
        keep_sampling: Callable[[], bool],
        obs: Optional[Obs] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy
        self._add = add_machines
        self._remove = remove_machines
        self._busy_slots = busy_slots
        self._total_slots = total_slots
        self._keep_sampling = keep_sampling
        self._sample_armed = False
        self.obs = obs
        self.resizes_applied = 0
        self.machines_added = 0
        self.machines_removed = 0

    def prime(self) -> None:
        """Schedule the policy's known-in-advance resizes (call once,
        after the plane's ``run()`` has reset its cluster state)."""
        for time, delta in self.policy.initial_events():
            self.engine.schedule_at(time, self._on_resize_event, delta)
        self.ensure_sampling()

    def ensure_sampling(self) -> None:
        """(Re-)arm the periodic utilization sample if the policy wants
        one and demand exists. Planes call this on every job admission."""
        if self.policy.sample_interval is None or self._sample_armed:
            return
        if not self._keep_sampling():
            return
        self._sample_armed = True
        self.engine.schedule(self.policy.sample_interval, self._on_sample)

    def _on_sample(self) -> None:
        self._sample_armed = False
        if not self._keep_sampling():
            return
        delta = self.policy.decide(
            self.engine.now, self._busy_slots(), self._total_slots()
        )
        if delta:
            self._apply(delta)
        self.ensure_sampling()

    def _on_resize_event(self, delta: int) -> None:
        self._apply(delta)

    def _apply(self, delta: int) -> None:
        if delta > 0:
            applied = self._add(delta)
            kind = "add_machine"
            counter = "elastic.machines_added"
            self.machines_added += applied
        else:
            applied = self._remove(-delta)
            kind = "remove_machine"
            counter = "elastic.machines_removed"
            self.machines_removed += applied
        if not applied:
            return
        self.resizes_applied += 1
        obs = self.obs
        if obs is not None:
            obs.counters.inc(f"elastic.{kind}_events")
            obs.counters.inc(counter, applied)
            obs.tracer.instant(
                "elastic",
                kind,
                self.engine.now,
                machines=applied,
                total_slots=self._total_slots(),
            )
