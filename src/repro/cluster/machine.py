"""Machines: slot-bearing workers, grouped into racks."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Machine:
    """A cluster machine with a fixed number of task slots.

    The evaluation cluster in the paper has 200 machines with 16 cores
    each; we keep machines abstract (id, rack, slot count) and let the
    simulators track which slots are busy.
    """

    machine_id: int
    num_slots: int = 1
    rack: int = 0

    busy_slots: int = field(default=0, compare=False)
    blacklisted: bool = field(default=False, compare=False)
    #: Removed by an autoscaler. Unlike ``blacklisted`` (owned by the
    #: Blacklist and recomputed on every apply_blacklist pass), retirement
    #: is permanent: elastic shrink never resurrects a machine id — growth
    #: appends fresh ids instead — so reinstatement passes can't revive it.
    retired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise ValueError("machine must have at least one slot")

    @property
    def free_slots(self) -> int:
        return self.num_slots - self.busy_slots

    @property
    def has_free_slot(self) -> bool:
        return (
            self.busy_slots < self.num_slots
            and not self.blacklisted
            and not self.retired
        )

    def acquire_slot(self) -> None:
        """Mark one slot busy."""
        if self.busy_slots >= self.num_slots:
            raise RuntimeError(f"machine {self.machine_id}: no free slot")
        self.busy_slots += 1

    def release_slot(self) -> None:
        """Mark one slot free."""
        if self.busy_slots <= 0:
            raise RuntimeError(f"machine {self.machine_id}: no busy slot")
        self.busy_slots -= 1

    def reset(self) -> None:
        self.busy_slots = 0
