"""Incrementally maintained cluster-state indexes.

The centralized simulator used to answer "which machines have a free
slot?" by scanning the whole machine list — an O(machines) walk on every
dispatch iteration that capped it far below the 20k-slot regime the
decentralized path already reaches. Following the self-adjusting-
structure idea (keep the index consistent under updates instead of
rescanning), :class:`ClusterIndex` maintains a Fenwick tree over machine
ids with a set bit for every machine that currently has a free slot:

* ``free_machine_count`` — O(1);
* ``nth_free_machine(k)`` — the k-th free machine *in ascending
  machine-id order*, O(log machines) via binary descent;
* ``set_machine(machine_id, is_free)`` — O(log machines), no-op when
  the bit is unchanged.

Ascending-id enumeration order is load-bearing: it makes
``nth_free_machine(rng.randrange(count))`` consume the same entropy and
return the same machine as the old ``rng.choice(machines_with_free_
slots())``, so replays are bit-identical to the scan-based simulator
(see ``tests/test_golden_results.py``).

Per-job indexes (pending-task locality buckets, running-copy counters)
live on :class:`repro.runtime.JobRuntime`; this module owns the
cluster-wide machine index.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ClusterIndex:
    """Fenwick-tree free-slot index over a fixed machine list.

    The index mirrors ``machine.has_free_slot`` (which is False for
    blacklisted machines); :class:`repro.cluster.cluster.Cluster`
    refreshes the relevant bit on every slot acquire/release and
    rebuilds the index wholesale on reset / blacklist application.
    """

    __slots__ = ("_size", "_tree", "_bits", "_top_bit", "free_machine_count")

    def __init__(self, machines: Sequence) -> None:
        self.rebuild(machines)

    # -- construction -------------------------------------------------------

    def rebuild(self, machines: Sequence) -> None:
        """Recompute the whole index from scratch (O(machines))."""
        n = len(machines)
        self._size = n
        self._top_bit = 1 << (n.bit_length() - 1) if n else 0
        bits = [1 if m.has_free_slot else 0 for m in machines]
        self._bits = bits
        self.free_machine_count = sum(bits)
        # O(n) Fenwick build: each node accumulates into its parent.
        tree = [0] * (n + 1)
        for i in range(1, n + 1):
            tree[i] += bits[i - 1]
            parent = i + (i & -i)
            if parent <= n:
                tree[parent] += tree[i]
        self._tree = tree

    # -- updates ------------------------------------------------------------

    def _prefix(self, count: int) -> int:
        """Sum of the first ``count`` bits (O(log machines))."""
        tree = self._tree
        total = 0
        while count:
            total += tree[count]
            count -= count & -count
        return total

    def append_machine(self, machine) -> None:
        """Extend the index by one machine id (O(log machines)).

        Elastic growth appends machines instead of rebuilding: the new
        Fenwick node's value is the bit-sum of the id range it covers,
        recoverable from prefix sums over the existing tree — no O(n)
        rebuild on the resize path.
        """
        bit = 1 if machine.has_free_slot else 0
        j = self._size + 1
        span_start = j - (j & -j)
        self._tree.append(self._prefix(j - 1) - self._prefix(span_start) + bit)
        self._bits.append(bit)
        self._size = j
        self._top_bit = 1 << (j.bit_length() - 1)
        self.free_machine_count += bit

    def set_machine(self, machine_id: int, is_free: bool) -> None:
        """Record that ``machine_id`` gained/lost its last free slot."""
        bit = 1 if is_free else 0
        bits = self._bits
        if bits[machine_id] == bit:
            return
        bits[machine_id] = bit
        delta = 1 if bit else -1
        self.free_machine_count += delta
        tree = self._tree
        size = self._size
        j = machine_id + 1
        while j <= size:
            tree[j] += delta
            j += j & -j

    def refresh(self, machine) -> None:
        """Sync one machine's bit from its ``has_free_slot`` flag."""
        self.set_machine(machine.machine_id, machine.has_free_slot)

    # -- queries ------------------------------------------------------------

    def nth_free_machine(self, k: int) -> int:
        """Id of the k-th (0-based) free machine in ascending-id order."""
        if not 0 <= k < self.free_machine_count:
            raise IndexError(
                f"free-machine index {k} out of range "
                f"(count={self.free_machine_count})"
            )
        tree = self._tree
        size = self._size
        pos = 0
        remaining = k + 1
        bit = self._top_bit
        while bit:
            nxt = pos + bit
            if nxt <= size and tree[nxt] < remaining:
                pos = nxt
                remaining -= tree[nxt]
            bit >>= 1
        return pos

    def first_free_machine(self) -> Optional[int]:
        """Lowest-id machine with a free slot, or None."""
        if not self.free_machine_count:
            return None
        return self.nth_free_machine(0)

    def free_machine_ids(self) -> List[int]:
        """All free machine ids, ascending (for tests/debugging)."""
        return [i for i, bit in enumerate(self._bits) if bit]

    def __len__(self) -> int:
        return self._size
