"""Block placement and data locality (HDFS-like, 3 replicas).

Input-phase tasks read a block stored on a small set of machines; running
on one of them is "data local", otherwise the task reads over the network
and runs slower (§4.4). The :class:`DataStore` assigns replica placements
and answers locality queries.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.simulation.rng import RandomSource
from repro.workload.job import Job
from repro.workload.task import Task


class DataStore:
    """Replica placement for task input blocks.

    Parameters
    ----------
    num_machines:
        Size of the cluster.
    replicas:
        Replication factor (HDFS default 3).
    remote_penalty:
        Multiplier applied to a task copy's duration when it runs without
        data locality (network read + contention).
    """

    def __init__(
        self,
        num_machines: int,
        replicas: int = 3,
        remote_penalty: float = 1.25,
        random_source: Optional[RandomSource] = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        if remote_penalty < 1.0:
            raise ValueError("remote_penalty must be >= 1.0")
        self.num_machines = num_machines
        self.replicas = min(replicas, num_machines)
        self.remote_penalty = remote_penalty
        self._rng = (random_source or RandomSource(seed=7)).child("datastore").rng
        self._placements: Dict[int, Tuple[int, ...]] = {}

    def place_task_input(self, task: Task) -> Tuple[int, ...]:
        """Assign (or return existing) replica machines for a task's input."""
        existing = self._placements.get(task.task_id)
        if existing is not None:
            return existing
        if task.preferred_machines:
            placement = tuple(task.preferred_machines)
        else:
            placement = tuple(
                self._rng.sample(range(self.num_machines), self.replicas)
            )
        self._placements[task.task_id] = placement
        task.preferred_machines = placement
        return placement

    def place_job_inputs(self, job: Job) -> None:
        """Place inputs for all input-phase tasks of a job."""
        for phase in job.phases:
            if phase.parents:
                continue  # only input phases read stored blocks
            for task in phase.tasks:
                self.place_task_input(task)

    def is_local(self, task: Task, machine_id: int) -> bool:
        """True if the machine holds a replica of the task's input (tasks
        with no placement are locality-free and always 'local')."""
        placement = self._placements.get(task.task_id, task.preferred_machines)
        return not placement or machine_id in placement

    def duration_multiplier(self, task: Task, machine_id: int) -> float:
        """Penalty multiplier for running ``task`` on ``machine_id``."""
        return 1.0 if self.is_local(task, machine_id) else self.remote_penalty

    def local_machines(self, task: Task) -> Sequence[int]:
        return self._placements.get(task.task_id, task.preferred_machines)
