"""Blacklist policies: online, strike-driven mid-run machine eviction.

PR 4 built the blacklisting *substrate* (:class:`~repro.cluster.
blacklist.Blacklist`, :meth:`~repro.cluster.cluster.Cluster.
apply_blacklist`, :meth:`~repro.cluster.index.ClusterIndex.rebuild`) but
nothing ever exercised it mid-run: the machine-correlated straggler
model and the blacklist never interacted. This module closes that loop
with a *policy* layer in the spirit of the paper's §2.2 observation
(production clusters blacklist persistently flaky machines) and the
self-adjusting-structures framing of ReNets: eviction is an online
decision with its own knobs, not a fixed pre-run configuration.

A :class:`BlacklistPolicy` observes per-machine evidence while a
simulation runs — each task-copy completion is reported with the time,
the machine, the copy's duration and a per-job *reference* duration (the
median of the job's completed task durations) — and answers two
questions the simulator acts on:

* :meth:`~BlacklistPolicy.observe_completion` — "should the machine this
  copy ran on be evicted now?";
* :meth:`~BlacklistPolicy.due_reinstatements` — "which previously
  evicted machines have served their probation and may rejoin?".

The policy itself never touches the cluster: the owning simulator
(centralized dispatch/reschedule path or decentralized probe/launch
path) performs the eviction — killing running copies through the
:class:`~repro.runtime.CopyLedger`, requeueing lost originals, then
calling ``Cluster.apply_blacklist`` (which rebuilds the
:class:`~repro.cluster.index.ClusterIndex`). Policies register in
:data:`repro.registry.BLACKLIST_POLICIES` and are reachable from
``RunSpec`` via the ``blacklist_policy`` / ``strike_threshold`` /
``strike_window`` / ``eviction_cap`` knobs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.cluster.blacklist import Blacklist


class BlacklistPolicy(ABC):
    """Online eviction policy driven by per-machine completion evidence."""

    #: human-readable name used in reports and the registry
    name: str = "base"

    #: Fast-path hint for the simulators: when set, a completion with
    #: ``duration <= min_strike_ratio * task.size`` can never strike
    #: (the reference is floored by the task size), so the caller may
    #: skip computing the job-median reference — and the whole
    #: observation — for it. ``None`` means observe every completion.
    min_strike_ratio: Optional[float] = None

    @abstractmethod
    def observe_completion(
        self,
        now: float,
        machine_id: int,
        duration: float,
        reference: float,
    ) -> bool:
        """Report one finished task copy.

        ``duration`` is the copy's wall-clock runtime and ``reference``
        the job-level comparison point (the median completed duration,
        floored by the task's nominal size so an intrinsically large
        task is not evidence against its machine). Returns True when
        ``machine_id`` should be evicted *now*.
        """

    def due_reinstatements(self, now: float) -> List[int]:
        """Evicted machines whose probation expired by ``now``.

        The policy forgets them (strike history cleared); the caller is
        responsible for reinstating them in the cluster substrate.
        Default: evictions are permanent.
        """
        return []

    def strike_totals(self) -> Dict[int, int]:
        """Lifetime strikes per machine id (diagnostics; never reset by
        reinstatement). Default: no strike bookkeeping."""
        return {}


class StrikeBlacklistPolicy(BlacklistPolicy):
    """Evict machines that accumulate strikes within a sliding window.

    A completion counts as a *strike* against its machine when it ran
    slower than ``strike_multiplier`` times the job's reference duration.
    ``strike_threshold`` strikes within ``strike_window`` time units
    evict the machine, subject to ``eviction_cap`` (the largest fraction
    of the cluster that may be evicted at once — the §2.2 safety valve:
    blacklisting must never collapse the cluster). With ``probation > 0``
    an evicted machine is reinstated after that long with a clean strike
    record; ``probation = 0`` makes evictions permanent.

    Parameters
    ----------
    num_machines:
        Cluster size (wired per run by the harness); bounds the cap.
    strike_threshold:
        Strikes within the window that trigger eviction (k).
    strike_window:
        Sliding evidence window (virtual time units).
    eviction_cap:
        Max fraction of machines evicted simultaneously, in (0, 1].
    strike_multiplier:
        How much slower than the job reference a completion must be to
        count as a strike.
    probation:
        Time an evicted machine sits out before reinstatement (0 =
        permanent eviction).
    """

    name = "strikes"

    #: Default sliding evidence window (virtual time units).
    DEFAULT_STRIKE_WINDOW = 10.0

    def __init__(
        self,
        num_machines: int,
        strike_threshold: int = 3,
        strike_window: float = DEFAULT_STRIKE_WINDOW,
        eviction_cap: float = 0.2,
        strike_multiplier: float = 2.0,
        probation: float = 0.0,
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if not 0.0 < eviction_cap <= 1.0:
            raise ValueError("eviction_cap must be in (0, 1]")
        if strike_multiplier <= 1.0:
            raise ValueError("strike_multiplier must exceed 1.0")
        if probation < 0.0:
            raise ValueError("probation must be non-negative")
        self.num_machines = num_machines
        self.strike_multiplier = strike_multiplier
        self.min_strike_ratio = strike_multiplier
        self.probation = probation
        self.blacklist = Blacklist(
            strikes_to_blacklist=strike_threshold,
            strike_window=strike_window,
        )
        self.max_evictions = max(1, int(round(eviction_cap * num_machines)))
        #: (time, machine_id) of every eviction, in order.
        self.evictions: List[Tuple[float, int]] = []
        #: (time, machine_id) of every reinstatement, in order.
        self.reinstatements: List[Tuple[float, int]] = []
        self._probation_until: Dict[int, float] = {}

    @property
    def evicted_machines(self) -> frozenset:
        return frozenset(self.blacklist.blacklisted_machines)

    def observe_completion(
        self,
        now: float,
        machine_id: int,
        duration: float,
        reference: float,
    ) -> bool:
        if reference <= 0.0 or duration <= self.strike_multiplier * reference:
            return False
        blacklist = self.blacklist
        if blacklist.is_blacklisted(machine_id):
            return False
        if len(blacklist.blacklisted_machines) >= self.max_evictions:
            # At the cap: evidence still ages out of the window naturally,
            # but no strike is recorded — the cluster keeps its floor.
            return False
        if blacklist.record_strike(machine_id, now):
            self.evictions.append((now, machine_id))
            if self.probation > 0.0:
                self._probation_until[machine_id] = now + self.probation
            return True
        return False

    def due_reinstatements(self, now: float) -> List[int]:
        if not self._probation_until:
            return []
        due = sorted(
            machine_id
            for machine_id, until in self._probation_until.items()
            if until <= now
        )
        for machine_id in due:
            del self._probation_until[machine_id]
            self.blacklist.remove(machine_id)
            self.reinstatements.append((now, machine_id))
        return due

    def strike_totals(self) -> Dict[int, int]:
        return dict(self.blacklist.strike_totals)


def evaluate_completion(
    policy: BlacklistPolicy, now: float, copy, view
) -> Tuple[List[int], Optional[int]]:
    """Shared per-completion evidence path for both simulator planes.

    Polls probation reinstatements, applies the ``min_strike_ratio``
    fast path (a copy with ``duration <= ratio * size`` can never
    strike, so the job-median reference — a sort when the completed-
    durations list grew — is skipped for it), floors the reference at
    the task's nominal size, and feeds the observation to the policy.

    Returns ``(reinstated machine ids, machine id to evict or None)``;
    the caller owns the plane-specific slot accounting for both.
    """
    due = policy.due_reinstatements(now)
    size = copy.task.size
    ratio = policy.min_strike_ratio
    if ratio is not None and copy.duration <= ratio * size:
        return due, None
    reference = view.estimate_new_copy_duration(copy.task)
    if size > reference:
        reference = size
    if policy.observe_completion(now, copy.machine_id, copy.duration, reference):
        return due, copy.machine_id
    return due, None
