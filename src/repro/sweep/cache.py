"""On-disk result cache keyed by spec digest + code version tag.

Layout::

    .repro-cache/
        v1.1.0/                     # version tag (invalidated on release)
            <spec sha256>.json      # {"spec": ..., "result": ...}

Entries are written atomically (tmp file + rename) so a crashed run never
leaves a truncated document behind; unreadable entries are treated as
misses and discarded.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.metrics.collector import SimulationResult
from repro.metrics.serialize import result_from_dict, result_to_dict
from repro.sweep.spec import RunSpec

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_version_tag() -> str:
    """Cache namespace for the current code: ``v<repro.__version__>``."""
    import repro

    return f"v{repro.__version__}"


class ResultCache:
    """Digest-addressed store of serialized simulation results."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        version_tag: Optional[str] = None,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.version_tag = version_tag or default_version_tag()
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        return self.root / self.version_tag

    def path_for(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.digest()}.json"

    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        """Return the cached result for ``spec``, or None on a miss.

        Corrupt or stale-schema entries are removed and count as misses.
        """
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                document = json.load(fh)
            result = result_from_dict(document["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under ``spec``'s digest."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "digest": spec.digest(),
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(document, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def entry_count(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def size_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry in this version's namespace; return count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> List[Dict[str, object]]:
        """Digest-count / bytes summary, one row per version namespace.

        Rows are sorted by version tag; ``current`` marks the namespace
        this cache handle reads and writes.
        """
        rows: List[Dict[str, object]] = []
        if not self.root.is_dir():
            return rows
        for directory in sorted(p for p in self.root.iterdir() if p.is_dir()):
            entries = 0
            total_bytes = 0
            for path in directory.glob("*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            rows.append(
                {
                    "version_tag": directory.name,
                    "entries": entries,
                    "bytes": total_bytes,
                    "current": directory.name == self.version_tag,
                }
            )
        return rows

    def prune(
        self,
        older_than_days: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Remove stale entries; return ``(files_removed, bytes_freed)``.

        Entries in namespaces other than the current version tag are
        always stale (nothing reads them anymore). With
        ``older_than_days``, entries older than the cutoff are removed
        from the current namespace too. Emptied namespace directories
        are deleted.
        """
        if older_than_days is not None and older_than_days < 0:
            raise ValueError("older_than_days must be >= 0")
        if not self.root.is_dir():
            return (0, 0)
        cutoff: Optional[float] = None
        if older_than_days is not None:
            cutoff = (now if now is not None else time.time()) - (
                older_than_days * 86400.0
            )
        removed = 0
        freed = 0
        for directory in sorted(p for p in self.root.iterdir() if p.is_dir()):
            stale_namespace = directory.name != self.version_tag
            for path in directory.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if not stale_namespace and (
                    cutoff is None or stat.st_mtime >= cutoff
                ):
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                freed += stat.st_size
            try:
                next(directory.iterdir())
            except StopIteration:
                try:
                    directory.rmdir()
                except OSError:
                    pass
            except OSError:
                pass
        return (removed, freed)
