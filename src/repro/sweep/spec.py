"""Declarative, hashable descriptions of single simulator runs.

A :class:`RunSpec` pins down everything a replay depends on — workload
profile, trace shape, system, speculation algorithm, knobs, and seeds —
as plain JSON-safe values. Two properties follow:

* **determinism** — executing the same spec always produces the same
  :class:`~repro.metrics.collector.SimulationResult`, in any process,
  because every random stream is seeded from the spec itself;
* **content addressing** — :meth:`RunSpec.digest` is a stable SHA-256 of
  the canonical JSON form, which keys the on-disk result cache and
  deduplicates repeated runs inside a sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: Systems accepted per spec kind (mirrors the harness dispatch tables).
CENTRALIZED_SYSTEMS = ("fair", "srpt", "hopper")
DECENTRALIZED_SYSTEMS = ("sparrow", "sparrow-srpt", "hopper")

#: Extra keyword knobs forwarded to the harness runners, per kind. Kept
#: explicit so a typo in a sweep definition fails at spec construction
#: rather than deep inside a worker process.
CENTRALIZED_KNOBS = frozenset(
    {
        "epsilon",
        "locality_k_percent",
        "speculation_mode",
        "with_locality",
        "slots_per_machine",
    }
)
DECENTRALIZED_KNOBS = frozenset(
    {
        "epsilon",
        "probe_ratio",
        "refusal_threshold",
        "num_schedulers",
        "until",
    }
)

_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Names accepted by :func:`repro.speculation.make_speculation_policy`.
SPECULATION_ALGORITHMS = ("late", "mantri", "grass", "none", "off")


@dataclass(frozen=True)
class WorkloadParams:
    """JSON-safe mirror of :class:`repro.experiments.harness.WorkloadSpec`.

    The workload profile is referenced by registry name (see
    :data:`repro.workload.generator.PROFILES`) instead of by object so
    the spec stays hashable and serializable.
    """

    profile: str = "facebook"
    num_jobs: int = 150
    utilization: float = 0.6
    total_slots: int = 400
    seed: int = 42
    max_phase_tasks: Optional[int] = 300
    locality_machines: Optional[int] = None

    def __post_init__(self) -> None:
        # Resolve eagerly so bad profile names fail at construction.
        from repro.workload.generator import profile_by_name

        profile_by_name(self.profile)
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        if self.total_slots <= 0:
            raise ValueError("total_slots must be positive")

    def to_workload_spec(self):
        """Materialize the harness :class:`WorkloadSpec` this describes."""
        from repro.experiments.harness import WorkloadSpec
        from repro.workload.generator import profile_by_name

        return WorkloadSpec(
            profile=profile_by_name(self.profile),
            num_jobs=self.num_jobs,
            utilization=self.utilization,
            total_slots=self.total_slots,
            seed=self.seed,
            max_phase_tasks=self.max_phase_tasks,
            locality_machines=self.locality_machines,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


KnobsInput = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


@dataclass(frozen=True)
class RunSpec:
    """One simulator replay, fully determined by its field values.

    Attributes
    ----------
    kind:
        ``"centralized"`` or ``"decentralized"``.
    system:
        Policy/system name; see :data:`CENTRALIZED_SYSTEMS` /
        :data:`DECENTRALIZED_SYSTEMS`.
    workload:
        Trace shape and generation seed.
    speculation:
        Straggler-mitigation algorithm (``late``, ``mantri``, ``grass``).
    run_seed:
        Seed for the replay's own random streams (straggler draws etc.).
    knobs:
        Extra scalar keyword arguments forwarded to the harness runner
        (normalized to a sorted tuple of pairs so the spec hashes).
    """

    kind: str
    system: str
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    speculation: str = "late"
    run_seed: int = 7
    knobs: KnobsInput = ()

    def __post_init__(self) -> None:
        if self.kind == "centralized":
            valid_systems, valid_knobs = CENTRALIZED_SYSTEMS, CENTRALIZED_KNOBS
        elif self.kind == "decentralized":
            valid_systems, valid_knobs = (
                DECENTRALIZED_SYSTEMS,
                DECENTRALIZED_KNOBS,
            )
        else:
            raise ValueError(
                f"kind must be 'centralized' or 'decentralized', "
                f"got {self.kind!r}"
            )
        if self.system not in valid_systems:
            raise ValueError(
                f"unknown {self.kind} system {self.system!r}; "
                f"expected one of {valid_systems}"
            )
        if self.speculation not in SPECULATION_ALGORITHMS:
            raise ValueError(
                f"unknown speculation algorithm {self.speculation!r}; "
                f"expected one of {SPECULATION_ALGORITHMS}"
            )
        items = (
            tuple(sorted(self.knobs.items()))
            if isinstance(self.knobs, Mapping)
            else tuple(tuple(pair) for pair in sorted(self.knobs))
        )
        for key, value in items:
            if key not in valid_knobs:
                raise ValueError(
                    f"unknown {self.kind} knob {key!r}; "
                    f"expected one of {sorted(valid_knobs)}"
                )
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"knob {key!r} must be a JSON scalar, got {value!r}"
                )
        object.__setattr__(self, "knobs", items)

    # -- content addressing ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (stable across processes)."""
        return {
            "kind": self.kind,
            "system": self.system,
            "workload": self.workload.to_dict(),
            "speculation": self.speculation,
            "run_seed": self.run_seed,
            "knobs": {k: v for k, v in self.knobs},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(
            kind=data["kind"],
            system=data["system"],
            workload=WorkloadParams(**data["workload"]),
            speculation=data.get("speculation", "late"),
            run_seed=data.get("run_seed", 7),
            knobs=data.get("knobs", {}),
        )

    def digest(self) -> str:
        """Stable SHA-256 content digest of the canonical JSON form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for logs and CLI output."""
        wl = self.workload
        return (
            f"{self.kind[0]}:{self.system}"
            f"@{wl.profile}/u{wl.utilization:g}/n{wl.num_jobs}/s{wl.seed}"
        )

    # -- execution -------------------------------------------------------------

    def execute(self):
        """Run this spec to completion and return its result.

        Deterministic: the trace is rebuilt from ``workload.seed`` and the
        replay reseeded from ``run_seed``, so the outcome is identical in
        any process.
        """
        from repro.experiments.harness import (
            build_trace,
            run_centralized,
            run_decentralized,
        )

        wspec = self.workload.to_workload_spec()
        trace = build_trace(wspec)
        kwargs = {k: v for k, v in self.knobs}
        if self.kind == "centralized":
            mode = kwargs.pop("speculation_mode", None)
            if mode is not None:
                from repro.centralized.config import SpeculationMode

                kwargs["speculation_mode"] = SpeculationMode(mode)
            return run_centralized(
                trace,
                self.system,
                wspec,
                speculation=self.speculation,
                run_seed=self.run_seed,
                **kwargs,
            )
        return run_decentralized(
            trace,
            self.system,
            wspec,
            speculation=self.speculation,
            run_seed=self.run_seed,
            **kwargs,
        )
