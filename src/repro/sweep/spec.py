"""Declarative, hashable descriptions of single simulator runs.

A :class:`RunSpec` pins down everything a replay depends on — workload
profile, trace shape, system, speculation algorithm, knobs, and seeds —
as plain JSON-safe values. Two properties follow:

* **determinism** — executing the same spec always produces the same
  :class:`~repro.metrics.collector.SimulationResult`, in any process,
  because every random stream is seeded from the spec itself;
* **content addressing** — :meth:`RunSpec.digest` is a stable SHA-256 of
  the canonical JSON form, which keys the on-disk result cache and
  deduplicates repeated runs inside a sweep.

Names (spec kinds, systems, speculation policies, workload profiles,
knob schemas) all resolve through :mod:`repro.registry`: registering a
new system there makes it constructible and executable here with no
further edits. The canonical dict form predates the registry and is
frozen — existing cache entries stay valid across the migration (see
the golden-digest tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro import registry as _registry

#: Snapshot of the registered system names at import time, kept for
#: backward compatibility. Validation uses the live registries, so
#: systems registered later are accepted by RunSpec even though they do
#: not appear in these tuples.
CENTRALIZED_SYSTEMS = _registry.CENTRALIZED_SYSTEMS.names()
DECENTRALIZED_SYSTEMS = _registry.DECENTRALIZED_SYSTEMS.names()

#: Knob names per kind (snapshots of the registry schemas).
CENTRALIZED_KNOBS = frozenset(_registry.spec_kind("centralized").knobs)
DECENTRALIZED_KNOBS = frozenset(_registry.spec_kind("decentralized").knobs)

_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Names accepted by :func:`repro.speculation.make_speculation_policy`.
SPECULATION_ALGORITHMS = _registry.SPECULATION_POLICIES.names()


@dataclass(frozen=True)
class WorkloadParams:
    """JSON-safe mirror of :class:`repro.experiments.harness.WorkloadSpec`.

    The workload profile is referenced by registry name (see
    :data:`repro.registry.WORKLOAD_PROFILES`) instead of by object so
    the spec stays hashable and serializable.
    """

    profile: str = "facebook"
    num_jobs: int = 150
    utilization: float = 0.6
    total_slots: int = 400
    seed: int = 42
    max_phase_tasks: Optional[int] = 300
    locality_machines: Optional[int] = None

    def __post_init__(self) -> None:
        # Resolve eagerly so bad profile names fail at construction.
        from repro.workload.generator import profile_by_name

        profile_by_name(self.profile)
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        if self.total_slots <= 0:
            raise ValueError("total_slots must be positive")

    def to_workload_spec(self):
        """Materialize the harness :class:`WorkloadSpec` this describes."""
        from repro.experiments.harness import WorkloadSpec
        from repro.workload.generator import profile_by_name

        return WorkloadSpec(
            profile=profile_by_name(self.profile),
            num_jobs=self.num_jobs,
            utilization=self.utilization,
            total_slots=self.total_slots,
            seed=self.seed,
            max_phase_tasks=self.max_phase_tasks,
            locality_machines=self.locality_machines,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadParams":
        """Strict deserialization: unknown keys fail loudly.

        A stale or hand-edited cache entry must not silently deserialize
        to a *different* workload than the one that produced the digest.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown WorkloadParams field(s) {unknown}; "
                f"expected a subset of {sorted(known)} — the document may "
                f"come from a stale cache entry or a newer code version"
            )
        return cls(**data)


KnobsInput = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]

#: Canonical top-level keys of :meth:`RunSpec.to_dict`.
_RUNSPEC_KEYS = frozenset(
    {"kind", "system", "workload", "speculation", "run_seed", "knobs"}
)


@dataclass(frozen=True)
class RunSpec:
    """One simulator replay, fully determined by its field values.

    Attributes
    ----------
    kind:
        A registered spec kind: ``"centralized"``, ``"decentralized"``
        or ``"single_job"`` (see :data:`repro.registry.SPEC_KINDS`).
    system:
        System name, resolved in the kind's systems registry.
    workload:
        Trace shape and generation seed. (``single_job`` specs use only
        ``seed`` — the job is synthesized from the knobs.)
    speculation:
        Straggler-mitigation algorithm (``late``, ``mantri``, ``grass``).
    run_seed:
        Seed for the replay's own random streams (straggler draws etc.);
        for ``single_job`` specs, the repetition index.
    knobs:
        Extra scalar keyword arguments, validated against the kind's
        typed knob schema and normalized to a sorted tuple of pairs so
        the spec hashes.
    """

    kind: str
    system: str
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    speculation: str = "late"
    run_seed: int = 7
    knobs: KnobsInput = ()

    def __post_init__(self) -> None:
        kind = _registry.spec_kind(self.kind)
        kind.systems.get(self.system)
        _registry.SPECULATION_POLICIES.get(self.speculation)
        items = (
            tuple(sorted(self.knobs.items()))
            if isinstance(self.knobs, Mapping)
            else tuple(tuple(pair) for pair in sorted(self.knobs))
        )
        for key, value in items:
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"knob {key!r} must be a JSON scalar, got {value!r}"
                )
        kind.validate_knobs(items)
        object.__setattr__(self, "knobs", items)

    # -- content addressing ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (stable across processes)."""
        return {
            "kind": self.kind,
            "system": self.system,
            "workload": self.workload.to_dict(),
            "speculation": self.speculation,
            "run_seed": self.run_seed,
            "knobs": {k: v for k, v in self.knobs},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Strict deserialization: unknown keys fail loudly (see
        :meth:`WorkloadParams.from_dict`)."""
        unknown = sorted(set(data) - _RUNSPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown RunSpec field(s) {unknown}; "
                f"expected a subset of {sorted(_RUNSPEC_KEYS)} — the "
                f"document may come from a stale cache entry or a newer "
                f"code version"
            )
        return cls(
            kind=data["kind"],
            system=data["system"],
            workload=WorkloadParams.from_dict(data["workload"]),
            speculation=data.get("speculation", "late"),
            run_seed=data.get("run_seed", 7),
            knobs=data.get("knobs", {}),
        )

    def digest(self) -> str:
        """Stable SHA-256 content digest of the canonical JSON form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for logs and CLI output."""
        wl = self.workload
        return (
            f"{self.kind[0]}:{self.system}"
            f"@{wl.profile}/u{wl.utilization:g}/n{wl.num_jobs}/s{wl.seed}"
        )

    # -- execution -------------------------------------------------------------

    def execute(self):
        """Run this spec to completion and return its result.

        Deterministic: the trace is rebuilt from ``workload.seed`` and the
        replay reseeded from ``run_seed``, so the outcome is identical in
        any process. Dispatch goes through the spec-kind registry, so
        registered kinds (including plugins) execute with no edits here.
        """
        return _registry.spec_kind(self.kind).run(self)
