"""Parallel sweep orchestration with a deterministic result cache.

Every paper figure reduces to a grid of independent simulator replays —
(system x utilization x parameter x seed). This package turns that grid
into a first-class object:

* :class:`RunSpec` / :class:`WorkloadParams` — declarative, hashable run
  descriptions with a stable content digest;
* :class:`ResultCache` — on-disk store (``.repro-cache/``) keyed by spec
  digest + code version, making repeated figure/benchmark runs
  incremental;
* :class:`SweepRunner` — deduplicating, cache-aware executor that fans
  cache misses across a process pool (serial fallback included), with
  parallel and serial execution guaranteed to produce identical results;
* :func:`evaluate` — convenience wrapper used by the figure experiments;
* :class:`Study` / :class:`StudyResult` — named, declarative grids with
  seed replication and bootstrap-CI aggregation (``repro study`` CLI).
"""

from repro.sweep.cache import ResultCache, default_version_tag
from repro.sweep.runner import (
    SweepRunner,
    SweepStats,
    default_runner,
    evaluate,
    set_default_runner,
)
from repro.sweep.spec import (
    CENTRALIZED_SYSTEMS,
    DECENTRALIZED_SYSTEMS,
    RunSpec,
    WorkloadParams,
)
from repro.sweep.study import (
    Cell,
    CellAggregate,
    Study,
    StudyResult,
    bootstrap_ci,
    cell,
    register_study,
    with_axis,
)

__all__ = [
    "RunSpec",
    "WorkloadParams",
    "ResultCache",
    "SweepRunner",
    "SweepStats",
    "evaluate",
    "default_runner",
    "set_default_runner",
    "default_version_tag",
    "CENTRALIZED_SYSTEMS",
    "DECENTRALIZED_SYSTEMS",
    "Cell",
    "CellAggregate",
    "Study",
    "StudyResult",
    "bootstrap_ci",
    "cell",
    "register_study",
    "with_axis",
]
