"""Multi-seed studies: named, declarative grids with seed replication.

A :class:`Study` is the layer above a raw sweep. Where a sweep is a flat
list of :class:`~repro.sweep.spec.RunSpec`, a study is a *labelled grid*
of cells, each cell a function ``seed -> RunSpec``. Running a study with
``seeds=[1, 2, 3]`` replays every cell once per seed (all through one
deduplicating, cacheable :class:`~repro.sweep.runner.SweepRunner` call)
and aggregates a per-cell metric into mean / p95 / bootstrap confidence
intervals. Single-seed figure reproduction and multi-seed CI tables are
therefore the *same* grid, differing only in the seed list:

    study = registry.studies().get("fig6").factory
    study.run(seeds=(1, 2, 3)).aggregate()     # mean +/- CI per cell

Studies register by name in :data:`repro.registry.STUDIES` (the paper
figures register theirs in :mod:`repro.experiments.figures`) and run
from the CLI via ``python -m repro study <name> --seeds 1,2,3``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.metrics.collector import SimulationResult
from repro.sweep.runner import SweepRunner, evaluate
from repro.sweep.spec import RunSpec

MetricFn = Callable[[SimulationResult], float]

#: Default per-cell metric: the mean job duration of the replay.
DEFAULT_METRIC_NAME = "mean job duration"


def _mean_job_duration(result: SimulationResult) -> float:
    return result.mean_job_duration


@dataclass(frozen=True)
class Cell:
    """One grid cell: axis labels plus a seed-parameterized spec maker."""

    labels: Tuple[Tuple[str, Any], ...]
    make_spec: Callable[[int], RunSpec]

    def label_dict(self) -> Dict[str, Any]:
        return dict(self.labels)


def cell(make_spec: Callable[[int], RunSpec], **labels: Any) -> Cell:
    """Convenience constructor: ``cell(fn, system="hopper", u=0.6)``."""
    return Cell(labels=tuple(labels.items()), make_spec=make_spec)


def with_axis(cells: Sequence[Cell], **labels: Any) -> List[Cell]:
    """Prepend fixed axis labels to every cell (used to merge grids)."""
    extra = tuple(labels.items())
    return [Cell(labels=extra + c.labels, make_spec=c.make_spec) for c in cells]


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Any = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Deterministic: the resampling RNG is seeded from ``seed`` (studies
    pass a stable per-cell string), so repeated invocations print the
    same interval. With fewer than two values the interval collapses to
    the point estimate.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    if not values:
        raise ValueError("empty sequence")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(repr(seed))
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(alpha * (resamples - 1))
    hi_index = int((1.0 - alpha) * (resamples - 1))
    return (means[lo_index], means[hi_index])


@dataclass(frozen=True)
class CellAggregate:
    """Per-cell summary of a metric across seeds."""

    labels: Tuple[Tuple[str, Any], ...]
    n: int
    mean: float
    p95: float
    ci_lower: float
    ci_upper: float
    values: Tuple[float, ...]

    def label_dict(self) -> Dict[str, Any]:
        return dict(self.labels)


@dataclass(frozen=True)
class StudyResult:
    """Everything a study run produced, reshaped per cell x seed."""

    study_name: str
    metric_name: str
    seeds: Tuple[int, ...]
    cells: Tuple[Cell, ...]
    #: ``results[i][j]`` is cell ``i`` replayed with seed ``seeds[j]``.
    results: Tuple[Tuple[SimulationResult, ...], ...]

    @property
    def first_seed_results(self) -> List[SimulationResult]:
        """One result per cell at the first seed — the single-seed view
        the figure functions reduce (grid order == cell order)."""
        return [per_cell[0] for per_cell in self.results]

    def values(self, metric: Optional[MetricFn] = None) -> List[List[float]]:
        fn = metric or _mean_job_duration
        return [[fn(r) for r in per_cell] for per_cell in self.results]

    def aggregate(
        self,
        metric: Optional[MetricFn] = None,
        confidence: float = 0.95,
        resamples: int = 2000,
    ) -> List[CellAggregate]:
        """Mean / p95 / bootstrap-CI of the metric per cell, across seeds."""
        from repro.metrics.analysis import percentile

        rows: List[CellAggregate] = []
        for cell_, per_cell in zip(self.cells, self.values(metric)):
            lo, hi = bootstrap_ci(
                per_cell,
                confidence=confidence,
                resamples=resamples,
                seed=(self.study_name, self.metric_name, cell_.labels),
            )
            rows.append(
                CellAggregate(
                    labels=cell_.labels,
                    n=len(per_cell),
                    mean=sum(per_cell) / len(per_cell),
                    p95=percentile(per_cell, 0.95),
                    ci_lower=lo,
                    ci_upper=hi,
                    values=tuple(per_cell),
                )
            )
        return rows


@dataclass(frozen=True)
class Study:
    """A named, declarative grid of RunSpecs with seed replication.

    Attributes
    ----------
    name / description:
        Registry identity and the line ``repro list`` prints.
    build_cells:
        ``(**params) -> Sequence[Cell]``; params default inside the
        builder, so ``build_cells()`` is the paper-scale grid.
    seeds:
        Default seed list (single-seed figure reproduction uses the
        first). For ``single_job`` studies the seeds are repetition
        indices.
    metric / metric_name:
        Per-run scalar the CLI aggregates (mean/p95/CI).
    quick:
        Scaled-down builder params for smoke tests (CLI ``--quick``).
    """

    name: str
    description: str
    build_cells: Callable[..., Sequence[Cell]]
    seeds: Tuple[int, ...] = (42,)
    metric: MetricFn = _mean_job_duration
    metric_name: str = DEFAULT_METRIC_NAME
    quick: Mapping[str, Any] = field(default_factory=dict)

    def cells(self, quick: bool = False, **params: Any) -> List[Cell]:
        merged: Dict[str, Any] = dict(self.quick) if quick else {}
        merged.update(params)
        return list(self.build_cells(**merged))

    def run(
        self,
        seeds: Optional[Sequence[int]] = None,
        runner: Optional[SweepRunner] = None,
        quick: bool = False,
        **params: Any,
    ) -> StudyResult:
        """Replay every cell under every seed and reshape the results.

        All specs go through a single runner call, so dedup, caching and
        process-pool parallelism apply across the full cell x seed grid.
        """
        seed_list = tuple(self.seeds if seeds is None else seeds)
        if not seed_list:
            raise ValueError("need at least one seed")
        cells = self.cells(quick=quick, **params)
        if not cells:
            raise ValueError(f"study {self.name!r} produced no cells")
        specs = [c.make_spec(seed) for c in cells for seed in seed_list]
        flat = evaluate(specs, runner)
        per_cell = [
            tuple(flat[i * len(seed_list) : (i + 1) * len(seed_list)])
            for i in range(len(cells))
        ]
        return StudyResult(
            study_name=self.name,
            metric_name=self.metric_name,
            seeds=seed_list,
            cells=tuple(cells),
            results=tuple(per_cell),
        )


def register_study(study: Study, replace: bool = False) -> Study:
    """Add ``study`` to :data:`repro.registry.STUDIES` and return it."""
    from repro.registry import STUDIES

    STUDIES.register(
        study.name, study, description=study.description, replace=replace
    )
    return study
