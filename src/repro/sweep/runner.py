"""Fan a grid of RunSpecs across worker processes, with caching.

The runner owns three orthogonal optimizations on top of plain serial
replay, all of them semantics-preserving because specs are deterministic:

* **dedup** — identical specs (by content digest) inside one sweep are
  executed once and the result shared;
* **cache** — an optional :class:`~repro.sweep.cache.ResultCache` makes
  repeated benchmark/figure invocations incremental across processes;
* **parallelism** — cache misses run on a ``ProcessPoolExecutor``;
  results travel between processes as JSON-safe dicts. Falls back to
  in-process serial execution on single-core machines, for single runs,
  or when a pool cannot be created (restricted sandboxes).

Result lists always come back in spec order, and parallel and serial
execution produce bit-identical results for identical specs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.metrics.collector import SimulationResult
from repro.metrics.serialize import result_from_dict, result_to_dict
from repro.sweep.cache import ResultCache
from repro.sweep.spec import RunSpec

#: Environment toggles consulted by :meth:`SweepRunner.from_env`.
PARALLEL_ENV = "REPRO_SWEEP_PARALLEL"
CACHE_ENV = "REPRO_SWEEP_CACHE"


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: dict in, dict out (must pickle)."""
    spec = RunSpec.from_dict(payload)
    return result_to_dict(spec.execute())


@dataclass
class SweepStats:
    """Counters describing what the last :meth:`SweepRunner.run` did."""

    requested: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    parallel: bool = False

    def add(self, other: "SweepStats") -> None:
        self.requested += other.requested
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.deduplicated += other.deduplicated
        self.parallel = self.parallel or other.parallel


class SweepRunner:
    """Executes grids of :class:`RunSpec` with dedup, cache, parallelism.

    Parameters
    ----------
    max_workers:
        Process-pool size; ``None`` lets the pool pick ``os.cpu_count()``.
    cache:
        Optional :class:`ResultCache`; when set, every result is looked
        up before executing and persisted after.
    parallel:
        ``True``/``False`` forces the mode; ``None`` (default) uses a
        pool only when there is more than one distinct run to execute
        and the machine has more than one core.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        parallel: Optional[bool] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.cache = cache
        self.parallel = parallel
        #: Cumulative counters across every ``run()`` on this runner.
        self.stats = SweepStats()

    @classmethod
    def from_env(cls) -> "SweepRunner":
        """Build a runner from ``REPRO_SWEEP_PARALLEL`` / ``REPRO_SWEEP_CACHE``.

        Both default off/auto: parallelism is auto-detected, caching is
        disabled unless ``REPRO_SWEEP_CACHE=1`` (the cache directory then
        comes from ``REPRO_CACHE_DIR`` or ``.repro-cache``).
        """
        parallel: Optional[bool] = None
        raw = os.environ.get(PARALLEL_ENV)
        if raw is not None:
            parallel = raw not in ("0", "false", "no", "")
        cache = None
        if os.environ.get(CACHE_ENV, "") not in ("", "0", "false", "no"):
            cache = ResultCache()
        return cls(cache=cache, parallel=parallel)

    # -- execution -------------------------------------------------------------

    def _use_pool(self, distinct_pending: int) -> bool:
        if self.parallel is not None:
            return self.parallel and distinct_pending > 1
        if distinct_pending < 2:
            return False
        return (os.cpu_count() or 1) > 1

    def run(self, specs: Iterable[RunSpec]) -> List[SimulationResult]:
        """Execute ``specs``; the result list matches the input order."""
        spec_list: List[RunSpec] = list(specs)
        stats = SweepStats(requested=len(spec_list))
        results: List[Optional[SimulationResult]] = [None] * len(spec_list)

        # Group positions by content digest so identical specs run once.
        positions_by_digest: Dict[str, List[int]] = {}
        spec_by_digest: Dict[str, RunSpec] = {}
        for index, spec in enumerate(spec_list):
            digest = spec.digest()
            positions_by_digest.setdefault(digest, []).append(index)
            spec_by_digest.setdefault(digest, spec)
        stats.deduplicated = len(spec_list) - len(positions_by_digest)

        pending: List[str] = []
        for digest, positions in positions_by_digest.items():
            cached = (
                self.cache.get(spec_by_digest[digest]) if self.cache else None
            )
            if cached is not None:
                stats.cache_hits += 1
                for index in positions:
                    results[index] = cached
            else:
                pending.append(digest)

        if pending:
            stats.executed = len(pending)
            computed = self._execute_pending(
                [spec_by_digest[d] for d in pending], stats
            )
            for digest, result in zip(pending, computed):
                if self.cache is not None:
                    self.cache.put(spec_by_digest[digest], result)
                for index in positions_by_digest[digest]:
                    results[index] = result

        self.stats.add(stats)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> SimulationResult:
        return self.run([spec])[0]

    def _execute_pending(
        self, specs: Sequence[RunSpec], stats: SweepStats
    ) -> List[SimulationResult]:
        if self._use_pool(len(specs)):
            try:
                return self._execute_parallel(specs, stats)
            except (OSError, PermissionError, BrokenProcessPool):
                # Pool machinery unavailable or its workers died
                # (sandbox, missing /dev/shm, ...): deterministic serial
                # fallback. Exceptions raised by a spec itself propagate
                # with their original type — never re-run the batch.
                pass
        return [spec.execute() for spec in specs]

    def _execute_parallel(
        self, specs: Sequence[RunSpec], stats: SweepStats
    ) -> List[SimulationResult]:
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(specs))
        payloads = [spec.to_dict() for spec in specs]
        with ProcessPoolExecutor(max_workers=workers) as executor:
            documents = list(executor.map(_execute_payload, payloads))
        stats.parallel = True
        return [result_from_dict(doc) for doc in documents]


#: Process-wide default runner used when figure code is not handed one.
_default_runner: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """The lazily-created process-wide runner (configured from env)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner.from_env()
    return _default_runner


def set_default_runner(runner: Optional[SweepRunner]) -> None:
    """Override (or with ``None``, reset) the process-wide runner."""
    global _default_runner
    _default_runner = runner


def evaluate(
    specs: Iterable[RunSpec], runner: Optional[SweepRunner] = None
) -> List[SimulationResult]:
    """Run ``specs`` on ``runner`` (or the process-wide default)."""
    return (runner or default_runner()).run(specs)
