"""The decentralized cluster simulator.

Wires schedulers and workers together over a message layer with uniform
one-way delay, replays a trace, executes task copies against the straggler
model, and collects metrics. Control messages (probes, offers, replies)
pay the network delay; execution-state bookkeeping (copy start/finish,
kills) is applied synchronously to keep the event count tractable — the
protocol dynamics the paper studies (probe ratios, refusals, late binding)
all live on the delayed control path.

Scale-out notes (10k+-slot clusters):

* control messages destined for the same simulation tick are *batched*
  into one engine event, so a probe burst of ``k`` probes costs one heap
  push instead of ``k``. The batch is only extended while the engine's
  :meth:`~repro.simulation.engine.Simulator.sequence_marker` is
  unchanged — i.e. while provably nothing else has been scheduled — so
  delivery order is bit-identical to one-event-per-message;
* queued reservation requests are indexed per job
  (``job -> {worker: count}``), so job completion purges exactly the
  workers that hold requests instead of leaving tombstones for every
  worker to lazily scan past.

Blacklisting (§2.2): an optional
:class:`~repro.cluster.policy.BlacklistPolicy` observes copy
completions; eviction removes the worker from the probe sample pool,
drops its queued requests, kills its running copies through the ledger
(requeueing originals whose last copy died, with a fresh probe each),
and records the decision in a mirror :class:`~repro.cluster.cluster.
Cluster` whose ``apply_blacklist`` call rebuilds the shared
:class:`~repro.cluster.index.ClusterIndex` — the same substrate the
centralized plane uses. With no policy (the default) the probe/launch
path is untouched and replays are bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.elastic import AutoscalerPolicy, ElasticController
from repro.cluster.policy import BlacklistPolicy, evaluate_completion
from repro.decentralized.config import DecentralizedConfig
from repro.decentralized.scheduler import SchedulerAgent, SchedulerJob
from repro.decentralized.worker import Worker
from repro.estimation.alpha import AlphaEstimator
from repro.estimation.beta import OnlineBetaEstimator
from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.obs import Obs
from repro.runtime import CopyLedger
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomSource
from repro.speculation.base import SpeculationPolicy
from repro.stragglers.model import StragglerModel
from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task
from repro.workload.traces import Trace


class DecentralizedSimulator:
    """Simulates a trace under a decentralized scheduling policy.

    Parameters
    ----------
    num_workers:
        Worker machines (each with ``slots_per_worker`` slots).
    speculation:
        Factory for per-job speculation policies (LATE/Mantri/GRASS).
    trace:
        Jobs to replay.
    straggler_model:
        Per-copy slowdown generator.
    config:
        Protocol knobs; see :class:`DecentralizedConfig`.
    """

    def __init__(
        self,
        num_workers: int,
        speculation: Callable[[], SpeculationPolicy],
        trace: Trace,
        straggler_model: StragglerModel,
        config: Optional[DecentralizedConfig] = None,
        slots_per_worker: int = 1,
        random_source: Optional[RandomSource] = None,
        name: Optional[str] = None,
        blacklist_policy: Optional[BlacklistPolicy] = None,
        autoscaler: Optional[AutoscalerPolicy] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if slots_per_worker <= 0:
            raise ValueError("slots_per_worker must be positive")
        self.config = config or DecentralizedConfig()
        self.speculation_factory = speculation
        self.trace = trace
        self.straggler_model = straggler_model
        self.random_source = random_source or RandomSource(seed=0)
        self.rng = self.random_source.child("decentralized").rng
        # Observability handles must exist before workers/schedulers are
        # constructed below — they snapshot these attributes.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        self._counters = obs.counters if obs is not None else None

        self.sim = Simulator(obs=obs)
        self.metrics = MetricsCollector(
            scheduler_name=name or f"decentralized-{self.config.worker_policy.value}"
        )
        self.beta_estimator = OnlineBetaEstimator(
            default_beta=self.config.default_beta
        )
        self.alpha_estimator = AlphaEstimator(
            network_rate=self.config.network_rate
        )

        self.workers: List[Worker] = [
            Worker(worker_id=i, num_slots=slots_per_worker, sim=self)
            for i in range(num_workers)
        ]
        self.total_slots = num_workers * slots_per_worker
        self.schedulers: List[SchedulerAgent] = [
            SchedulerAgent(scheduler_id=i, sim=self)
            for i in range(self.config.num_schedulers)
        ]
        self._owner: Dict[int, SchedulerAgent] = {}
        self.ledger = CopyLedger(
            self.sim, self.metrics, self.beta_estimator, tracer=self._tracer
        )
        self._next_scheduler = 0
        self._active_jobs = 0
        self._spec_check_scheduled = False
        # job_id -> {worker_id: queued request count} (see module docs).
        self._request_holders: Dict[int, Dict[int, int]] = {}
        # One open control-message batch (destination tick + seq guard).
        self._message_delay = self.config.message_delay
        self._open_batch: Optional[List[Tuple[Callable[..., None], tuple]]] = None
        self._open_batch_time = 0.0
        self._open_batch_seq = -1
        self._metrics_result = self.metrics.result
        # Blacklisting: with no policy the sample pool IS the worker
        # list (same object — identical entropy consumption) and no
        # mirror cluster exists; the hot paths pay one None check.
        self.blacklist_policy = blacklist_policy
        self._slots_per_worker = slots_per_worker
        self._sample_pool: List[Worker] = self.workers
        self._power_of_d = self.config.power_of_d
        self.cluster: Optional[Cluster] = None
        if blacklist_policy is not None or autoscaler is not None:
            # Mirror cluster: membership bookkeeping on the shared
            # substrate (blacklist flags, retirement, free-machine
            # index); its slots are never acquired.
            self.cluster = Cluster(
                num_machines=num_workers,
                slots_per_machine=slots_per_worker,
            )
        self._autoscaler = autoscaler
        self._elastic: Optional[ElasticController] = None
        if autoscaler is not None:
            self._elastic = ElasticController(
                engine=self.sim,
                policy=autoscaler,
                add_machines=self._autoscale_add,
                remove_machines=self._autoscale_remove,
                # O(live workers) per reactive sample — paid only on the
                # sampling cadence, never on the message hot path.
                busy_slots=lambda: sum(
                    w.busy_slots for w in self._sample_pool
                ),
                total_slots=lambda: self.total_slots,
                keep_sampling=lambda: self._active_jobs > 0,
                obs=obs,
            )

    # -- plumbing ----------------------------------------------------------

    def send(self, fn: Callable[..., None], *args) -> None:
        """Deliver a control message after the configured one-way delay.

        Consecutive sends targeting the same delivery tick coalesce into
        one engine event. The coalescing is order-preserving: the batch
        is extended only while the engine's sequence marker equals the
        value recorded right after the batch event was scheduled, which
        proves no other event was scheduled in between — so the messages
        would have occupied exactly those consecutive sequence slots
        anyway.
        """
        self._metrics_result.messages_sent += 1  # record_message(), inlined
        sim = self.sim
        # Engine internals (_now/_seq mirror .now/.sequence_marker()) are
        # read directly: this runs once per control message.
        time = sim._now + self._message_delay
        batch = self._open_batch
        counters = self._counters
        if (
            batch is not None
            and self._open_batch_time == time
            and sim._seq == self._open_batch_seq
        ):
            batch.append((fn, args))
            if counters is not None:
                counters.inc("msg.sent")
                counters.inc("msg.coalesced")
            return
        batch = [(fn, args)]
        self._open_batch = batch
        self._open_batch_time = time
        sim.schedule_at(time, self._deliver_batch, batch)
        self._open_batch_seq = sim._seq
        if counters is not None:
            counters.inc("msg.sent")
            counters.inc("msg.batches")

    def _deliver_batch(
        self, batch: List[Tuple[Callable[..., None], tuple]]
    ) -> None:
        if self._open_batch is batch:
            self._open_batch = None
        if len(batch) > 1:
            # Keep events_processed comparable with unbatched delivery.
            self.sim.credit_events(len(batch) - 1)
        for fn, args in batch:
            fn(*args)

    def sample_workers(self, count: int) -> List[Worker]:
        """Sample ``count`` distinct non-evicted workers (all, if fewer).

        With ``power_of_d == 1`` (the default) this is plain uniform
        sampling over the pool — without a blacklist policy the pool is
        the full worker list, the same object, so entropy use is
        unchanged. With ``power_of_d > 1`` the sampler draws ``d x
        count`` candidates uniformly and keeps the ``count``
        least-loaded (queue depth plus busy slots; ties keep the draw
        order, so the choice is deterministic given the draw).
        """
        pool = self._sample_pool
        if count >= len(pool):
            return list(pool)
        d = self._power_of_d
        if d == 1:
            return self.rng.sample(pool, count)
        candidates = self.rng.sample(pool, min(count * d, len(pool)))
        if len(candidates) <= count:
            return candidates
        order = sorted(
            range(len(candidates)),
            key=lambda i: (
                len(candidates[i].queue) + candidates[i].busy_slots,
                i,
            ),
        )
        return [candidates[i] for i in order[:count]]

    def gossip_for(self, job_id: int):
        """Latest gossip for a job, or None if it completed."""
        scheduler = self._owner.get(job_id)
        if scheduler is None:
            return None
        sj = scheduler.jobs.get(job_id)
        return sj.gossip if sj is not None else None

    def beta(self) -> float:
        if self.config.learn_beta:
            return self.beta_estimator.beta
        return self.config.default_beta

    # -- queued-request index ----------------------------------------------

    def note_request_queued(self, job_id: int, worker_id: int) -> None:
        holders = self._request_holders.setdefault(job_id, {})
        holders[worker_id] = holders.get(worker_id, 0) + 1

    def note_requests_removed(
        self, job_id: int, worker_id: int, count: int = 1
    ) -> None:
        holders = self._request_holders.get(job_id)
        if holders is None:
            return
        left = holders.get(worker_id, 0) - count
        if left > 0:
            holders[worker_id] = left
        else:
            holders.pop(worker_id, None)
            if not holders:
                del self._request_holders[job_id]

    def worker_holds_job(self, job_id: int, worker_id: int) -> bool:
        holders = self._request_holders.get(job_id)
        return holders is not None and worker_id in holders

    def _purge_job_requests(self, job_id: int) -> None:
        """Drop a completed job's queued requests from exactly the
        workers that hold them (O(holders), not O(workers))."""
        holders = self._request_holders.pop(job_id, None)
        if not holders:
            return
        workers = self.workers
        for worker_id in holders:
            workers[worker_id].drop_completed_job(job_id)

    # -- run ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationResult:
        self.sim.schedule_many(
            (
                (job.arrival_time, self._on_job_arrival, (job,))
                for job in self.trace
            ),
            absolute=True,
        )
        if self._elastic is not None:
            self._elastic.prime()
        self.sim.run(until=until)
        self._finalize_diagnostics()
        return self.metrics.result

    def _finalize_diagnostics(self) -> None:
        result = self.metrics.result
        if self.blacklist_policy is not None:
            result.machine_strikes = self.blacklist_policy.strike_totals()
        if self.obs is not None:
            result.obs = self.obs.report()

    def _on_job_arrival(self, job: Job) -> None:
        if self._tracer is not None:
            self._tracer.begin(
                "job",
                "job",
                ("job", job.job_id),
                self.sim.now,
                job=job.job_id,
                tasks=job.num_tasks,
            )
        scheduler = self.schedulers[self._next_scheduler]
        self._next_scheduler = (self._next_scheduler + 1) % len(self.schedulers)
        self._owner[job.job_id] = scheduler
        self._active_jobs += 1
        scheduler.submit_job(job)
        self._ensure_spec_check()
        if self._elastic is not None:
            self._elastic.ensure_sampling()

    def _ensure_spec_check(self) -> None:
        if self._spec_check_scheduled or self._active_jobs == 0:
            return
        self._spec_check_scheduled = True
        self.sim.schedule(
            self.config.speculation_check_interval, self._on_spec_check
        )

    def _on_spec_check(self) -> None:
        self._spec_check_scheduled = False
        if self._active_jobs == 0:
            return
        for scheduler in self.schedulers:
            scheduler.on_spec_check()
        self._ensure_spec_check()

    # -- execution (data plane) ----------------------------------------------

    def start_copy(self, worker: Worker, task: Task, speculative: bool) -> None:
        """Bind an accepted task to the worker's slot and run it."""
        scheduler = self._owner.get(task.job_id)
        sj = scheduler.jobs.get(task.job_id) if scheduler else None
        if worker.evicted:
            # The accept raced the eviction: decline the bind, release
            # the eager occupancy reservation, and requeue a task that
            # has no live copy left to carry it.
            if sj is not None:
                scheduler.on_copy_gone(sj)
                if (
                    not task.is_finished
                    and sj.view.num_live_copies(task) == 0
                ):
                    scheduler.requeue_task(sj, task)
            return
        if sj is None or task.is_finished:
            # Raced with completion between accept and arrival; release the
            # eager occupancy reservation made at accept time.
            if sj is not None:
                scheduler.on_copy_gone(sj)
            worker.maybe_start_episode()
            return
        attempt = sj.view.attempts(task)
        slowdown = self.straggler_model.slowdown(
            self.rng, task, worker.worker_id, attempt
        )
        duration = task.size * slowdown
        copy = self.ledger.launch(
            sj.view,
            task,
            worker.worker_id,
            duration,
            speculative,
            True,
            self._on_copy_finish,
        )
        worker.bind_copy(copy)
        scheduler.on_copy_bound(sj)

    def _on_copy_finish(self, copy: TaskCopy) -> None:
        self.ledger.settle_finished(copy)
        task = copy.task
        scheduler = self._owner.get(task.job_id)
        sj = scheduler.jobs.get(task.job_id) if scheduler else None
        # Freeing the worker's slot may start a new selection episode;
        # that must observe the pre-finish view/gossip, exactly as the
        # pre-ledger simulator did, so the view update comes after.
        self.workers[copy.machine_id].release_copy(copy)
        won = self.ledger.record_finish(copy)
        if sj is None:
            return
        sj.view.remove_copy(copy)
        scheduler.on_copy_gone(sj)

        if won:
            siblings = self.ledger.finish_task(sj.view, copy)
            scheduler.on_task_finished(sj, task)
            for sibling in siblings:
                self._kill_copy(sibling, scheduler, sj)
            if sj.job.is_complete:
                self._complete_job(scheduler, sj)
        if self.blacklist_policy is not None:
            self._observe_blacklist(copy, sj)

    def _kill_copy(
        self,
        copy: TaskCopy,
        scheduler: SchedulerAgent,
        sj: SchedulerJob,
    ) -> None:
        self.ledger.kill(copy, sj.view)
        scheduler.on_copy_gone(sj)
        # The kill travels to the worker as a control message.
        self.metrics.record_message()
        self.workers[copy.machine_id].release_copy(copy)

    def _complete_job(self, scheduler: SchedulerAgent, sj: SchedulerJob) -> None:
        job = sj.job
        self.ledger.record_job_completion(job, self.alpha_estimator)
        scheduler.complete_job(sj)
        self._purge_job_requests(job.job_id)
        self._owner.pop(job.job_id, None)
        self._active_jobs -= 1

    # -- blacklisting (probe/launch path) ------------------------------------

    def _observe_blacklist(self, copy: TaskCopy, sj: SchedulerJob) -> None:
        """Feed one completion to the eviction policy and act on it."""
        obs = self.obs
        if obs is None:
            reinstated, evict = evaluate_completion(
                self.blacklist_policy, self.sim.now, copy, sj.view
            )
        else:
            with obs.timers.phase("policy.evaluate_completion"):
                reinstated, evict = evaluate_completion(
                    self.blacklist_policy, self.sim.now, copy, sj.view
                )
        for worker_id in reinstated:
            self._reinstate_worker(worker_id)
        if evict is not None:
            self._evict_worker(evict)

    def _evict_worker(self, worker_id: int) -> None:
        """Blacklist a worker mid-run: drop it from the probe pool, kill
        its running copies, and requeue tasks whose last copy died."""
        worker = self.workers[worker_id]
        victims = worker.evict()
        # Blacklist + pool refresh BEFORE requeueing, so the replacement
        # probes sent below can never target the worker being evicted.
        self.cluster.blacklist.add(worker_id)
        self._apply_blacklist()
        orphaned: List[Tuple[SchedulerAgent, SchedulerJob, Task]] = []
        for copy in victims:
            scheduler = self._owner.get(copy.task.job_id)
            sj = scheduler.jobs.get(copy.task.job_id) if scheduler else None
            if sj is None:
                continue
            self._kill_copy(copy, scheduler, sj)
            if not copy.task.is_finished:
                orphaned.append((scheduler, sj, copy.task))
        for scheduler, sj, task in orphaned:
            # A task whose ONLY live copy died here is requeued even if
            # that copy was speculative — e.g. its original fell to an
            # earlier eviction while the speculative sibling carried it.
            if sj.view.num_live_copies(task) == 0:
                scheduler.requeue_task(sj, task)
        self.metrics.record_eviction()
        obs = self.obs
        if obs is not None:
            obs.counters.inc("blacklist.evictions")
            if obs.tracer is not None:
                obs.tracer.instant(
                    "blacklist", "evict", self.sim.now, machine=worker_id,
                    victims=len(victims),
                )

    def _reinstate_worker(self, worker_id: int) -> None:
        """Probation served: the worker rejoins the probe pool."""
        self.workers[worker_id].reinstate()
        self.cluster.blacklist.remove(worker_id)
        self._apply_blacklist()
        self.metrics.record_reinstatement()
        obs = self.obs
        if obs is not None:
            obs.counters.inc("blacklist.reinstatements")
            if obs.tracer is not None:
                obs.tracer.instant(
                    "blacklist", "reinstate", self.sim.now, machine=worker_id
                )

    def _apply_blacklist(self) -> None:
        """Propagate the blacklist through the shared cluster substrate
        (machine flags + index rebuild), refresh the probe sample pool,
        and resize the schedulers' ε-fair floors."""
        obs = self.obs
        if obs is None:
            self._rebuild_cluster_state()
        else:
            with obs.timers.phase("index.rebuild"):
                self._rebuild_cluster_state()

    def _rebuild_cluster_state(self) -> None:
        cluster = self.cluster
        cluster.apply_blacklist()
        workers = self.workers
        self._sample_pool = [
            workers[machine_id]
            for machine_id in cluster.index.free_machine_ids()
        ]
        total = len(self._sample_pool) * self._slots_per_worker
        # Live capacity, kept current so external probes (the serving
        # driver's utilization sampler) never count evicted workers.
        self.total_slots = total
        for scheduler in self.schedulers:
            scheduler.on_cluster_resize(total)

    # -- elastic membership (autoscaler resizes) ------------------------------

    def _refresh_membership(self) -> None:
        """Incremental counterpart of :meth:`_rebuild_cluster_state` for
        autoscaler resizes: the mirror cluster's index is already
        delta-updated, so only the derived state (probe sample pool,
        live capacity, ε-fair floors) is rebuilt — no ``apply_blacklist``
        rescan, no Fenwick rebuild."""
        workers = self.workers
        self._sample_pool = [
            workers[machine_id]
            for machine_id in self.cluster.index.free_machine_ids()
        ]
        total = len(self._sample_pool) * self._slots_per_worker
        self.total_slots = total
        for scheduler in self.schedulers:
            scheduler.on_cluster_resize(total)

    def _autoscale_add(self, count: int) -> int:
        """ADD_MACHINE: grow the worker set. New workers take fresh ids
        (append-only, so per-id state everywhere stays valid) and join
        the probe sample pool immediately."""
        for _ in range(count):
            worker_id = len(self.workers)
            self.workers.append(
                Worker(
                    worker_id=worker_id,
                    num_slots=self._slots_per_worker,
                    sim=self,
                )
            )
            self.cluster.add_machine(num_slots=self._slots_per_worker)
        self._refresh_membership()
        return count

    def _autoscale_remove(self, count: int) -> int:
        """REMOVE_MACHINE: retire up to ``count`` workers (highest live
        ids first) through the eviction teardown — kill running copies,
        requeue originals whose last copy died with a fresh probe each —
        but via machine *retirement*, which no later blacklist pass can
        undo. Clamped so at least ``min_machines`` workers stay live."""
        cluster = self.cluster
        floor = max(1, self._autoscaler.min_machines)
        count = min(count, cluster.live_machine_count() - floor)
        if count <= 0:
            return 0
        removed = 0
        orphaned: List[Tuple[SchedulerAgent, SchedulerJob, Task]] = []
        for machine in reversed(cluster.machines):
            if removed >= count:
                break
            if machine.retired or machine.blacklisted:
                continue
            worker = self.workers[machine.machine_id]
            victims = worker.evict()
            cluster.remove_machine(machine.machine_id)
            for copy in victims:
                scheduler = self._owner.get(copy.task.job_id)
                sj = scheduler.jobs.get(copy.task.job_id) if scheduler else None
                if sj is None:
                    continue
                self._kill_copy(copy, scheduler, sj)
                if not copy.task.is_finished:
                    orphaned.append((scheduler, sj, copy.task))
            removed += 1
        # Pool refresh BEFORE requeueing (same ordering as eviction), so
        # the replacement probes can never target a retired worker.
        self._refresh_membership()
        for scheduler, sj, task in orphaned:
            if sj.view.num_live_copies(task) == 0:
                scheduler.requeue_task(sj, task)
        return removed
