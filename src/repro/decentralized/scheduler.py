"""Per-job schedulers implementing Pseudocode 2.

Each scheduler owns a subset of jobs. It pushes reservation requests to
random workers at job submission, answers worker slot offers (accept /
refuse / no-task), runs the job's speculation algorithm, and piggybacks
virtual-size, remaining-count and starvation updates on its messages
(modelled by refreshing the shared :class:`JobGossip`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.decentralized.messages import JobGossip, Request, ResponseType
from repro.runtime import JobRuntime
from repro.speculation.base import SpeculationPolicy
from repro.workload.job import Job
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.decentralized.simulator import DecentralizedSimulator
    from repro.decentralized.worker import Episode, Worker


class SchedulerJob(JobRuntime):
    """Scheduler-side runtime state for one job: the shared
    :class:`repro.runtime.JobRuntime` core plus the gossip / probe
    accounting only the decentralized protocol needs."""

    __slots__ = (
        "gossip",
        "occupied",
        "probes_sent",
        "spec_probed_tasks",
        "last_activity",
    )

    def __init__(
        self,
        job: Job,
        gossip: JobGossip,
        spec_policy: SpeculationPolicy,
        now: float,
    ) -> None:
        super().__init__(job, spec_policy)
        self.gossip = gossip
        self.occupied = 0  # running copies across the cluster
        self.probes_sent = 0
        self.spec_probed_tasks: Set[int] = set()
        self.last_activity = now

    def next_pending(self) -> Optional[Task]:
        return self.pop_pending()


class SchedulerAgent:
    """One autonomous scheduler (of many)."""

    def __init__(self, scheduler_id: int, sim: "DecentralizedSimulator") -> None:
        self.scheduler_id = scheduler_id
        self.sim = sim
        # Hot-path handles: the engine's clock is read on every offer and
        # every candidate-cache check. Config is immutable after simulator
        # construction, so its per-offer scalars are snapshotted here.
        self._engine = sim.sim
        self.jobs: Dict[int, SchedulerJob] = {}
        config = sim.config
        self._fairness_off = config.epsilon >= 1.0
        # (1 - eps) * slots, pre-multiplied so _fair_share keeps the exact
        # float operation order of ((1 - eps) * slots) / n_est.
        self._fair_numerator = (1.0 - config.epsilon) * sim.total_slots
        self._num_schedulers = config.num_schedulers
        self._use_alpha = config.use_alpha
        from repro.decentralized.config import WorkerPolicy

        self._spec_eligible_requests = (
            config.worker_policy is WorkerPolicy.HOPPER
        )
        self._late_binding = config.late_binding
        self._send = sim.send
        self._counters = sim._counters  # None unless observability is on

    # -- job lifecycle -----------------------------------------------------

    def submit_job(self, job: Job) -> None:
        gossip = JobGossip(
            job_id=job.job_id,
            scheduler_id=self.scheduler_id,
            virtual_size=0.0,
            remaining_tasks=job.remaining_tasks(),
        )
        sj = SchedulerJob(
            job=job,
            gossip=gossip,
            spec_policy=self.sim.speculation_factory(),
            now=self.sim.sim.now,
        )
        self.jobs[job.job_id] = sj
        fresh = sj.activate_runnable_phases()
        self._refresh_gossip(sj)
        self._send_probes(sj, len(fresh))

    def _requests_are_spec_eligible(self) -> bool:
        """Hopper's coordination: every reservation request can be
        redeemed for a speculative copy. The baselines must issue fresh
        probes per speculative copy instead (see Request.spec_ok)."""
        return self._spec_eligible_requests

    def _send_probes(
        self, sj: SchedulerJob, num_tasks: int, spec_ok: Optional[bool] = None
    ) -> None:
        if num_tasks <= 0:
            return
        if spec_ok is None:
            spec_ok = self._requests_are_spec_eligible()
        budget = self.sim.config.max_probes_per_job - sj.probes_sent
        count = min(
            int(math.ceil(self.sim.config.probe_ratio * num_tasks)),
            max(budget, 0),
        )
        if count <= 0:
            return
        sj.probes_sent += count
        workers = self.sim.sample_workers(count)
        now = self.sim.sim.now
        # One immutable Request serves the whole burst: each worker
        # queues it in its own list, so sharing is observationally
        # identical to per-worker instances (and k-1 allocations cheaper).
        request = Request(gossip=sj.gossip, enqueue_time=now, spec_ok=spec_ok)
        send = self.sim.send
        for worker in workers:
            send(worker.on_request, request)
        if self._counters is not None:
            self._counters.inc("probe.sent", len(workers))
        sj.last_activity = now

    def _send_baseline_spec_probes(self, sj: SchedulerJob) -> None:
        """Sparrow/Sparrow-SRPT: each newly flagged straggler gets fresh,
        speculation-eligible probes that join the back of worker queues."""
        fresh = 0
        for request in self._candidates(sj):
            task_id = request.task.task_id
            if task_id in sj.spec_probed_tasks:
                continue
            sj.spec_probed_tasks.add(task_id)
            fresh += 1
        if fresh:
            self._send_probes(sj, fresh, spec_ok=True)

    # -- gossip / estimation -----------------------------------------------

    def _virtual_size(
        self, sj: SchedulerJob, remaining: Optional[int] = None
    ) -> float:
        beta = self.sim.beta()
        alpha = 1.0
        if self._use_alpha and len(sj.job.phases) > 1:
            alpha = self.sim.alpha_estimator.predict_alpha(sj.job)
        if remaining is None:
            remaining = sj.job.remaining_tasks()
        # Inlined repro.core.virtual_size.virtual_size (identical float
        # operations in identical order) — this runs per gossip refresh.
        if remaining == 0:
            return 0.0
        threshold = 2.0 / beta
        if threshold < 1.0:
            threshold = 1.0
        size = threshold * remaining * math.sqrt(alpha)
        remaining_f = float(remaining)
        return size if size > remaining_f else remaining_f

    def _fair_share(self) -> float:
        """Approximate ε-fair floor using only local knowledge."""
        n_local = len(self.jobs)
        if n_local == 0:
            return 0.0
        return self._fair_numerator / (n_local * self._num_schedulers)

    def _refresh_gossip(self, sj: SchedulerJob) -> None:
        gossip = sj.gossip
        remaining = sj.job.remaining_tasks()
        gossip.virtual_size = self._virtual_size(sj, remaining)
        gossip.remaining_tasks = remaining
        if self._fairness_off:
            gossip.starved = False
        else:
            gossip.starved = (
                sj.occupied < self._fair_share() and self._has_demand(sj)
            )

    # -- speculation --------------------------------------------------------

    def _candidates(self, sj: SchedulerJob) -> list:
        return sj.speculation_candidates(self._engine._now, 0.25)

    def _next_speculative_task(self, sj: SchedulerJob) -> Optional[Task]:
        candidates = self._candidates(sj)
        if not candidates:
            return None
        copies_by_task = sj.view.copies_by_task
        max_copies = sj.spec_policy.max_copies_per_task()
        for request in candidates:
            task = request.task
            if task.is_finished:
                continue
            live = copies_by_task.get(task.task_id)
            if live is not None and len(live) >= max_copies:
                continue
            return task
        return None

    def _has_demand(self, sj: SchedulerJob) -> bool:
        return sj.has_pending() or self._next_speculative_task(sj) is not None

    def _smallest_unsatisfied(self) -> Optional[Tuple[float, int, int]]:
        """(virtual size, job id, scheduler id) of this scheduler's
        smallest job that still wants slots (attached to refusals)."""
        best: Optional[Tuple[float, int, int]] = None
        for sj in self.jobs.values():
            if sj.occupied >= sj.gossip.virtual_size:
                continue
            if not self._has_demand(sj):
                continue
            entry = (sj.gossip.virtual_size, sj.job.job_id, self.scheduler_id)
            if best is None or entry < best:
                best = entry
        return best

    # -- Pseudocode 2: answering slot offers ---------------------------------

    def on_slot_offer(
        self,
        worker: "Worker",
        episode: "Episode",
        request,
        rtype: ResponseType,
    ) -> None:
        job_id = request.gossip.job_id
        sj = self.jobs.get(job_id)
        if sj is None or sj.job.is_complete:
            self._send(worker.on_no_task, episode, request)
            return
        sj.last_activity = self._engine._now
        self._refresh_gossip(sj)

        if self._late_binding:
            self._offer_reservation(worker, episode, request, rtype, sj)
            return

        task = sj.next_pending()
        speculative = False
        if task is None and request.spec_ok:
            # Speculative copies only ever come from the job's speculation
            # algorithm (Hopper is compatible with, not a replacement for,
            # LATE/Mantri/GRASS). A refusable offer is honoured only while
            # the job sits below its desired speculation level (its
            # virtual size) or below its ε-fair floor; a non-refusable
            # offer is a worker's Guideline-3 grant of extra capacity.
            below_virtual = sj.occupied < sj.gossip.virtual_size
            allowed = (
                rtype is ResponseType.NON_REFUSABLE
                or below_virtual
                or sj.gossip.starved
            )
            if allowed:
                task = self._next_speculative_task(sj)
                speculative = task is not None

        if task is not None:
            sj.occupied += 1  # reserve eagerly; confirmed when copy binds
            self._send(
                worker.on_accept, episode, request, task, speculative
            )
            return

        if not self._has_demand(sj) and sj.occupied == 0:
            # Nothing running and nothing to run: workers can drop us.
            self._send(worker.on_no_task, episode, request)
            return
        self._send(
            worker.on_refuse, episode, request, self._smallest_unsatisfied()
        )

    # -- Sparrow late binding -------------------------------------------------

    def _offer_reservation(
        self,
        worker: "Worker",
        episode: "Episode",
        request,
        rtype: ResponseType,
        sj: SchedulerJob,
    ) -> None:
        """Late-binding accept path: grant a reservation without picking
        a task; the concrete task is popped when the worker pulls it
        (:meth:`on_pull`), one message round-trip later."""
        wants = sj.has_pending()
        if not wants and request.spec_ok:
            below_virtual = sj.occupied < sj.gossip.virtual_size
            allowed = (
                rtype is ResponseType.NON_REFUSABLE
                or below_virtual
                or sj.gossip.starved
            )
            if allowed and self._next_speculative_task(sj) is not None:
                wants = True
        if wants:
            sj.occupied += 1  # reserve eagerly; released on pull miss
            self._send(worker.on_reserve, episode, request)
            return
        if not self._has_demand(sj) and sj.occupied == 0:
            self._send(worker.on_no_task, episode, request)
            return
        self._send(
            worker.on_refuse, episode, request, self._smallest_unsatisfied()
        )

    def on_pull(self, worker: "Worker", episode: "Episode", request) -> None:
        """Redeem a late-binding reservation for a concrete task.

        The task is bound only now, at execution time — the whole point
        of late binding: whichever reservation's worker frees up first
        gets the job's next pending task. If demand evaporated between
        reserve and pull (another reservation drained the queue), the
        reservation is released and the worker told there is no task.
        """
        job_id = request.gossip.job_id
        sj = self.jobs.get(job_id)
        if sj is None or sj.job.is_complete:
            # Job completion already dropped its bookkeeping; nothing to
            # release.
            self._send(worker.on_no_task, episode, request)
            return
        sj.last_activity = self._engine._now
        self._refresh_gossip(sj)
        task = sj.next_pending()
        speculative = False
        if task is None and request.spec_ok:
            task = self._next_speculative_task(sj)
            speculative = task is not None
        if task is not None:
            self._send(
                worker.on_accept, episode, request, task, speculative
            )
            return
        sj.occupied -= 1  # release the reservation granted at offer time
        self._send(worker.on_no_task, episode, request)

    # -- execution callbacks (data plane) ------------------------------------

    def on_copy_bound(self, sj: SchedulerJob) -> None:
        sj.spec_dirty = True
        sj.last_activity = self.sim.sim.now

    def on_copy_gone(self, sj: SchedulerJob) -> None:
        sj.occupied -= 1
        sj.spec_dirty = True

    def on_task_finished(self, sj: SchedulerJob, task: Task) -> None:
        """React to a task completing (the simulator already marked it
        finished and collected the race losers via the copy ledger)."""
        sj.spec_dirty = True
        fresh = sj.activate_runnable_phases()
        if fresh:
            self._send_probes(sj, len(fresh))
        self._refresh_gossip(sj)

    def requeue_task(self, sj: SchedulerJob, task: Task) -> None:
        """A worker eviction killed the task's last running copy: put it
        back in the pending queue and probe for a fresh slot."""
        if sj.requeue(task):
            self._refresh_gossip(sj)
            self._send_probes(sj, 1)

    def on_cluster_resize(self, total_slots: int) -> None:
        """Eviction/reinstatement changed the usable slot count; refresh
        the snapshotted ε-fair numerator (see ``_fair_share``)."""
        self._fair_numerator = (1.0 - self.sim.config.epsilon) * total_slots

    def complete_job(self, sj: SchedulerJob) -> None:
        sj.gossip.active = False
        del self.jobs[sj.job.job_id]

    # -- periodic maintenance -------------------------------------------------

    def on_spec_check(self) -> None:
        """Periodic straggler scan + gossip refresh + liveness nudge."""
        now = self.sim.sim.now
        interval = self.sim.config.speculation_check_interval
        spec_eligible_requests = self._requests_are_spec_eligible()
        for sj in list(self.jobs.values()):
            sj.spec_dirty = True
            self._refresh_gossip(sj)
            if not spec_eligible_requests:
                self._send_baseline_spec_probes(sj)
            if (
                self.sim.config.nudge_probes > 0
                and self._has_demand(sj)
                and now - sj.last_activity > interval
            ):
                sj.probes_sent = min(
                    sj.probes_sent, self.sim.config.max_probes_per_job - 1
                )
                self._nudge(sj)

    def _nudge(self, sj: SchedulerJob) -> None:
        workers = self.sim.sample_workers(self.sim.config.nudge_probes)
        now = self.sim.sim.now
        request = Request(gossip=sj.gossip, enqueue_time=now, spec_ok=True)
        for worker in workers:
            self.sim.send(worker.on_request, request)
        if self._counters is not None:
            self._counters.inc("probe.sent", len(workers))
        sj.last_activity = now
