"""Configuration for the decentralized simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WorkerPolicy(enum.Enum):
    """How a worker picks the next queued request when a slot frees.

    FIFO:
        Stock Sparrow: requests in arrival order.
    SRPT:
        Sparrow-SRPT (the paper's aggressive baseline): the request whose
        job has the fewest remaining unfinished tasks.
    HOPPER:
        Pseudocode 3: ascending virtual size with refusable responses;
        after ``refusal_threshold`` refusals the worker concludes the
        system is not capacity constrained and samples a job weighted by
        virtual size (Guideline 3), sending a non-refusable response; if
        refusals revealed unsatisfied jobs, the non-refusable response
        goes to the smallest of them (Guideline 2).
    """

    FIFO = "fifo"
    SRPT = "srpt"
    HOPPER = "hopper"


@dataclass
class DecentralizedConfig:
    """Tunables for :class:`DecentralizedSimulator`.

    Attributes
    ----------
    num_schedulers:
        Independent schedulers; jobs are assigned round-robin.
    probe_ratio:
        Reservation requests per task (the paper recommends ~4 — the
        "power of many choices", §5.1).
    refusal_threshold:
        Consecutive refusals before a worker switches to Guideline 3
        (2-3 suffice per Fig. 5b).
    message_delay:
        One-way latency of any scheduler<->worker message.
    worker_policy:
        See :class:`WorkerPolicy`.
    epsilon:
        Fairness knob; 1.0 disables fairness. Schedulers flag jobs below
        ``(1-eps) * total_slots / N_est`` as starved; workers serve
        starved jobs first. N_est is the scheduler's own job count scaled
        by the number of schedulers (a piggyback-only approximation, see
        DESIGN.md).
    speculation_check_interval:
        Scheduler-side straggler-scan period.
    default_beta / learn_beta:
        Virtual-size tail index (shared estimator fed by completed tasks).
    use_alpha:
        Weight virtual sizes by sqrt(alpha) for DAG jobs.
    nudge_probes:
        Fresh probes sent when a job has unmet demand but its requests
        have gone quiet (liveness valve for drained queues).
    late_binding:
        Sparrow late binding: a probe reserves a slot without carrying
        a task; the worker pulls the concrete task when the slot is
        ready to execute (one extra message round-trip per launch).
    power_of_d:
        Probe-target oversampling factor: sample ``d`` times the probe
        count uniformly and keep the least-loaded workers. ``1`` is
        plain uniform sampling (byte-identical to the stock path).
    """

    num_schedulers: int = 10
    probe_ratio: float = 4.0
    refusal_threshold: int = 2
    message_delay: float = 0.0005
    worker_policy: WorkerPolicy = WorkerPolicy.HOPPER
    epsilon: float = 0.1
    speculation_check_interval: float = 1.0
    default_beta: float = 1.5
    learn_beta: bool = True
    use_alpha: bool = True
    network_rate: float = 1.0
    nudge_probes: int = 2
    max_probes_per_job: int = 2000
    late_binding: bool = False
    power_of_d: int = 1

    def __post_init__(self) -> None:
        if self.num_schedulers <= 0:
            raise ValueError("num_schedulers must be positive")
        if self.probe_ratio < 1.0:
            raise ValueError("probe_ratio must be >= 1")
        if self.refusal_threshold < 0:
            raise ValueError("refusal_threshold must be non-negative")
        if self.message_delay < 0:
            raise ValueError("message_delay must be non-negative")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if self.speculation_check_interval <= 0:
            raise ValueError("speculation_check_interval must be positive")
        if self.nudge_probes < 0:
            raise ValueError("nudge_probes must be non-negative")
        if self.max_probes_per_job < 1:
            raise ValueError("max_probes_per_job must be positive")
        if self.power_of_d < 1:
            raise ValueError("power_of_d must be >= 1")
