"""Workers: late-binding slot holders implementing Pseudocode 3.

When a slot frees, a worker runs a *selection episode*: it offers the slot
to the scheduler of the most promising queued request. Under the HOPPER
policy the offer is *refusable* and ordered by ascending virtual size;
each refusal teaches the worker about unsatisfied jobs elsewhere; after a
threshold of refusals the worker either serves the smallest unsatisfied
job (non-refusably) or concludes the system is not capacity constrained
and samples a job proportionally to virtual size (Guideline 3).

Sparrow (FIFO) and Sparrow-SRPT workers send only non-refusable offers and
treat original and speculative reservation requests as distinct queue
entries (speculative copies wait their turn — the §5.1 friction Hopper
removes).

Queue invariant: ``self.queue`` only ever contains requests of *active*
jobs. Requests arriving for an already-completed job are dropped on
arrival, and the simulator eagerly purges a job's queued requests from
its holders (via the per-job request index) the moment it completes —
so candidate scans never pay for tombstones of finished jobs.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, TYPE_CHECKING

from repro.decentralized.config import WorkerPolicy
from repro.decentralized.messages import Request, ResponseType
from repro.stragglers.progress import TaskCopy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.decentralized.simulator import DecentralizedSimulator


class Episode:
    """One slot-selection episode (possibly spanning several refusals)."""

    __slots__ = ("worker", "refusals", "tried", "unsatisfied")

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker
        self.refusals = 0
        # (job_id, spec_ok) pairs already offered during this episode,
        # encoded as job_id*2 + spec_ok (cheaper to hash than tuples)
        self.tried: Set[int] = set()
        # (virtual_size, job_id, scheduler_id) tuples learned from refusals
        self.unsatisfied: List[Tuple[float, int, int]] = []


class Worker:
    """A machine with task slots and a queue of reservation requests."""

    __slots__ = (
        "worker_id",
        "num_slots",
        "sim",
        "queue",
        "busy_slots",
        "pending_episodes",
        "running",
        "evicted",
        "_policy",
        "_refusal_threshold",
        "_result",
        "_counters",
    )

    def __init__(
        self,
        worker_id: int,
        num_slots: int,
        sim: "DecentralizedSimulator",
    ) -> None:
        self.worker_id = worker_id
        self.num_slots = num_slots
        self.sim = sim
        self.queue: List[Request] = []
        self.busy_slots = 0
        self.pending_episodes = 0  # episodes awaiting a scheduler reply
        self.running: List[TaskCopy] = []
        self.evicted = False  # blacklisted mid-run; no queueing/episodes
        # Config is immutable after simulator construction; snapshot the
        # per-episode-step scalars.
        self._policy = sim.config.worker_policy
        self._refusal_threshold = sim.config.refusal_threshold
        # Drop accounting: requests that can never be honoured (evicted
        # target, completed job) are counted instead of vanishing.
        self._result = sim.metrics.result
        self._counters = sim._counters  # None unless observability is on

    # -- bookkeeping -------------------------------------------------------

    @property
    def available_slots(self) -> int:
        """Slots neither running a copy nor promised to an episode."""
        return self.num_slots - self.busy_slots - self.pending_episodes

    def purge_job(self, job_id: int) -> None:
        """Drop all queued requests of ``job_id`` (scheduler said no-task)."""
        if not self.sim.worker_holds_job(job_id, self.worker_id):
            return
        before = len(self.queue)
        self.queue = [r for r in self.queue if r.job_id != job_id]
        removed = before - len(self.queue)
        if removed:
            self.sim.note_requests_removed(job_id, self.worker_id, removed)
            self._result.requests_dropped += removed
            if self._counters is not None:
                self._counters.inc("probe.purged", removed)

    def drop_completed_job(self, job_id: int) -> None:
        """Index-driven purge on job completion (index entry already
        removed by the caller, so no unregistration here)."""
        before = len(self.queue)
        self.queue = [r for r in self.queue if r.job_id != job_id]
        removed = before - len(self.queue)
        if removed:
            self._result.requests_dropped += removed
            if self._counters is not None:
                self._counters.inc("probe.purged", removed)

    def consume_request(self, request: Request) -> None:
        """Remove this exact queued request (on task assignment)."""
        try:
            self.queue.remove(request)
        except ValueError:
            return
        self.sim.note_requests_removed(request.job_id, self.worker_id)
        if self._counters is not None:
            self._counters.inc("probe.consumed")

    def evict(self) -> List[TaskCopy]:
        """Blacklist this worker mid-run (the §2.2 eviction path).

        Stops future episodes, drops every queued reservation request
        (keeping the per-job request index consistent), and returns the
        running copies for the simulator to kill and reschedule. An
        in-flight slot offer may still come back as an accept; the
        simulator declines it at bind time (see ``start_copy``).
        """
        self.evicted = True
        for request in self.queue:
            self.sim.note_requests_removed(request.job_id, self.worker_id)
        dropped = len(self.queue)
        if dropped:
            self._result.requests_dropped += dropped
            if self._counters is not None:
                self._counters.inc("probe.purged", dropped)
        self.queue.clear()
        return list(self.running)

    def reinstate(self) -> None:
        """Probation served: the worker may queue requests again."""
        self.evicted = False

    # -- protocol ----------------------------------------------------------

    def on_request(self, request: Request) -> None:
        """A reservation request arrives (after network delay)."""
        if self.evicted:
            # Raced the eviction: the probe is lost — but counted.
            self._result.requests_dropped += 1
            if self._counters is not None:
                self._counters.inc("probe.dropped")
            return
        if request.gossip.active:
            self.queue.append(request)
            self.sim.note_request_queued(request.job_id, self.worker_id)
            if self._counters is not None:
                self._counters.inc("probe.queued")
        else:
            # Raced job completion: dropped on arrival, counted.
            self._result.requests_dropped += 1
            if self._counters is not None:
                self._counters.inc("probe.dropped")
        # A request that raced job completion is dropped, but may still
        # wake the slot: with lazy purging its arrival would have
        # triggered the same episode scan.
        self.maybe_start_episode()

    def maybe_start_episode(self) -> None:
        if self.evicted:
            return
        if self.num_slots - self.busy_slots - self.pending_episodes <= 0:
            return
        if not self.queue:
            return
        episode = Episode(self)
        self.pending_episodes += 1
        self._episode_step(episode)

    def _candidates(self, episode: Episode) -> List[Request]:
        """One representative request per untried (job, spec_ok) pair."""
        # Seed the dedup set with the already-tried keys: one membership
        # test per queued request instead of two (tried is tiny).
        seen: Set[int] = set(episode.tried)
        add = seen.add
        unique: List[Request] = []
        append = unique.append
        for request in self.queue:
            key = request.gossip.job_id * 2 + request.spec_ok
            if key in seen:
                continue
            add(key)
            append(request)
        return unique

    def _episode_step(self, episode: Episode) -> None:
        """Pick the next request to offer the slot to (Pseudocode 3)."""
        candidates = self._candidates(episode)
        if not candidates:
            self._finish_episode_idle(episode)
            return

        policy = self._policy
        if policy is WorkerPolicy.FIFO:
            request = min(candidates, key=lambda r: r.enqueue_time)
            self._offer(episode, request, ResponseType.NON_REFUSABLE)
            return
        if policy is WorkerPolicy.SRPT:
            request = min(
                candidates,
                key=lambda r: (r.gossip.remaining_tasks, r.enqueue_time),
            )
            self._offer(episode, request, ResponseType.NON_REFUSABLE)
            return

        # HOPPER policy -------------------------------------------------
        # One fused pass finds both the smallest starved request (served
        # before everything else, ε-fairness) and the (virtual size,
        # enqueue time)-smallest overall — first-minimal wins on ties,
        # exactly like the min() calls this replaces.
        best_starved: Optional[Request] = None
        best_starved_vs = 0.0
        best = candidates[0]
        gossip = best.gossip
        best_vs = gossip.virtual_size
        best_time = best.enqueue_time
        if gossip.starved:
            best_starved = best
            best_starved_vs = best_vs
        for request in candidates:
            gossip = request.gossip
            vs = gossip.virtual_size
            if gossip.starved and (
                best_starved is None or vs < best_starved_vs
            ):
                best_starved = request
                best_starved_vs = vs
            if vs < best_vs or (
                vs == best_vs and request.enqueue_time < best_time
            ):
                best = request
                best_vs = vs
                best_time = request.enqueue_time
        if best_starved is not None:
            self._offer(episode, best_starved, ResponseType.REFUSABLE)
            return

        if episode.refusals >= self._refusal_threshold:
            self.sim.metrics.record_guideline_decision(
                constrained=bool(episode.unsatisfied)
            )
            if episode.unsatisfied:
                # Capacity constrained: serve the smallest unsatisfied job.
                entry = min(episode.unsatisfied)
                episode.unsatisfied.remove(entry)
                _, job_id, scheduler_id = entry
                request = self._request_for(candidates, job_id)
                if request is None:
                    # No queued request for it: answer it directly.
                    self._offer_direct(
                        episode, job_id, scheduler_id,
                        ResponseType.NON_REFUSABLE,
                    )
                    return
                self._offer(episode, request, ResponseType.NON_REFUSABLE)
                return
            # Not capacity constrained: Guideline 3 — sample a job
            # proportionally to its virtual size.
            request = self._weighted_pick(candidates)
            self._offer(episode, request, ResponseType.NON_REFUSABLE)
            return

        self._offer(episode, best, ResponseType.REFUSABLE)

    @staticmethod
    def _request_for(
        candidates: List[Request], job_id: int
    ) -> Optional[Request]:
        for request in candidates:
            if request.job_id == job_id:
                return request
        return None

    def _weighted_pick(self, candidates: List[Request]) -> Request:
        weights = [max(r.gossip.virtual_size, 1e-9) for r in candidates]
        total = sum(weights)
        u = self.sim.rng.random() * total
        acc = 0.0
        for request, weight in zip(candidates, weights):
            acc += weight
            if u <= acc:
                return request
        return candidates[-1]

    def _offer(
        self,
        episode: Episode,
        request: Request,
        rtype: ResponseType,
    ) -> None:
        gossip = request.gossip
        episode.tried.add(gossip.job_id * 2 + request.spec_ok)
        scheduler = self.sim.schedulers[gossip.scheduler_id]
        self.sim.send(scheduler.on_slot_offer, self, episode, request, rtype)

    def _offer_direct(
        self,
        episode: Episode,
        job_id: int,
        scheduler_id: int,
        rtype: ResponseType,
    ) -> None:
        """Offer a slot to a job learned about via refusal gossip (no
        queued request of ours). A synthetic speculation-eligible request
        is created for the offer."""
        gossip = self.sim.gossip_for(job_id)
        if gossip is None or not gossip.active:
            self._episode_step(episode)
            return
        scheduler = self.sim.schedulers[scheduler_id]
        synthetic = Request(
            gossip=gossip, enqueue_time=self.sim.sim.now, spec_ok=True
        )
        episode.tried.add(job_id * 2 + 1)
        self.sim.send(scheduler.on_slot_offer, self, episode, synthetic, rtype)

    def _finish_episode_idle(self, episode: Episode) -> None:
        """No acceptable request: the slot stays free."""
        self.pending_episodes -= 1

    # -- replies from schedulers -------------------------------------------

    def on_accept(
        self, episode: Episode, request: Request, task, speculative: bool
    ) -> None:
        """Scheduler sent a task: bind it to the promised slot."""
        self.pending_episodes -= 1
        self.consume_request(request)
        self.sim.start_copy(self, task, speculative)
        # More slots may still be free (multi-slot workers).
        self.maybe_start_episode()

    def on_reserve(self, episode: Episode, request: Request) -> None:
        """Late binding: the scheduler granted a reservation without a
        task. The slot is ready right now, so pull the concrete task —
        the extra round-trip is the price of binding at execution time.
        The episode's slot promise stays held until the pull resolves
        (:meth:`on_accept` or :meth:`on_no_task`)."""
        scheduler = self.sim.schedulers[request.gossip.scheduler_id]
        self.sim.send(scheduler.on_pull, self, episode, request)

    def on_refuse(
        self,
        episode: Episode,
        request: Request,
        unsatisfied: Optional[Tuple[float, int, int]],
    ) -> None:
        """Refusable offer declined (job at its desired speculation level)."""
        episode.refusals += 1
        if unsatisfied is not None:
            episode.unsatisfied.append(unsatisfied)
        self._episode_step(episode)

    def on_no_task(self, episode: Episode, request: Request) -> None:
        """Job has nothing left at all — purge and keep looking."""
        self.purge_job(request.job_id)
        self._episode_step(episode)

    # -- execution ----------------------------------------------------------

    def bind_copy(self, copy: TaskCopy) -> None:
        self.busy_slots += 1
        self.running.append(copy)

    def release_copy(self, copy: TaskCopy) -> None:
        self.busy_slots -= 1
        try:
            self.running.remove(copy)
        except ValueError:
            pass
        self.maybe_start_episode()
