"""Message and piggybacked-state types for the decentralized protocol.

The paper's schedulers piggyback virtual-size updates on messages that
flow anyway (§5.3). We model that with a :class:`JobGossip` object shared
between a job's scheduler and the workers holding its requests: the
scheduler refreshes it whenever it touches the job, and workers read it
when making queue decisions. This slightly over-approximates freshness
(a worker may see an update without a message addressed to it); the
approximation is called out in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResponseType(enum.Enum):
    """Worker -> scheduler slot offers (Pseudocode 3)."""

    REFUSABLE = "refusable"
    NON_REFUSABLE = "non_refusable"


class SchedulerReply(enum.Enum):
    """Scheduler -> worker replies to a slot offer (Pseudocode 2)."""

    ACCEPT = "accept"  # a task descriptor accompanies the reply
    REFUSE = "refuse"  # job already at its desired speculation level
    NO_TASK = "no_task"  # job finished / nothing left — purge requests


@dataclass(slots=True)
class JobGossip:
    """Piggybacked per-job state, written by the scheduler.

    Attributes
    ----------
    job_id / scheduler_id:
        Identity.
    virtual_size:
        Current V_i(t) (refreshed on any message touching the job).
    remaining_tasks:
        Unfinished task count (Sparrow-SRPT's key).
    starved:
        True when the job sits below its ε-fair share.
    active:
        False once the job completes (workers purge its requests).
    """

    job_id: int
    scheduler_id: int
    virtual_size: float
    remaining_tasks: int
    starved: bool = False
    active: bool = True


@dataclass(slots=True)
class Request:
    """A reservation request queued at one worker.

    ``spec_ok`` marks whether this request may be redeemed for a
    *speculative* copy. Decentralized Hopper's requests are all
    speculation-eligible — that is the coordination. The Sparrow /
    Sparrow-SRPT baselines mirror real deployments: original probes are
    original-only, and when LATE decides to speculate, the scheduler
    issues *fresh* probes that join the back of worker queues — the
    "long waiting time for speculative copies in the queues" of §5.1.
    """

    gossip: JobGossip
    enqueue_time: float
    spec_ok: bool = True

    @property
    def job_id(self) -> int:
        return self.gossip.job_id

    @property
    def scheduler_id(self) -> int:
        return self.gossip.scheduler_id
