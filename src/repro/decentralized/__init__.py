"""Decentralized scheduling: Sparrow, Sparrow-SRPT and decentralized Hopper.

Multiple autonomous schedulers place reservation requests ("probes") on
workers; workers *late-bind*: when a slot frees, the worker picks a queued
request and asks the owning scheduler for a task. Hopper's worker policy
implements Pseudocode 3 (SRPT-by-virtual-size with refusable responses and
a non-refusable fallback); schedulers implement Pseudocode 2.
"""

from repro.decentralized.config import DecentralizedConfig, WorkerPolicy
from repro.decentralized.messages import (
    JobGossip,
    Request,
    ResponseType,
)
from repro.decentralized.simulator import DecentralizedSimulator

__all__ = [
    "DecentralizedConfig",
    "WorkerPolicy",
    "JobGossip",
    "Request",
    "ResponseType",
    "DecentralizedSimulator",
]
