"""LATE — Longest Approximate Time to End (Zaharia et al., OSDI 2008).

Deployed in Facebook's clusters (§7.2). Decision rule, as in the original
paper, adapted to our progress model:

* only consider tasks that have run at least ``detect_after`` time units
  (progress estimates are meaningless earlier);
* rank running tasks by *estimated time left*; speculate the ones with the
  longest time left whose progress rate is below the ``slow_task_pct``
  percentile of the job's running progress rates (the "slow task
  threshold");
* only launch a copy if the estimated time left exceeds the estimated
  duration of a fresh copy (otherwise speculation cannot win the race);
* cap the number of simultaneously speculating tasks per job
  (``speculative_cap_fraction`` of running tasks, min 1).
"""

from __future__ import annotations

from typing import List

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)


class LATE(SpeculationPolicy):
    name = "late"

    def __init__(
        self,
        detect_after: float = 1.0,
        slow_task_pct: float = 0.25,
        speculative_cap_fraction: float = 0.1,
        max_copies: int = 2,
    ) -> None:
        if detect_after < 0:
            raise ValueError("detect_after must be non-negative")
        if not 0.0 < slow_task_pct <= 1.0:
            raise ValueError("slow_task_pct must be in (0, 1]")
        if not 0.0 < speculative_cap_fraction <= 1.0:
            raise ValueError("speculative_cap_fraction must be in (0, 1]")
        if max_copies < 2:
            raise ValueError("max_copies must be >= 2")
        self.detect_after = detect_after
        self.slow_task_pct = slow_task_pct
        self.speculative_cap_fraction = speculative_cap_fraction
        self.max_copies = max_copies

    def max_copies_per_task(self) -> int:
        return self.max_copies

    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        running = view.running_copies()
        if not running:
            return []

        # Slow-task threshold: progress-rate percentile among running copies.
        rates = sorted(
            1.0 / c.duration for c in running if now > c.start_time
        )
        if rates:
            idx = max(0, min(len(rates) - 1, int(self.slow_task_pct * len(rates))))
            rate_threshold = rates[idx]
        else:
            rate_threshold = float("inf")

        # How many tasks may speculate at once.
        num_running_tasks = len(view.running_unfinished_tasks())
        cap = max(1, int(self.speculative_cap_fraction * num_running_tasks))
        already_speculating = sum(
            1
            for copies in view.copies_by_task.values()
            if sum(1 for c in copies if c.is_running) > 1
        )
        budget = cap - already_speculating
        if budget <= 0:
            return []

        requests: List[SpeculationRequest] = []
        for task in view.running_unfinished_tasks():
            copies = view.copies_of(task)
            if len(copies) >= self.max_copies_per_task():
                continue
            slowest = max(copies, key=lambda c: c.duration)
            if now - slowest.start_time < self.detect_after:
                continue
            if 1.0 / slowest.duration > rate_threshold:
                continue  # not among the slow tasks
            # The race's current best copy decides whether a fresh draw
            # can still win.
            trem = min(c.estimated_remaining(now) for c in copies)
            tnew = view.estimate_new_copy_duration(task)
            if trem <= tnew:
                continue  # a new copy cannot win the race
            requests.append(
                SpeculationRequest(
                    task=task,
                    expected_new_duration=tnew,
                    expected_benefit=trem - tnew,
                )
            )
        return self._slowest_first(requests)[:budget]
