"""LATE — Longest Approximate Time to End (Zaharia et al., OSDI 2008).

Deployed in Facebook's clusters (§7.2). Decision rule, as in the original
paper, adapted to our progress model:

* only consider tasks that have run at least ``detect_after`` time units
  (progress estimates are meaningless earlier);
* rank running tasks by *estimated time left*; speculate the ones with the
  longest time left whose progress rate is below the ``slow_task_pct``
  percentile of the job's running progress rates (the "slow task
  threshold");
* only launch a copy if the estimated time left exceeds the estimated
  duration of a fresh copy (otherwise speculation cannot win the race);
* cap the number of simultaneously speculating tasks per job
  (``speculative_cap_fraction`` of running tasks, min 1).
"""

from __future__ import annotations

from typing import List

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)
from repro.workload.task import TaskState

_FINISHED = TaskState.FINISHED


class LATE(SpeculationPolicy):
    name = "late"

    def __init__(
        self,
        detect_after: float = 1.0,
        slow_task_pct: float = 0.25,
        speculative_cap_fraction: float = 0.1,
        max_copies: int = 2,
    ) -> None:
        if detect_after < 0:
            raise ValueError("detect_after must be non-negative")
        if not 0.0 < slow_task_pct <= 1.0:
            raise ValueError("slow_task_pct must be in (0, 1]")
        if not 0.0 < speculative_cap_fraction <= 1.0:
            raise ValueError("speculative_cap_fraction must be in (0, 1]")
        if max_copies < 2:
            raise ValueError("max_copies must be >= 2")
        self.detect_after = detect_after
        self.slow_task_pct = slow_task_pct
        self.speculative_cap_fraction = speculative_cap_fraction
        self.max_copies = max_copies

    def max_copies_per_task(self) -> int:
        return self.max_copies

    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        copies_by_task = view.copies_by_task
        if not copies_by_task:
            return []

        # Slow-task threshold: progress-rate percentile among running
        # copies. The sorted rate multiset is maintained incrementally by
        # the view; every task keyed in copies_by_task has at least one
        # live copy and (both simulators prune copies of finished tasks
        # synchronously) is unfinished, so len() is the running count.
        rates = view.sorted_progress_rates(now)
        if rates:
            idx = max(0, min(len(rates) - 1, int(self.slow_task_pct * len(rates))))
            rate_threshold = rates[idx]
        else:
            rate_threshold = float("inf")

        # How many tasks may speculate at once.
        num_running_tasks = len(copies_by_task)
        cap = max(1, int(self.speculative_cap_fraction * num_running_tasks))
        budget = cap - view.num_speculating_tasks
        if budget <= 0:
            return []

        max_copies = self.max_copies_per_task()
        detect_after = self.detect_after
        requests: List[SpeculationRequest] = []
        for copies in copies_by_task.values():
            if not copies:
                continue
            first = copies[0]
            task = first.task
            if task.state is _FINISHED or len(copies) >= max_copies:
                continue
            if len(copies) == 1:
                slowest = first
                # estimated_remaining of the only copy, inlined.
                if now <= first.start_time:
                    trem = task.size
                else:
                    trem = first.start_time + first.duration - now
                    if trem < 0.0:
                        trem = 0.0
            else:
                slowest = max(copies, key=lambda c: c.duration)
                trem = min(c.estimated_remaining(now) for c in copies)
            if now - slowest.start_time < detect_after:
                continue
            if 1.0 / slowest.duration > rate_threshold:
                continue  # not among the slow tasks
            # The race's current best copy decides whether a fresh draw
            # can still win.
            tnew = view.estimate_new_copy_duration(task)
            if trem <= tnew:
                continue  # a new copy cannot win the race
            requests.append(
                SpeculationRequest(
                    task=task,
                    expected_new_duration=tnew,
                    expected_benefit=trem - tnew,
                )
            )
        return self._slowest_first(requests)[:budget]
