"""GRASS — speculation for approximation analytics (Ananthanarayanan et
al., NSDI 2014), shown by its authors to perform near-optimal speculation.

GRASS combines two strategies and switches between them based on how much
of the job remains:

* **Resource Aware (RA)** early in the job: duplicate only when it saves
  resources (like Mantri — trem > 2·tnew), because early on, slots are
  better spent clearing fresh tasks;
* **Greedy Speculation (GS)** near the end: duplicate whenever a fresh
  copy is expected to finish sooner (trem > tnew), because in the last
  wave every straggler directly extends the job.

The switch point depends on the remaining fraction of tasks
(``switch_fraction``), the learned knob in the original system.
"""

from __future__ import annotations

from typing import List

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)


class GRASS(SpeculationPolicy):
    name = "grass"

    def __init__(
        self,
        detect_after: float = 0.5,
        switch_fraction: float = 0.15,
        ra_factor: float = 2.0,
    ) -> None:
        if detect_after < 0:
            raise ValueError("detect_after must be non-negative")
        if not 0.0 < switch_fraction < 1.0:
            raise ValueError("switch_fraction must be in (0, 1)")
        if ra_factor < 1.0:
            raise ValueError("ra_factor must be >= 1.0")
        self.detect_after = detect_after
        self.switch_fraction = switch_fraction
        self.ra_factor = ra_factor

    def _in_greedy_phase(self, view: JobExecutionView) -> bool:
        total = view.job.num_tasks
        remaining = view.job.remaining_tasks()
        return total > 0 and (remaining / total) <= self.switch_fraction

    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        factor = 1.0 if self._in_greedy_phase(view) else self.ra_factor
        requests: List[SpeculationRequest] = []
        for task in view.running_unfinished_tasks():
            copies = view.copies_of(task)
            if len(copies) >= self.max_copies_per_task():
                continue
            copy = max(copies, key=lambda c: c.duration)
            if now - copy.start_time < self.detect_after:
                continue
            trem = copy.estimated_remaining(now)
            tnew = view.estimate_new_copy_duration(task)
            if trem <= factor * tnew:
                continue
            requests.append(
                SpeculationRequest(
                    task=task,
                    expected_new_duration=tnew,
                    expected_benefit=trem - tnew,
                )
            )
        return self._slowest_first(requests)
