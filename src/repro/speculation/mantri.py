"""Mantri — resource-aware outlier mitigation (Ananthanarayanan et al.,
OSDI 2010). In operation in Microsoft Bing (§7.2).

Mantri is more conservative than LATE about cluster resources: it
duplicates a task only when doing so is expected to *save* resources, i.e.
the remaining time of the current copy exceeds roughly twice the duration
of a fresh copy (running both copies costs 2·tnew; letting the original
finish costs trem). It also detects outliers early — as soon as a copy has
produced a usable progress estimate — rather than waiting for the job's
tail.
"""

from __future__ import annotations

from typing import List

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)


class Mantri(SpeculationPolicy):
    name = "mantri"

    def __init__(
        self,
        detect_after: float = 0.5,
        resource_saving_factor: float = 2.0,
        max_simultaneous_copies: int = 2,
    ) -> None:
        if detect_after < 0:
            raise ValueError("detect_after must be non-negative")
        if resource_saving_factor < 1.0:
            raise ValueError("resource_saving_factor must be >= 1.0")
        if max_simultaneous_copies < 2:
            raise ValueError("max_simultaneous_copies must be >= 2")
        self.detect_after = detect_after
        self.resource_saving_factor = resource_saving_factor
        self.max_simultaneous_copies = max_simultaneous_copies

    def max_copies_per_task(self) -> int:
        return self.max_simultaneous_copies

    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        requests: List[SpeculationRequest] = []
        for task in view.running_unfinished_tasks():
            copies = view.copies_of(task)
            if len(copies) >= self.max_copies_per_task():
                continue
            copy = max(copies, key=lambda c: c.duration)
            if now - copy.start_time < self.detect_after:
                continue
            trem = copy.estimated_remaining(now)
            tnew = view.estimate_new_copy_duration(task)
            # Duplicate only when it saves resources in expectation.
            if trem <= self.resource_saving_factor * tnew:
                continue
            requests.append(
                SpeculationRequest(
                    task=task,
                    expected_new_duration=tnew,
                    expected_benefit=trem - tnew,
                )
            )
        return self._slowest_first(requests)
