"""Straggler-mitigation (speculation) algorithms: LATE, Mantri, GRASS."""

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)
from repro.speculation.late import LATE
from repro.speculation.mantri import Mantri
from repro.speculation.grass import GRASS
from repro.speculation.none import NoSpeculation

__all__ = [
    "JobExecutionView",
    "SpeculationPolicy",
    "SpeculationRequest",
    "LATE",
    "Mantri",
    "GRASS",
    "NoSpeculation",
]


def make_speculation_policy(name: str, **kwargs) -> SpeculationPolicy:
    """Factory: build a speculation policy by name ('late', 'mantri',
    'grass', 'none')."""
    name = name.lower()
    if name == "late":
        return LATE(**kwargs)
    if name == "mantri":
        return Mantri(**kwargs)
    if name == "grass":
        return GRASS(**kwargs)
    if name in ("none", "off"):
        return NoSpeculation()
    raise ValueError(f"unknown speculation policy: {name!r}")
