"""Straggler-mitigation (speculation) algorithms: LATE, Mantri, GRASS."""

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)
from repro.speculation.late import LATE
from repro.speculation.mantri import Mantri
from repro.speculation.grass import GRASS
from repro.speculation.none import NoSpeculation

__all__ = [
    "JobExecutionView",
    "SpeculationPolicy",
    "SpeculationRequest",
    "LATE",
    "Mantri",
    "GRASS",
    "NoSpeculation",
]


def make_speculation_policy(name: str, **kwargs) -> SpeculationPolicy:
    """Factory: build a registered speculation policy by name ('late',
    'mantri', 'grass', 'none'). Resolution goes through
    :data:`repro.registry.SPECULATION_POLICIES`, so registered plugins
    are constructible here too."""
    from repro.registry import SPECULATION_POLICIES

    return SPECULATION_POLICIES.get(name.lower()).factory(**kwargs)
