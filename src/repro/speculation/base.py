"""Common interface for speculation policies.

A speculation policy inspects one job's running copies (progress, elapsed
time) and proposes *speculation candidates*: tasks for which launching an
extra copy is expected to help, ordered by expected benefit. The scheduler
— not the policy — decides whether slots are actually granted; that
separation is exactly the coordination gap the paper closes.
"""

from __future__ import annotations

import statistics
from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List

from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task


@dataclass
class SpeculationRequest:
    """A proposal to launch one extra copy of ``task``.

    ``expected_new_duration`` is the policy's tnew estimate and
    ``expected_benefit`` its trem - tnew (larger = more urgent).
    """

    task: Task
    expected_new_duration: float
    expected_benefit: float


@dataclass
class JobExecutionView:
    """What a speculation policy may observe about one job.

    Mirrors what real frameworks expose: per-copy progress, completed task
    durations (for estimating the duration of a fresh copy) — nothing
    about other jobs.

    ``copies_by_task`` holds only *live* copies; finished and killed
    copies are pruned via :meth:`remove_copy` so that scans stay
    proportional to the number of currently running copies.
    """

    job: Job
    copies_by_task: Dict[int, List[TaskCopy]] = field(default_factory=dict)
    completed_durations: List[float] = field(default_factory=list)
    attempt_counts: Dict[int, int] = field(default_factory=dict)
    # Median cache for estimate_new_copy_duration; completed_durations is
    # append-only, so a length check detects staleness exactly.
    _median_cache: float = field(default=0.0, repr=False, compare=False)
    _median_count: int = field(default=0, repr=False, compare=False)
    # Tasks currently racing >1 live copy. Both simulators prune finished
    # and killed copies synchronously, so list membership == running and
    # this counter equals the "already speculating" scan LATE used to do.
    num_speculating_tasks: int = field(default=0, repr=False, compare=False)
    # Sorted multiset of live copies' progress rates (1/duration), split
    # into the merged sorted list and the not-yet-merged rates of copies
    # registered at the most recent start tick (these must be excluded
    # while "now" still equals that tick — see sorted_progress_rates).
    _rates_sorted: List[float] = field(
        default_factory=list, repr=False, compare=False
    )
    _pending_rates: List[float] = field(
        default_factory=list, repr=False, compare=False
    )
    _pending_time: float = field(
        default=-float("inf"), repr=False, compare=False
    )
    # Live *speculative* copies indexed per task, plus the order in which
    # tasks first entered copies_by_task. Together they let
    # live_speculative_copies() reproduce, without a full scan, exactly
    # the enumeration order of walking copies_by_task — which the
    # centralized preemption path depends on for bit-identical victim
    # selection (stable sort ties break on enumeration order).
    _spec_live: Dict[int, List[TaskCopy]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _task_seq: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _next_task_seq: int = field(default=0, repr=False, compare=False)

    def register_copy(self, copy: TaskCopy) -> None:
        """Track a newly launched copy."""
        task_id = copy.task.task_id
        live = self.copies_by_task.get(task_id)
        if live is None:
            self.copies_by_task[task_id] = [copy]
            self._task_seq[task_id] = self._next_task_seq
            self._next_task_seq += 1
        else:
            live.append(copy)
            if len(live) == 2:
                self.num_speculating_tasks += 1
        if copy.speculative:
            spec_live = self._spec_live.get(task_id)
            if spec_live is None:
                self._spec_live[task_id] = [copy]
            else:
                spec_live.append(copy)
        self.attempt_counts[task_id] = self.attempt_counts.get(task_id, 0) + 1
        start = copy.start_time
        if start != self._pending_time:
            self._merge_pending()
            self._pending_time = start
        self._pending_rates.append(1.0 / copy.duration)

    def _merge_pending(self) -> None:
        pending = self._pending_rates
        if pending:
            rates = self._rates_sorted
            for rate in pending:
                insort(rates, rate)
            pending.clear()

    def sorted_progress_rates(self, now: float) -> List[float]:
        """Ascending progress rates of live copies started before ``now``.

        Maintained incrementally (one ``insort``/removal per copy event)
        so policies don't rebuild and re-sort the list per scan. The
        multiset equals ``sorted(1/c.duration for live c if now >
        c.start_time)`` exactly: only copies started at the current tick
        are excluded, and those are precisely the un-merged pending ones.
        """
        if self._pending_time != now:
            self._merge_pending()
        return self._rates_sorted

    def remove_copy(self, copy: TaskCopy) -> None:
        """Stop tracking a finished or killed copy."""
        task_id = copy.task.task_id
        live = self.copies_by_task.get(task_id)
        if not live:
            return
        try:
            live.remove(copy)
        except ValueError:
            return
        if len(live) == 1:
            self.num_speculating_tasks -= 1
        elif not live:
            del self.copies_by_task[task_id]
            del self._task_seq[task_id]
        if copy.speculative:
            spec_live = self._spec_live.get(task_id)
            if spec_live is not None:
                try:
                    spec_live.remove(copy)
                except ValueError:
                    pass
                else:
                    if not spec_live:
                        del self._spec_live[task_id]
        rate = 1.0 / copy.duration
        if copy.start_time == self._pending_time:
            try:
                self._pending_rates.remove(rate)
                return
            except ValueError:
                pass  # already merged before the pending tick advanced
        rates = self._rates_sorted
        i = bisect_left(rates, rate)
        if i < len(rates) and rates[i] == rate:
            del rates[i]

    def attempts(self, task: Task) -> int:
        """Total copies ever launched for ``task``."""
        return self.attempt_counts.get(task.task_id, 0)

    def running_copies(self) -> List[TaskCopy]:
        return [c for copies in self.copies_by_task.values() for c in copies]

    def copies_of(self, task: Task) -> List[TaskCopy]:
        return list(self.copies_by_task.get(task.task_id, ()))

    def num_live_copies(self, task: Task) -> int:
        """Live copies of ``task`` without materializing a list."""
        return len(self.copies_by_task.get(task.task_id, ()))

    def live_speculative_copies(self) -> List[TaskCopy]:
        """Live speculative copies of racing tasks, in the exact order a
        full ``copies_by_task`` walk would yield them.

        Equivalent to ``[c for copies in self.copies_by_task.values()
        for c in copies if c.speculative and len(copies) > 1]`` but
        proportional to the number of live speculative copies instead of
        all live copies (the equivalence is pinned by a property test).
        """
        spec_live = self._spec_live
        if not spec_live:
            return []
        task_seq = self._task_seq
        copies_by_task = self.copies_by_task
        victims: List[TaskCopy] = []
        for task_id in sorted(spec_live, key=task_seq.__getitem__):
            if len(copies_by_task.get(task_id, ())) > 1:
                victims.extend(spec_live[task_id])
        return victims

    def running_unfinished_tasks(self) -> List[Task]:
        """Tasks that are unfinished but have at least one running copy."""
        tasks = []
        append = tasks.append
        for copies in self.copies_by_task.values():
            if copies:
                task = copies[0].task
                if not task.is_finished:
                    append(task)
        return tasks

    def estimate_new_copy_duration(self, task: Task) -> float:
        """tnew estimate: median of this job's completed task durations,
        falling back to the task's nominal size (frameworks use exactly
        this "duration of a typical finished task" heuristic)."""
        durations = self.completed_durations
        if durations:
            count = len(durations)
            if count != self._median_count:
                self._median_cache = statistics.median(durations)
                self._median_count = count
            return self._median_cache
        return task.size


class SpeculationPolicy(ABC):
    """Interface all speculation algorithms implement."""

    #: human-readable name used in experiment reports
    name: str = "base"

    @abstractmethod
    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        """Tasks worth duplicating right now, best-benefit first."""

    def max_copies_per_task(self) -> int:
        """Upper bound on simultaneous copies of one task (original
        included). Frameworks race exactly two copies in the common case."""
        return 2

    def _slowest_first(
        self, requests: List[SpeculationRequest]
    ) -> List[SpeculationRequest]:
        return sorted(requests, key=lambda r: r.expected_benefit, reverse=True)
