"""Common interface for speculation policies.

A speculation policy inspects one job's running copies (progress, elapsed
time) and proposes *speculation candidates*: tasks for which launching an
extra copy is expected to help, ordered by expected benefit. The scheduler
— not the policy — decides whether slots are actually granted; that
separation is exactly the coordination gap the paper closes.
"""

from __future__ import annotations

import statistics
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task


@dataclass
class SpeculationRequest:
    """A proposal to launch one extra copy of ``task``.

    ``expected_new_duration`` is the policy's tnew estimate and
    ``expected_benefit`` its trem - tnew (larger = more urgent).
    """

    task: Task
    expected_new_duration: float
    expected_benefit: float


@dataclass
class JobExecutionView:
    """What a speculation policy may observe about one job.

    Mirrors what real frameworks expose: per-copy progress, completed task
    durations (for estimating the duration of a fresh copy) — nothing
    about other jobs.

    ``copies_by_task`` holds only *live* copies; finished and killed
    copies are pruned via :meth:`remove_copy` so that scans stay
    proportional to the number of currently running copies.
    """

    job: Job
    copies_by_task: Dict[int, List[TaskCopy]] = field(default_factory=dict)
    completed_durations: List[float] = field(default_factory=list)
    attempt_counts: Dict[int, int] = field(default_factory=dict)

    def register_copy(self, copy: TaskCopy) -> None:
        """Track a newly launched copy."""
        task_id = copy.task.task_id
        self.copies_by_task.setdefault(task_id, []).append(copy)
        self.attempt_counts[task_id] = self.attempt_counts.get(task_id, 0) + 1

    def remove_copy(self, copy: TaskCopy) -> None:
        """Stop tracking a finished or killed copy."""
        task_id = copy.task.task_id
        live = self.copies_by_task.get(task_id)
        if not live:
            return
        try:
            live.remove(copy)
        except ValueError:
            return
        if not live:
            del self.copies_by_task[task_id]

    def attempts(self, task: Task) -> int:
        """Total copies ever launched for ``task``."""
        return self.attempt_counts.get(task.task_id, 0)

    def running_copies(self) -> List[TaskCopy]:
        return [c for copies in self.copies_by_task.values() for c in copies]

    def copies_of(self, task: Task) -> List[TaskCopy]:
        return list(self.copies_by_task.get(task.task_id, ()))

    def running_unfinished_tasks(self) -> List[Task]:
        """Tasks that are unfinished but have at least one running copy."""
        tasks = []
        for copies in self.copies_by_task.values():
            if copies and not copies[0].task.is_finished:
                tasks.append(copies[0].task)
        return tasks

    def estimate_new_copy_duration(self, task: Task) -> float:
        """tnew estimate: median of this job's completed task durations,
        falling back to the task's nominal size (frameworks use exactly
        this "duration of a typical finished task" heuristic)."""
        if self.completed_durations:
            return statistics.median(self.completed_durations)
        return task.size


class SpeculationPolicy(ABC):
    """Interface all speculation algorithms implement."""

    #: human-readable name used in experiment reports
    name: str = "base"

    @abstractmethod
    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        """Tasks worth duplicating right now, best-benefit first."""

    def max_copies_per_task(self) -> int:
        """Upper bound on simultaneous copies of one task (original
        included). Frameworks race exactly two copies in the common case."""
        return 2

    def _slowest_first(
        self, requests: List[SpeculationRequest]
    ) -> List[SpeculationRequest]:
        return sorted(requests, key=lambda r: r.expected_benefit, reverse=True)
