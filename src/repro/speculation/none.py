"""A null speculation policy: never duplicate anything.

Useful as an ablation — it isolates the scheduling policy's contribution
from straggler mitigation's.
"""

from __future__ import annotations

from typing import List

from repro.speculation.base import (
    JobExecutionView,
    SpeculationPolicy,
    SpeculationRequest,
)


class NoSpeculation(SpeculationPolicy):
    name = "none"

    def speculation_candidates(
        self, view: JobExecutionView, now: float
    ) -> List[SpeculationRequest]:
        return []

    def max_copies_per_task(self) -> int:
        return 1
