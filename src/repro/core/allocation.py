"""Slot allocation: Pseudocode 1 (Hopper) and the Fair / SRPT baselines.

These are *pure functions*: they map (job states, total slots) to integer
allocations and are shared by the centralized simulator, the decentralized
worker logic, and the test suite.

Hopper's two regimes (§4.1):

* **Guideline 2** — capacity constrained (``S < sum of virtual sizes``):
  serve jobs in ascending virtual size, giving each its full virtual size
  until slots run out (SRPT-like, but with speculation headroom).
* **Guideline 3** — capacity rich: split slots proportionally to virtual
  sizes (big jobs straggle proportionally more, so extra speculation slots
  are worth more there).

ε-fairness (§4.3) projects either allocation into the set where every job
gets at least ``(1 - eps) * S / N`` slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.fairness import fairness_floors


@dataclass(frozen=True)
class JobAllocationState:
    """What the allocator needs to know about one job.

    Attributes
    ----------
    job_id:
        Identifier used as the key of the returned allocation map.
    virtual_size:
        V_i(t) — see :func:`repro.core.virtual_size.virtual_size`.
    remaining_tasks:
        T_i(t), unfinished task count.
    weight:
        Fair-share weight.
    priority_size:
        Ordering key for Guideline 2. Defaults to ``virtual_size``; for
        DAGs the paper uses ``max(V_i, V'_i)`` where V' covers downstream
        communication (§4.2).
    max_useful_slots:
        Hard cap on usable slots (e.g. 2 copies per remaining task).
        ``None`` means uncapped.
    """

    job_id: int
    virtual_size: float
    remaining_tasks: int
    weight: float = 1.0
    priority_size: Optional[float] = None
    max_useful_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.virtual_size < 0:
            raise ValueError("virtual_size must be non-negative")
        if self.remaining_tasks < 0:
            raise ValueError("remaining_tasks must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def order_key(self) -> float:
        return (
            self.priority_size
            if self.priority_size is not None
            else self.virtual_size
        )

    @property
    def cap(self) -> int:
        if self.max_useful_slots is not None:
            return self.max_useful_slots
        # Default: room for the virtual size or two copies of every task,
        # whichever is larger.
        return max(int(math.ceil(self.virtual_size)), 2 * self.remaining_tasks)


def is_capacity_constrained(
    jobs: Sequence[JobAllocationState], total_slots: int
) -> bool:
    """True when S < sum of virtual sizes (Guideline 2 applies)."""
    return total_slots < sum(j.virtual_size for j in jobs)


def _distribute_remainder(
    alloc: Dict[int, int],
    jobs: Sequence[JobAllocationState],
    leftover: int,
    order: Sequence[JobAllocationState],
) -> int:
    """Hand out leftover slots round-robin in the given order, up to
    each job's cap; returns slots still left.

    Semantically this is repeated passes over ``order`` granting one
    slot per under-cap job until slots or deficits run out. That loop is
    O(passes x jobs) — the dominant solve cost on big capacity-rich
    clusters, where leftover is thousands — so the final integer state
    is computed in closed form instead: after ``r`` complete passes each
    job has received ``min(deficit, r)``, and the remaining slots go one
    each, in order, to the jobs whose deficit exceeds ``r``. Pure
    integer arithmetic, bit-identical to the loop it replaces.
    """
    if leftover <= 0 or not order:
        return leftover
    deficits = []
    total = 0
    for job in order:
        d = job.cap - alloc[job.job_id]
        if d < 0:
            d = 0
        deficits.append(d)
        total += d
    if total <= leftover:
        # Every job caps out; slots may remain.
        for job, d in zip(order, deficits):
            if d > 0:
                alloc[job.job_id] += d
        return leftover - total
    # Largest complete-pass count r with sum(min(d, r)) <= leftover.
    lo, hi = 0, max(deficits)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if sum(d if d < mid else mid for d in deficits) <= leftover:
            lo = mid
        else:
            hi = mid - 1
    r = lo
    rem = leftover - sum(d if d < r else r for d in deficits)
    for job, d in zip(order, deficits):
        give = d if d < r else r
        if rem > 0 and d > give:
            give += 1
            rem -= 1
        if give > 0:
            alloc[job.job_id] += give
    return 0


def hopper_allocation(
    jobs: Sequence[JobAllocationState],
    total_slots: int,
    epsilon: float = 1.0,
    force_regime: Optional[str] = None,
) -> Dict[int, int]:
    """Pseudocode 1 with ε-fairness projection.

    Parameters
    ----------
    jobs:
        Active jobs (remaining_tasks > 0 expected).
    total_slots:
        S — slots to hand out.
    epsilon:
        Fairness knob in [0, 1]; every job is guaranteed at least
        ``(1 - epsilon) * S * w_i / sum(w)`` slots. ``epsilon = 1`` means
        pure performance (no fairness floor); ``epsilon = 0`` means
        perfectly fair floors.
    force_regime:
        Ablation hook: ``"constrained"`` always applies Guideline 2,
        ``"rich"`` always applies Guideline 3, ``None`` (default) picks by
        comparing S to the sum of virtual sizes.

    Returns
    -------
    dict mapping job_id -> integer slot count, summing to at most
    ``total_slots``.
    """
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    if force_regime not in (None, "constrained", "rich"):
        raise ValueError(f"invalid force_regime: {force_regime!r}")
    active = [j for j in jobs if j.remaining_tasks > 0]
    if not active or total_slots == 0:
        return {j.job_id: 0 for j in active}
    ascending = sorted(active, key=lambda j: (j.order_key, j.job_id))
    alloc, _ = hopper_allocation_ordered(
        active, ascending, total_slots, epsilon, force_regime
    )
    return alloc


def hopper_allocation_ordered(
    active: Sequence[JobAllocationState],
    ascending: Sequence[JobAllocationState],
    total_slots: int,
    epsilon: float = 1.0,
    force_regime: Optional[str] = None,
    total_virtual: Optional[float] = None,
    floors: Optional[Dict[int, int]] = None,
) -> tuple:
    """:func:`hopper_allocation` with the sort hoisted out.

    The incremental allocation engine maintains the ascending
    ``(order_key, job_id)`` order between events by delta, so the solve
    itself should not re-sort. Callers must pass ``active`` already
    filtered to ``remaining_tasks > 0`` in the same iteration order the
    from-scratch path would produce (insertion order of the active set
    — every float sum below accumulates in that order, which is what
    keeps the two paths byte-identical), and ``ascending`` sorted by
    ``(order_key, job_id)``.

    ``total_virtual`` (the insertion-order sum of active virtual sizes)
    and ``floors`` (:func:`~repro.core.fairness.fairness_floors` for the
    same set and slots) may be supplied precomputed — the incremental
    engine memoizes both between events; when omitted they are computed
    here exactly as the from-scratch path does.

    Returns ``(alloc, regime)`` where ``regime`` is the Guideline that
    applied (``"constrained"`` or ``"rich"``) so callers can detect
    regime flips.
    """
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    if force_regime not in (None, "constrained", "rich"):
        raise ValueError(f"invalid force_regime: {force_regime!r}")
    if not active or total_slots == 0:
        return {j.job_id: 0 for j in active}, None

    # Everyone-capped shortcut. When the caps sum to no more than S the
    # full algorithm provably ends with every job at its cap, whatever
    # the floors, regime, or fill order: every intermediate allocation
    # keeps alloc_i <= cap_i, so leftover = S - sum(alloc) always covers
    # the outstanding deficits sum(cap) - sum(alloc), and the final
    # remainder pass tops every job up. The result is pure integers, so
    # returning it directly is bit-identical — and on big capacity-rich
    # clusters (the 10k/100k-slot regime, where caps bind long before
    # slots run out) it turns the per-event solve into one int sum.
    # Regime label for flip tracking: when caps cover virtual sizes —
    # which the simulator's max_useful = max(ceil(V), k*T) guarantees —
    # sum(virtual) <= sum(cap) <= S, i.e. capacity-rich. (An arbitrary
    # cap below V could make the label inexact, but the allocation is
    # all-caps regardless, and nothing downstream consumes the label
    # except the flip heuristic.)
    caps = [j.cap for j in active]
    if sum(caps) <= total_slots:
        return (
            {j.job_id: c for j, c in zip(active, caps)},
            force_regime if force_regime is not None else "rich",
        )

    if floors is None:
        floors = fairness_floors(active, total_slots, epsilon)
    alloc: Dict[int, int] = {
        j.job_id: min(floors[j.job_id], j.cap) for j in active
    }
    leftover = total_slots - sum(alloc.values())

    if total_virtual is None:
        total_virtual = sum(j.virtual_size for j in active)
    if force_regime == "constrained":
        constrained = True
    elif force_regime == "rich":
        constrained = False
    else:
        constrained = total_slots < total_virtual

    if constrained:
        # Guideline 2: fill jobs to their virtual size, smallest first.
        for job in ascending:
            if leftover <= 0:
                break
            target = min(int(job.virtual_size), job.cap)
            give = min(leftover, max(0, target - alloc[job.job_id]))
            alloc[job.job_id] += give
            leftover -= give
        # Rounding / floor interactions can leave slack; spill it smallest
        # jobs first, up to caps.
        leftover = _distribute_remainder(alloc, active, leftover, ascending)
    else:
        # Guideline 3: proportional to virtual sizes.
        if total_virtual <= 0:
            leftover = _distribute_remainder(alloc, active, leftover, ascending)
            return alloc, "rich"
        shares = {
            j.job_id: total_slots * j.virtual_size / total_virtual
            for j in active
        }
        # Raise below-share jobs toward their proportional share.
        for job in ascending:
            if leftover <= 0:
                break
            target = min(int(shares[job.job_id]), job.cap)
            give = min(leftover, max(0, target - alloc[job.job_id]))
            alloc[job.job_id] += give
            leftover -= give
        # Remaining slots (fractional parts): largest fractional share first.
        frac_order = sorted(
            active,
            key=lambda j: (shares[j.job_id] - int(shares[j.job_id])),
            reverse=True,
        )
        leftover = _distribute_remainder(alloc, active, leftover, frac_order)

    return alloc, ("constrained" if constrained else "rich")


def srpt_allocation(
    jobs: Sequence[JobAllocationState],
    total_slots: int,
    best_effort_speculation: bool = True,
) -> Dict[int, int]:
    """Shortest Remaining Processing Time baseline.

    Jobs are served in ascending remaining-task order; each gets one slot
    per remaining task. With ``best_effort_speculation`` leftover slots
    are then handed out (smallest jobs first, up to caps) so speculative
    copies can piggyback on idle capacity — the §3 "best-effort" strawman.
    """
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    active = [j for j in jobs if j.remaining_tasks > 0]
    ascending = sorted(active, key=lambda j: (j.remaining_tasks, j.job_id))
    return srpt_allocation_ordered(
        active, ascending, total_slots, best_effort_speculation
    )


def srpt_allocation_ordered(
    active: Sequence[JobAllocationState],
    ascending: Sequence[JobAllocationState],
    total_slots: int,
    best_effort_speculation: bool = True,
) -> Dict[int, int]:
    """:func:`srpt_allocation` with the sort hoisted out.

    ``active`` must be pre-filtered to ``remaining_tasks > 0`` and
    ``ascending`` sorted by ``(remaining_tasks, job_id)``; see
    :func:`hopper_allocation_ordered` for why callers own the ordering.
    """
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    alloc: Dict[int, int] = {j.job_id: 0 for j in active}
    leftover = total_slots
    for job in ascending:
        give = min(leftover, job.remaining_tasks)
        alloc[job.job_id] = give
        leftover -= give
        if leftover <= 0:
            break
    if best_effort_speculation and leftover > 0:
        leftover = _distribute_remainder(alloc, active, leftover, ascending)
    return alloc


def fair_allocation(
    jobs: Sequence[JobAllocationState],
    total_slots: int,
) -> Dict[int, int]:
    """Weighted max-min fair shares (the deployed default, §2.1).

    Each job's share is proportional to its weight, capped at what it can
    use; capacity freed by capped jobs is redistributed (water-filling).
    """
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    active = [j for j in jobs if j.remaining_tasks > 0]
    alloc: Dict[int, int] = {j.job_id: 0 for j in active}
    remaining = list(active)
    leftover = total_slots
    # Water-filling over caps.
    while remaining and leftover > 0:
        total_weight = sum(j.weight for j in remaining)
        share = leftover / total_weight
        saturated = [
            j
            for j in remaining
            if j.cap - alloc[j.job_id] <= share * j.weight
        ]
        if not saturated:
            break
        for job in saturated:
            give = job.cap - alloc[job.job_id]
            alloc[job.job_id] += give
            leftover -= give
            remaining.remove(job)
    if remaining and leftover > 0:
        total_weight = sum(j.weight for j in remaining)
        provisional = {
            j.job_id: int(leftover * j.weight / total_weight) for j in remaining
        }
        for job in remaining:
            give = min(provisional[job.job_id], job.cap - alloc[job.job_id])
            alloc[job.job_id] += give
        leftover = total_slots - sum(alloc.values())
        order = sorted(remaining, key=lambda j: alloc[j.job_id])
        _distribute_remainder(alloc, active, leftover, order)
    return alloc
