"""Hopper's core: virtual job sizes and speculation-aware allocation.

This package contains the paper's primary contribution as *pure
functions* over lightweight job descriptors, so the same logic drives the
centralized simulator, the decentralized workers, unit tests, and
property-based tests.
"""

from repro.core.virtual_size import threshold_multiplier, virtual_size
from repro.core.allocation import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    is_capacity_constrained,
    srpt_allocation,
)
from repro.core.fairness import fairness_floors
from repro.core.locality import pick_job_with_locality

__all__ = [
    "threshold_multiplier",
    "virtual_size",
    "JobAllocationState",
    "hopper_allocation",
    "srpt_allocation",
    "fair_allocation",
    "is_capacity_constrained",
    "fairness_floors",
    "pick_job_with_locality",
]
