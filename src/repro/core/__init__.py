"""Hopper's core: virtual job sizes and speculation-aware allocation.

This package contains the paper's primary contribution as *pure
functions* over lightweight job descriptors, so the same logic drives the
centralized simulator, the decentralized workers, unit tests, and
property-based tests. :mod:`repro.core.incremental` adds the stateful
delta-maintained layer the centralized family runs those functions
through at scale.
"""

from repro.core.virtual_size import threshold_multiplier, virtual_size
from repro.core.allocation import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    hopper_allocation_ordered,
    is_capacity_constrained,
    srpt_allocation,
    srpt_allocation_ordered,
)
from repro.core.fairness import fairness_floors
from repro.core.incremental import IncrementalAllocator
from repro.core.locality import pick_job_with_locality

__all__ = [
    "threshold_multiplier",
    "virtual_size",
    "JobAllocationState",
    "hopper_allocation",
    "hopper_allocation_ordered",
    "srpt_allocation",
    "srpt_allocation_ordered",
    "fair_allocation",
    "is_capacity_constrained",
    "fairness_floors",
    "pick_job_with_locality",
    "IncrementalAllocator",
]
