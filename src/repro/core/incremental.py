"""Incremental allocation engine.

Every scheduler event used to rebuild every active job's
:class:`~repro.core.allocation.JobAllocationState`, re-sort the dispatch
order, and re-run the policy solve from scratch — O(active jobs) work per
event, the known wall for the 100k-slot regime. This module keeps that
state *between* events and updates it by delta, the same way
``ClusterIndex`` replaced O(machines) scans:

* the active states live in an **insertion-ordered table** mirroring the
  simulator's ``_jobs`` dict, so materializing them yields exactly the
  list the from-scratch ``_allocation_states()`` would build;
* the policy's **dispatch order is a sorted container** (bisect-maintained
  key list) updated per upsert/remove instead of re-sorted per event;
* the last **targets dict is memoized** on (state version, slot count) —
  an event that changed nothing allocation-relevant (a lost speculation
  race, a periodic straggler scan) reuses it outright.

Byte-identity with the from-scratch path is the design constraint, since
every golden study digest pins replay output. Two rules follow:

1. **No incrementally maintained float sums.** Sums over states (the
   capacity-constrained test, total virtual size, fairness-floor weight)
   accumulate in insertion order inside the solve, freshly each time —
   maintaining them by add/subtract would drift in the last bits and
   could flip a regime decision. The solves re-sum in O(active) cheap
   float adds; only the state *construction* and *sorting* are delta'd.
2. **The maintained sort is exact, not approximate.** Policy sort keys
   end in the unique ``job_id``, so the order is total and the bisect
   container reproduces ``sorted()`` exactly.

On a regime flip (capacity-constrained ↔ rich) the engine discards the
incremental solve and re-derives targets with the policy's full
from-scratch path — the two are proven equivalent by the differential
tests, so this fallback is defense in depth for the one transition where
an ordering bug would be least visible.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional

from repro.core.allocation import JobAllocationState


class IncrementalAllocator:
    """Delta-maintained allocation state for one centralized policy.

    The owning simulator drives it with three verbs:

    * :meth:`reserve` on job arrival — fixes the job's position in the
      insertion order before its state is first computed;
    * :meth:`upsert` when a job's state is (re)computed;
    * :meth:`remove` on job completion (or when a job goes inactive).

    ``states()`` / ``ordered()`` materialize the insertion-ordered active
    list and the policy-sorted dispatch order; ``allocate()`` returns the
    policy targets, memoized while nothing changed.
    """

    __slots__ = (
        "policy",
        "_states",
        "_keys",
        "_entries",
        "_version",
        "_membership_version",
        "_insertion_cache",
        "_ordered_cache",
        "_targets",
        "_targets_version",
        "_targets_slots",
        "_last_regime",
        "_vsum",
        "_vsum_version",
        "_floors",
        "_floors_key",
    )

    def __init__(self, policy) -> None:
        self.policy = policy
        # job_id -> state; dict order == simulator insertion order.
        # A reserved-but-uncomputed slot holds None.
        self._states: Dict[int, Optional[JobAllocationState]] = {}
        # job_id -> sort key currently present in _entries.
        self._keys: Dict[int, tuple] = {}
        # Sorted policy sort keys; each ends in the unique job_id, so
        # the order is total and entry removal can bisect exactly.
        self._entries: List[tuple] = []
        self._version = 0
        # Bumped only when the *active set* changes (a job's state first
        # materializes, a job is removed, or a weight changes) — the
        # invalidation key for values that are independent of virtual
        # sizes, like fairness floors.
        self._membership_version = 0
        self._insertion_cache: Optional[List[JobAllocationState]] = None
        self._ordered_cache: Optional[List[JobAllocationState]] = None
        self._targets: Optional[Dict[int, int]] = None
        self._targets_version = -1
        self._targets_slots = -1
        self._last_regime: Optional[str] = None
        # Insertion-order sum of virtual sizes, memoized per version:
        # the regime test, Guideline 3's denominator, and the
        # guideline-decision metric all consume the identical float.
        self._vsum = 0.0
        self._vsum_version = -1
        # Fairness floors, memoized on (membership version, slots).
        self._floors: Optional[Dict[int, int]] = None
        self._floors_key = (-1, -1)

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._states

    @property
    def version(self) -> int:
        """Bumped on every effective mutation; memo keys hang off it."""
        return self._version

    @property
    def last_regime(self) -> Optional[str]:
        return self._last_regime

    def _touch(self) -> None:
        self._version += 1
        self._insertion_cache = None
        self._ordered_cache = None

    def reserve(self, job_id: int) -> None:
        """Fix ``job_id``'s position in the insertion order before its
        state exists. The from-scratch path iterates jobs in arrival
        order; reserving at arrival (rather than inserting at the first
        refresh) keeps the two orders identical no matter how many
        events separate arrival from the next solve."""
        if job_id not in self._states:
            self._states[job_id] = None
            self._touch()

    def upsert(self, state: JobAllocationState) -> bool:
        """Insert or replace one job's state; returns True if anything
        changed (False leaves the targets memo valid)."""
        job_id = state.job_id
        old = self._states.get(job_id)
        if old == state:
            return False
        key = self.policy.sort_key(state)
        old_key = self._keys.get(job_id)
        if old_key is None:
            insort(self._entries, key)
            self._keys[job_id] = key
            self._membership_version += 1
        elif old is not None and old.weight != state.weight:
            self._membership_version += 1
        if old_key is not None and old_key != key:
            del self._entries[bisect_left(self._entries, old_key)]
            insort(self._entries, key)
            self._keys[job_id] = key
        # Replacing a present dict key keeps its position — the invariant
        # that makes states() the from-scratch insertion-order list.
        self._states[job_id] = state
        self._touch()
        return True

    def remove(self, job_id: int) -> bool:
        """Drop a job (completed or no longer active)."""
        if job_id not in self._states:
            return False
        del self._states[job_id]
        old_key = self._keys.pop(job_id, None)
        if old_key is not None:
            del self._entries[bisect_left(self._entries, old_key)]
            self._membership_version += 1
        self._touch()
        return True

    def clear(self) -> None:
        self._states.clear()
        self._keys.clear()
        self._entries.clear()
        self._targets = None
        self._targets_version = -1
        self._targets_slots = -1
        self._last_regime = None
        self._membership_version += 1
        self._floors = None
        self._floors_key = (-1, -1)
        self._touch()

    # -- materialization ---------------------------------------------------

    def states(self) -> List[JobAllocationState]:
        """Active states in insertion (arrival) order — exactly the list
        the from-scratch builder produces."""
        cached = self._insertion_cache
        if cached is None:
            cached = [s for s in self._states.values() if s is not None]
            self._insertion_cache = cached
        return cached

    def ordered(self) -> List[JobAllocationState]:
        """Active states in the policy's dispatch order — exactly
        ``sorted(states(), key=policy.sort_key)``, maintained by delta."""
        cached = self._ordered_cache
        if cached is None:
            states = self._states
            cached = [states[key[-1]] for key in self._entries]
            self._ordered_cache = cached
        return cached

    # -- solving -----------------------------------------------------------

    def virtual_size_sum(self) -> float:
        """Insertion-order sum of active virtual sizes, memoized per
        version. It is the exact float the from-scratch path computes —
        for the capacity-regime test, Guideline 3's share denominator,
        and the guideline-decision metric — so all three consumers can
        share one O(active) accumulation per event."""
        if self._vsum_version != self._version:
            self._vsum = sum(s.virtual_size for s in self.states())
            self._vsum_version = self._version
        return self._vsum

    def _fairness_floors(self, total_slots: int) -> Optional[Dict[int, int]]:
        """Policy fairness floors, memoized on (membership, slots).

        Floors depend only on which jobs are active, their weights, and
        the slot pool — not on virtual sizes — so they survive the
        per-completion state churn and recompute only on arrival,
        completion, or a pool resize."""
        key = (self._membership_version, total_slots)
        if self._floors_key != key:
            self._floors = self.policy.fairness_floors(
                self.states(), total_slots
            )
            self._floors_key = key
        return self._floors

    def allocate(self, total_slots: int) -> Dict[int, int]:
        """Policy targets for the current state set.

        Reuses the previous targets verbatim when no state changed and
        the slot pool is the same size (targets are a pure function of
        both). Otherwise runs the policy's ordered solve over the
        maintained orders; on a regime flip, re-derives via the policy's
        full from-scratch solve."""
        if (
            self._targets is not None
            and self._targets_version == self._version
            and self._targets_slots == total_slots
        ):
            return self._targets
        active = self.states()
        targets, regime = self.policy.allocate_ordered(
            active,
            self.ordered(),
            total_slots,
            total_virtual=self.virtual_size_sum(),
            floors=self._fairness_floors(total_slots),
        )
        if (
            regime is not None
            and self._last_regime is not None
            and regime != self._last_regime
        ):
            targets = self.policy.allocate(active, total_slots)
        self._last_regime = regime
        self._targets = targets
        self._targets_version = self._version
        self._targets_slots = total_slots
        return targets
