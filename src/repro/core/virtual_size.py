"""Virtual job sizes — the knee in the slots-vs-completion-time curve.

The paper's central observation (§4.1, Fig. 3): the marginal value of an
extra slot for a job has a sharp threshold. With Pareto(beta) task
durations, the threshold sits at ``max(2/beta, 1)`` slots per remaining
task, so the *virtual size* of job *i* is

    V_i(t) = (2/beta) * T_i(t) * sqrt(alpha_i)

where ``T_i(t)`` is the remaining task count and ``alpha_i`` the DAG
communication weighting (§4.2; ``alpha = 1`` for single-phase jobs). Below
``V_i`` an extra slot is always worth more to the job than any slot is to a
job already above its own threshold (Guideline 1).
"""

from __future__ import annotations

import math


def threshold_multiplier(beta: float) -> float:
    """Slots-per-remaining-task at the marginal-value knee: max(2/beta, 1).

    ``beta`` is the Pareto tail index of task durations; production traces
    have 1 < beta < 2, so the multiplier is typically in (1, 2).
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return max(2.0 / beta, 1.0)


def virtual_size(
    remaining_tasks: float,
    beta: float,
    alpha: float = 1.0,
) -> float:
    """V_i(t) = (2/beta) * T_i(t) * sqrt(alpha_i), clamped below by T_i.

    The sqrt(alpha) scaling follows the square-root proportionality result
    the paper cites for balancing pipelined phases (§4.2). A job with zero
    remaining tasks has virtual size zero.
    """
    if remaining_tasks < 0:
        raise ValueError("remaining_tasks must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if remaining_tasks == 0:
        return 0.0
    size = threshold_multiplier(beta) * remaining_tasks * math.sqrt(alpha)
    # A job can always use at least one slot per remaining task.
    return max(size, float(remaining_tasks))
