"""Locality relaxation (§4.4).

Guideline 2 serves jobs in ascending virtual size; strict adherence can
force tasks onto machines without their input data. Hopper relaxes the
ordering: when a slot frees on machine *m*, any of the smallest *k%* of
jobs whose next task is data-local on *m* may be chosen instead of the
strictly smallest job. Small *k* (<= 5%) suffices in practice because task
completions churn quickly.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, TypeVar

J = TypeVar("J")


def locality_window(num_jobs: int, k_percent: float) -> int:
    """How many of the smallest jobs may be considered (at least 1)."""
    if k_percent < 0 or k_percent > 100:
        raise ValueError("k_percent must be in [0, 100]")
    if num_jobs <= 0:
        return 0
    return max(1, int(math.ceil(num_jobs * k_percent / 100.0)))


def pick_job_with_locality(
    ordered_jobs: Sequence[J],
    k_percent: float,
    has_local_task: Callable[[J], bool],
) -> Optional[J]:
    """Pick the job to serve next given the locality allowance.

    ``ordered_jobs`` must already be sorted by ascending virtual size.
    Returns the first job within the smallest-k% window that has a local
    task on the machine in question; if none does, falls back to the
    strictly smallest job (locality is a preference, not a constraint).
    """
    if not ordered_jobs:
        return None
    window = locality_window(len(ordered_jobs), k_percent)
    for job in ordered_jobs[:window]:
        if has_local_task(job):
            return job
    return ordered_jobs[0]
