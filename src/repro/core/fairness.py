"""ε-fairness (§4.3).

A scheduler is ε-fair if every job receives at least ``(1 - eps) * S /
N(t)`` slots at all times (weighted generalisation: proportional to job
weights). ``eps -> 0`` is absolute fairness; ``eps -> 1`` is pure
performance. Hopper guarantees ε-fairness by raising any job below its
floor up to the floor and allocating the rest by Guideline 2/3 — a
projection into the fair feasible set.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def fairness_floors(
    jobs: Sequence["JobAllocationState"],
    total_slots: int,
    epsilon: float,
) -> Dict[int, int]:
    """Per-job minimum slot guarantees.

    floor_i = floor((1 - eps) * S * w_i / sum(w)). With integer floors the
    total never exceeds (1 - eps) * S <= S, so the floors are always
    jointly feasible.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    if not jobs:
        return {}
    total_weight = sum(j.weight for j in jobs)
    guaranteed = (1.0 - epsilon) * total_slots
    return {
        j.job_id: int(math.floor(guaranteed * j.weight / total_weight))
        for j in jobs
    }


def slowdown_vs_fair(duration_with_policy: float, duration_fair: float) -> float:
    """Relative slowdown (%) of a job versus its perfectly-fair run.

    Positive values mean the policy made this job slower (Fig. 10b/10c
    count and size these)."""
    if duration_fair <= 0:
        raise ValueError("duration_fair must be positive")
    return 100.0 * (duration_with_policy - duration_fair) / duration_fair
