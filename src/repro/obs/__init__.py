"""Observability: opt-in tracing, counters and phase profiling.

The simulators answer *what happened* with end-of-run aggregates in
:class:`~repro.metrics.collector.SimulationResult`. This package answers
*why*: a structured event :class:`Tracer` (job spans, copy spans, probe
and eviction instants, exportable to Chrome ``chrome://tracing`` /
Perfetto), a named-:class:`Counters` registry (message batching,
probe conservation, eviction churn) and wall-time :class:`PhaseTimers`
(``engine.dispatch``, ``index.rebuild``, ``policy.evaluate_completion``).

Everything is **zero-cost when off**: an :class:`Obs` bundle is handed
to a simulator at construction, and every hot-path site guards its
instrumentation with a single ``is not None`` check — with no bundle the
replay is bit-identical to the uninstrumented engine (proven by the
pinned golden digests and the differential tests in
``tests/test_obs.py``, and measured by ``benchmarks/bench_obs.py``).

Enablement is deliberately out-of-band: observability is *not* part of
:class:`~repro.sweep.spec.RunSpec` (it must never change a content
digest). Pass an :class:`Obs` explicitly to a simulator or harness
runner, or set ``REPRO_OBS=1`` in the environment — the harness (and
therefore every sweep worker process, which inherits the environment)
then instruments its runs and attaches the report to
``SimulationResult.obs``.
"""

from repro.obs.core import (
    OBS_ENV,
    Counters,
    Obs,
    PhaseTimers,
    Tracer,
    aggregate_counters,
    aggregate_timers,
    obs_from_env,
)

__all__ = [
    "OBS_ENV",
    "Counters",
    "Obs",
    "PhaseTimers",
    "Tracer",
    "aggregate_counters",
    "aggregate_timers",
    "obs_from_env",
]
