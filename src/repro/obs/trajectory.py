"""Benchmark trajectory: events/sec across the committed PR history.

Every perf-bearing PR commits a refreshed ``BENCH_<name>.json`` at the
repo root, so git history *is* the performance trajectory — one data
point per commit that touched the file. This module replays that
history (``git log`` + ``git show``) and renders it as a table, used by
``repro bench trajectory`` and ``benchmarks/report_trajectory.py`` and
uploaded as a non-blocking CI artifact.

Only documents carrying an ``aggregate.events_per_sec`` section (the
throughput benchmarks: scale, blacklist, obs) yield throughput points;
table-mirror documents are skipped per-commit rather than failing the
whole report.
"""

from __future__ import annotations

import json
import subprocess
from typing import Any, Dict, List, Optional, Sequence

#: Default benchmark names to include in a trajectory report.
DEFAULT_BENCH_NAMES = ("scale", "blacklist", "obs", "serving")


class TrajectoryError(RuntimeError):
    """Raised when git history cannot be read (no git, shallow clone...)."""


def _git(args: Sequence[str], repo_root: str) -> str:
    try:
        completed = subprocess.run(
            ["git", "-C", repo_root, *args],
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as exc:
        raise TrajectoryError("git executable not found") from exc
    except subprocess.CalledProcessError as exc:
        stderr = (exc.stderr or "").strip()
        raise TrajectoryError(
            f"git {' '.join(args[:2])} failed: {stderr or exc}"
        ) from exc
    return completed.stdout


def bench_history(
    name: str, repo_root: str = ".", limit: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Per-commit throughput points for ``BENCH_<name>.json``, oldest first.

    Each entry: ``{"commit", "date", "subject", "events_per_sec",
    "per_system": {system: events_per_sec}}``. Commits where the file
    does not parse or carries no aggregate are skipped.
    """
    path = f"BENCH_{name}.json"
    log = _git(
        ["log", "--reverse", "--format=%H%x09%cs%x09%s", "--", path],
        repo_root,
    )
    entries: List[Dict[str, Any]] = []
    for line in log.splitlines():
        sha, _, rest = line.partition("\t")
        date, _, subject = rest.partition("\t")
        try:
            blob = _git(["show", f"{sha}:{path}"], repo_root)
            doc = json.loads(blob)
        except (TrajectoryError, ValueError):
            continue  # file deleted/renamed/unparseable at this commit
        aggregate = doc.get("aggregate") if isinstance(doc, dict) else None
        if not isinstance(aggregate, dict):
            continue  # table-mirror document: no throughput point
        rate = aggregate.get("events_per_sec")
        if rate is None:
            continue
        entries.append(
            {
                "commit": sha[:10],
                "date": date,
                "subject": subject,
                "events_per_sec": float(rate),
                "per_system": {
                    system: float(cell.get("events_per_sec", 0.0))
                    for system, cell in doc.get("per_system", {}).items()
                },
            }
        )
    if limit is not None and limit > 0:
        entries = entries[-limit:]
    return entries


def trajectory_rows(entries: Sequence[Dict[str, Any]]) -> List[List[str]]:
    """Table rows ``[commit, date, subject, events/sec, delta]`` with a
    percentage delta against the previous point."""
    rows: List[List[str]] = []
    previous: Optional[float] = None
    for entry in entries:
        rate = entry["events_per_sec"]
        if previous is None or previous <= 0:
            delta = "—"
        else:
            delta = f"{(rate / previous - 1.0) * 100.0:+.1f}%"
        subject = entry["subject"]
        if len(subject) > 48:
            subject = subject[:45] + "..."
        rows.append(
            [entry["commit"], entry["date"], subject, f"{rate:,.0f}", delta]
        )
        previous = rate
    return rows


def format_markdown(
    histories: Dict[str, Sequence[Dict[str, Any]]],
) -> str:
    """Render per-benchmark trajectories as a Markdown report."""
    lines: List[str] = ["# Benchmark trajectory", ""]
    for name in sorted(histories):
        entries = histories[name]
        lines.append(f"## BENCH_{name}.json")
        lines.append("")
        if not entries:
            lines.append("_no committed history with throughput data_")
            lines.append("")
            continue
        lines.append("| commit | date | subject | events/sec | delta |")
        lines.append("| --- | --- | --- | ---: | ---: |")
        for row in trajectory_rows(entries):
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines)


def report(
    names: Sequence[str] = DEFAULT_BENCH_NAMES,
    repo_root: str = ".",
    limit: Optional[int] = None,
) -> Dict[str, List[Dict[str, Any]]]:
    """Collect histories for ``names`` (missing histories come back
    empty rather than raising — a bench may not exist in old commits)."""
    return {
        name: bench_history(name, repo_root=repo_root, limit=limit)
        for name in names
    }


__all__ = [
    "DEFAULT_BENCH_NAMES",
    "TrajectoryError",
    "bench_history",
    "format_markdown",
    "report",
    "trajectory_rows",
]
