"""Core observability primitives: Tracer, Counters, PhaseTimers, Obs.

Design constraints (shared with the engine hot path):

* **Zero cost when off.** Instrumented call sites hold a local
  ``tracer``/``counters`` reference and guard with one ``is not None``
  check. No wrapper objects, no no-op method calls, no closures on the
  hot path.
* **Sim-time records, wall-time timers.** Trace records carry simulated
  seconds (deterministic, golden-checkable); phase timers carry
  ``perf_counter`` wall seconds (profiling, never golden-checked).
* **Plain dicts end to end.** Records serialize as JSONL and convert to
  the Chrome ``chrome://tracing`` / Perfetto JSON format without any
  intermediate object model.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional

#: Environment variable consulted by :func:`obs_from_env`. Any value
#: other than empty/``0``/``false``/``no`` enables counters and timers
#: for harness-driven runs (tracing stays explicit — traces are big).
OBS_ENV = "REPRO_OBS"

_FALSY = ("", "0", "false", "no")


class Counters:
    """Named monotonic counters, stored as a flat dict."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, count: int = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + count

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)


class PhaseTimers:
    """Accumulating wall-time timers keyed by phase name.

    Each phase accumulates ``{"calls": n, "seconds": s}``. Use
    :meth:`phase` as a context manager around a block, or :meth:`add`
    when the caller already measured the interval (hot sites prefer
    ``add`` — it avoids the context-manager frames).
    """

    __slots__ = ("_calls", "_seconds")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": self._calls[name], "seconds": self._seconds[name]}
            for name in sorted(self._calls)
        }

    def __len__(self) -> int:
        return len(self._calls)


class Tracer:
    """Structured event tracer: spans (intervals) and instants.

    Spans are opened with :meth:`begin` under a hashable key (e.g.
    ``("job", 3)`` or ``("copy", 17)``) and closed with :meth:`end`; the
    completed record is appended only at end time, so ``records`` is
    ordered by *completion*. Instants append immediately. All
    timestamps are simulated seconds.

    Record shapes (plain dicts, one JSON object per JSONL line)::

        {"ev": "span",    "cat": ..., "name": ..., "t0": ..., "t1": ..., "args": {...}}
        {"ev": "instant", "cat": ..., "name": ..., "t": ...,  "args": {...}}
    """

    __slots__ = ("records", "_open")

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._open: Dict[Hashable, tuple] = {}

    # -- recording -------------------------------------------------------------

    def instant(self, cat: str, name: str, t: float, **args: Any) -> None:
        self.records.append(
            {"ev": "instant", "cat": cat, "name": name, "t": t, "args": args}
        )

    def begin(
        self, cat: str, name: str, key: Hashable, t: float, **args: Any
    ) -> None:
        self._open[key] = (cat, name, t, args)

    def end(self, key: Hashable, t: float, **args: Any) -> None:
        entry = self._open.pop(key, None)
        if entry is None:
            return  # span never opened (e.g. run truncated) — drop quietly
        cat, name, t0, open_args = entry
        if args:
            open_args = {**open_args, **args}
        self.records.append(
            {
                "ev": "span",
                "cat": cat,
                "name": name,
                "t0": t0,
                "t1": t,
                "args": open_args,
            }
        )

    def open_spans(self) -> int:
        """Spans begun but not yet ended (non-zero after truncated runs)."""
        return len(self._open)

    # -- serialization ---------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write one JSON record per line; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(self.records)

    @staticmethod
    def read_jsonl(path: str) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    @staticmethod
    def chrome_trace(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """Convert records to Chrome ``chrome://tracing`` / Perfetto JSON.

        Spans become complete events (``ph: "X"``), instants become
        instant events (``ph: "i"``). Timestamps are microseconds
        (simulated seconds x 1e6). Rows (``tid``) group by machine when
        the record names one, else by job, so copy placement and
        eviction churn line up visually per machine.
        """
        events: List[Dict[str, Any]] = []
        for record in records:
            args = record.get("args", {})
            tid = args.get("machine")
            if tid is None:
                tid = args.get("job", 0)
            common = {
                "cat": record["cat"],
                "name": record["name"],
                "pid": 0,
                "tid": tid,
                "args": args,
            }
            if record["ev"] == "span":
                t0 = record["t0"]
                events.append(
                    {
                        **common,
                        "ph": "X",
                        "ts": t0 * 1e6,
                        "dur": (record["t1"] - t0) * 1e6,
                    }
                )
            else:
                events.append(
                    {**common, "ph": "i", "ts": record["t"] * 1e6, "s": "g"}
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class Obs:
    """Bundle of observability sinks handed to a simulator.

    ``counters`` and ``timers`` always exist on a bundle (they are
    cheap); ``tracer`` is itself optional because traces grow with event
    count. Simulators snapshot the three into local attributes so hot
    sites pay exactly one ``is not None`` per guarded block.
    """

    __slots__ = ("tracer", "counters", "timers")

    def __init__(
        self, trace: bool = False, tracer: Optional[Tracer] = None
    ) -> None:
        self.tracer = tracer if tracer is not None else (
            Tracer() if trace else None
        )
        self.counters = Counters()
        self.timers = PhaseTimers()

    def report(self) -> Dict[str, Any]:
        """JSON-safe summary attached to ``SimulationResult.obs``."""
        return {
            "counters": self.counters.as_dict(),
            "timers": self.timers.as_dict(),
        }


def obs_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[Obs]:
    """Build an :class:`Obs` from ``REPRO_OBS``, or ``None`` when unset.

    Counters and timers only — tracing via environment variable would
    silently accumulate unbounded record lists in sweep workers.
    """
    raw = (environ if environ is not None else os.environ).get(OBS_ENV, "")
    if raw.strip().lower() in _FALSY:
        return None
    return Obs()


def aggregate_timers(
    reports: Iterable[Optional[Mapping[str, Any]]],
) -> Dict[str, Dict[str, float]]:
    """Merge the ``timers`` sections of many ``SimulationResult.obs``
    reports (``None`` entries are skipped)."""
    calls: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    for report in reports:
        if not report:
            continue
        for name, cell in report.get("timers", {}).items():
            calls[name] = calls.get(name, 0) + int(cell["calls"])
            seconds[name] = seconds.get(name, 0.0) + float(cell["seconds"])
    return {
        name: {"calls": calls[name], "seconds": seconds[name]}
        for name in sorted(calls)
    }


def aggregate_counters(
    reports: Iterable[Optional[Mapping[str, Any]]],
) -> Dict[str, int]:
    """Merge the ``counters`` sections of many obs reports."""
    totals: Dict[str, int] = {}
    for report in reports:
        if not report:
            continue
        for name, value in report.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))
