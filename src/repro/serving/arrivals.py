"""Arrival processes and rho calibration for the serving regime.

The *when* of the open-loop stream. Each process generates successive
interarrival gaps from a seeded ``random.Random`` and is registered by
name in :data:`ARRIVAL_PROCESSES`, so new traffic shapes are one
``register()`` call (same extension pattern as every other registry).

All processes are parameterized by their **long-run mean rate** in
arrivals per virtual second, which the calibrator derives from a target
utilization: with mean job work ``E[W]`` (Monte-Carlo estimated by the
trace generator from a dedicated probe RNG stream) and ``S`` slots,

    rho = lambda * E[W] / S    =>    lambda = rho * S / E[W]

so ``rho in [0.7, 0.95]`` maps to heavy-traffic-but-stable offered
load. The heavy-tailed size modifier multiplies whole jobs by Pareto
draws; its mean multiplier feeds back into the calibration so the
*offered* rho stays at the target.
"""

from __future__ import annotations

import math
from random import Random

from repro.registry import Registry
from repro.workload.generator import TraceGenerator
from repro.workload.job import Job
from repro.workload.traces import arrival_rate_for_utilization

#: Registered arrival-process families; factories are called as
#: ``factory(rate, rng, **kwargs)`` and must return an
#: :class:`ArrivalProcess`.
ARRIVAL_PROCESSES = Registry("arrival process")


class ArrivalProcess:
    """Base class: a seeded stream of interarrival gaps.

    ``rate`` is the long-run mean arrival rate; subclasses may modulate
    the instantaneous rate around it (diurnal sine, MMPP bursts) but
    must preserve the mean so calibration holds.
    """

    def __init__(self, rate: float, rng: Random) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = float(rate)
        self._rng = rng

    def next_interarrival(self, now: float) -> float:
        """Gap to the next arrival, given the current virtual time."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Stationary Poisson stream (the M in M/G/S)."""

    def next_interarrival(self, now: float) -> float:
        return self._rng.expovariate(self.rate)


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal-rate nonhomogeneous Poisson (day/night swing).

    Instantaneous rate ``rate * (1 + amplitude * sin(2 pi t / period))``,
    sampled by thinning against the peak rate: candidate gaps are drawn
    at the peak and accepted with probability ``rate(t) / peak``, the
    standard exact simulation for a bounded-rate NHPP. The long-run mean
    is ``rate`` because the sine integrates to zero over a period.
    """

    def __init__(
        self,
        rate: float,
        rng: Random,
        amplitude: float = 0.6,
        period: float = 120.0,
    ) -> None:
        super().__init__(rate, rng)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        self.amplitude = float(amplitude)
        self.period = float(period)

    def rate_at(self, t: float) -> float:
        return self.rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def next_interarrival(self, now: float) -> float:
        peak = self.rate * (1.0 + self.amplitude)
        t = now
        while True:
            t += self._rng.expovariate(peak)
            if self._rng.random() * peak < self.rate_at(t):
                return t - now


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm / burst).

    The modulating chain alternates exponentially distributed calm and
    burst sojourns; arrivals are Poisson at ``calm_rate`` or
    ``burst_rate = burst_factor * calm_rate``. ``burst_fraction`` is the
    long-run fraction of time spent bursting, and ``calm_rate`` is
    chosen so the overall mean rate equals ``rate``:

        rate = (1 - f) * r_c + f * b * r_c  =>  r_c = rate / (1 - f + f b)

    Simulation uses competing exponentials per step (memorylessness
    makes redrawing the state-switch clock after every arrival exact).
    """

    def __init__(
        self,
        rate: float,
        rng: Random,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        cycle: float = 50.0,
    ) -> None:
        super().__init__(rate, rng)
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if cycle <= 0:
            raise ValueError("cycle must be positive")
        calm_rate = rate / (1.0 - burst_fraction + burst_fraction * burst_factor)
        self._rates = (calm_rate, calm_rate * burst_factor)
        self._mean_hold = (
            cycle * (1.0 - burst_fraction),
            cycle * burst_fraction,
        )
        self._state = 0  # 0 = calm, 1 = burst

    def next_interarrival(self, now: float) -> float:
        gap = 0.0
        rng = self._rng
        while True:
            state = self._state
            to_switch = rng.expovariate(1.0 / self._mean_hold[state])
            to_arrival = rng.expovariate(self._rates[state])
            if to_arrival <= to_switch:
                return gap + to_arrival
            gap += to_switch
            self._state = 1 - state


ARRIVAL_PROCESSES.register(
    "poisson",
    PoissonArrivals,
    description="stationary Poisson stream at the calibrated rate",
)
ARRIVAL_PROCESSES.register(
    "diurnal",
    DiurnalArrivals,
    description="sinusoidal-rate NHPP (day/night swing), exact thinning",
)
ARRIVAL_PROCESSES.register(
    "bursty",
    BurstyArrivals,
    description="two-state MMPP: calm/burst sojourns, 4x burst rate",
)


def make_arrival_process(
    name: str, rate: float, rng: Random, **kwargs: object
) -> ArrivalProcess:
    """Build a registered arrival process at a long-run mean ``rate``."""
    return ARRIVAL_PROCESSES.get(name).factory(rate, rng, **kwargs)


class HeavyTailSizeModifier:
    """Pareto whole-job size multipliers (heavy-tailed job sizes).

    Each arriving job is scaled by an independent ``paretovariate(shape)``
    draw (support ``[1, inf)``), stretching every task size and phase
    output together — the "one elephant among mice" shape public cluster
    traces show. ``shape`` must exceed 1 so the mean multiplier
    ``shape / (shape - 1)`` is finite and calibration can divide it back
    out of the arrival rate.
    """

    def __init__(self, shape: float, rng: Random) -> None:
        if shape <= 1.0:
            raise ValueError(
                "heavy-tail shape must exceed 1 (finite mean multiplier)"
            )
        self.shape = float(shape)
        self._rng = rng

    @property
    def mean_multiplier(self) -> float:
        return self.shape / (self.shape - 1.0)

    def scale_job(self, job: Job) -> float:
        """Apply one multiplier to a freshly generated (unstarted) job."""
        multiplier = self._rng.paretovariate(self.shape)
        for phase in job.phases:
            phase.scale_work(multiplier)
        return multiplier


def estimate_mean_job_work(
    generator: TraceGenerator, samples: int = 200
) -> float:
    """Monte-Carlo mean job work of the generator's profile.

    Thin named wrapper over :meth:`TraceGenerator.mean_job_work`; the
    probe draws from a dedicated child RNG stream, so calling this never
    perturbs the jobs the generator will later produce.
    """
    return generator.mean_job_work(samples=samples)


def calibrate_arrival_rate(
    generator: TraceGenerator,
    total_slots: int,
    rho: float,
    size_multiplier_mean: float = 1.0,
    samples: int = 200,
) -> float:
    """Arrival rate that offers utilization ``rho`` on ``total_slots``.

    ``size_multiplier_mean`` compensates for a
    :class:`HeavyTailSizeModifier` inflating mean job work (pass its
    ``mean_multiplier``); 1.0 means sizes are used as generated.
    """
    if size_multiplier_mean <= 0:
        raise ValueError("size_multiplier_mean must be positive")
    mean_work = estimate_mean_job_work(generator, samples=samples)
    return arrival_rate_for_utilization(
        mean_work * size_multiplier_mean, total_slots, rho
    )
