"""Open-loop driver: lazily stream jobs into either scheduler plane.

Batch runs materialize the whole trace and bulk-schedule it before the
engine starts; an open-loop run must not — a sustained stream at rho
near 1 has no natural job count. The driver keeps only a **bounded
lookahead** of future arrivals inside the engine: it schedules one
batch of arrival events via ``schedule_many(absolute=True)`` plus a
refill event timed at the batch's last arrival (priority -1, so it
fires just before that arrival dispatches and the next batch is always
scheduled into the future). Jobs are synthesized one at a time by
``TraceGenerator.next_job`` at timestamps drawn from a registered
:class:`~repro.serving.arrivals.ArrivalProcess` — no job list ever
exists.

Termination is the regime's time layout: arrivals stop at ``horizon``,
the engine runs to ``horizon + cooldown`` (the engine clamps its clock
there), and the windowed aggregator truncates warm-up. A per-spec
``num_jobs`` acts as a hard safety cap on injected jobs, not a target.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterator, Optional

from repro import registry
from repro.experiments.harness import (
    _OBS_FROM_ENV,
    WorkloadSpec,
    build_simulator,
)
from repro.metrics.collector import SimulationResult
from repro.serving.arrivals import (
    ArrivalProcess,
    HeavyTailSizeModifier,
    calibrate_arrival_rate,
    make_arrival_process,
)
from repro.serving.windows import ServingRegime, WindowedAggregator
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomSource
from repro.workload.generator import TraceGenerator
from repro.workload.job import Job
from repro.workload.traces import Trace

#: Arrival events held inside the engine per refill batch. Small enough
#: that memory stays O(lookahead) regardless of horizon, large enough
#: that refills amortize to one heapify per 64 arrivals.
DEFAULT_LOOKAHEAD = 64

#: Time-average samples taken per metrics window.
SAMPLES_PER_WINDOW = 4


class JobStream:
    """Lazy job source: arrival process times + generator-built jobs.

    Ends when the next arrival would land at/after ``horizon`` or when
    ``max_jobs`` have been produced (the open-loop safety cap).
    """

    def __init__(
        self,
        generator: TraceGenerator,
        process: ArrivalProcess,
        horizon: float,
        max_jobs: int,
        size_modifier: Optional[HeavyTailSizeModifier] = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        self._generator = generator
        self._process = process
        self._horizon = horizon
        self._max_jobs = max_jobs
        self._size_modifier = size_modifier

    def __iter__(self) -> Iterator[Job]:
        now = 0.0
        for _ in range(self._max_jobs):
            now += self._process.next_interarrival(now)
            if now >= self._horizon:
                return
            job = self._generator.next_job(now)
            if self._size_modifier is not None:
                self._size_modifier.scale_job(job)
            yield job


class OpenLoopDriver:
    """Feeds an engine from a :class:`JobStream` with bounded lookahead."""

    def __init__(
        self,
        engine: Simulator,
        inject: Callable[[Job], None],
        stream: JobStream,
        lookahead: int = DEFAULT_LOOKAHEAD,
    ) -> None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self._engine = engine
        self._inject = inject
        self._iterator = iter(stream)
        self._lookahead = lookahead
        self.jobs_offered = 0

    def prime(self) -> None:
        """Schedule the first batch; call before the engine runs."""
        self._refill()

    def _refill(self) -> None:
        batch = list(islice(self._iterator, self._lookahead))
        if not batch:
            return
        self._engine.schedule_many(
            ((job.arrival_time, self._inject, (job,)) for job in batch),
            absolute=True,
        )
        self.jobs_offered += len(batch)
        if len(batch) == self._lookahead:
            # Refill just before the last scheduled arrival dispatches;
            # every later arrival is strictly in this event's future.
            self._engine.schedule_at(
                batch[-1].arrival_time, self._refill, priority=-1
            )


class _PlaneProbe:
    """Uniform view of a plane's queue depth and slot occupancy.

    ``total_slots`` is a callable: capacity is *live* state — blacklist
    eviction and autoscaler resizes change it mid-run, and a snapshot
    taken at build time would keep counting dead workers' slots.
    """

    def __init__(
        self,
        inject: Callable[[Job], None],
        pending_tasks: Callable[[], int],
        busy_slots: Callable[[], int],
        total_slots: Callable[[], int],
    ) -> None:
        self.inject = inject
        self.pending_tasks = pending_tasks
        self.busy_slots = busy_slots
        self.total_slots = total_slots


def _centralized_probe(simulator) -> _PlaneProbe:
    return _PlaneProbe(
        inject=simulator._on_job_arrival,
        pending_tasks=lambda: sum(
            len(jr.pending) for jr in simulator._jobs.values()
        ),
        busy_slots=lambda: (
            simulator.cluster.total_slots - simulator.cluster.free_slots
        ),
        total_slots=lambda: simulator.cluster.total_slots,
    )


def _decentralized_probe(simulator) -> _PlaneProbe:
    return _PlaneProbe(
        inject=simulator._on_job_arrival,
        pending_tasks=lambda: sum(
            len(sj.pending)
            for scheduler in simulator.schedulers
            for sj in scheduler.jobs.values()
        ),
        busy_slots=lambda: sum(
            worker.busy_slots for worker in simulator.workers
        ),
        # simulator.total_slots is maintained as *live* capacity (it
        # shrinks on eviction/retirement and grows on autoscale-add) —
        # unlike summing worker.num_slots, which counts dead workers.
        total_slots=lambda: simulator.total_slots,
    )


#: plane name -> probe factory. The batch plane shares the centralized
#: probe: BatchSimulator subclasses CentralizedSimulator, and its
#: (buffering) ``_on_job_arrival`` is exactly the injection point the
#: open-loop driver should feed.
_PLANE_PROBES = {
    "centralized": _centralized_probe,
    "decentralized": _decentralized_probe,
    "batch": _centralized_probe,
}


def _schedule_samples(
    engine: Simulator,
    aggregator: WindowedAggregator,
    probe: _PlaneProbe,
    regime: ServingRegime,
) -> None:
    """Chain fixed-cadence time-average samples over the measurement
    interval (first at ``warmup``, none at/after ``horizon``)."""
    interval = regime.window / SAMPLES_PER_WINDOW

    def sample() -> None:
        aggregator.sample(
            probe.pending_tasks(), probe.busy_slots(), probe.total_slots()
        )
        next_time = engine.now + interval
        if next_time < regime.horizon:
            engine.schedule_at(next_time, sample)

    engine.schedule_at(regime.warmup, sample)


def run_serving(
    spec: WorkloadSpec,
    plane: str,
    system: str,
    regime: ServingRegime,
    arrival_process: str = "poisson",
    heavy_tail: float = 0.0,
    speculation: str = "late",
    straggler_model: Optional[str] = None,
    run_seed: int = 7,
    lookahead: int = DEFAULT_LOOKAHEAD,
    obs=_OBS_FROM_ENV,
    **plane_knobs,
) -> SimulationResult:
    """One open-loop serving run on either plane.

    ``spec.utilization`` is the target rho; ``spec.num_jobs`` is the
    injection safety cap (not a target — the stream is horizon-bounded).
    ``heavy_tail`` of 0 disables the size modifier; values above 1 are
    the Pareto shape of the whole-job multiplier. Extra keyword knobs
    (autoscaler family, probe ratio, ...) pass through to the plane
    builder. The result carries the windowed steady-state section in
    ``result.serving``.
    """
    if plane not in _PLANE_PROBES:
        raise ValueError(f"unknown serving plane {plane!r}")
    source = RandomSource(seed=spec.seed)
    generator = TraceGenerator(
        spec.profile,
        random_source=source,
        num_machines=spec.locality_machines,
        max_phase_tasks=spec.max_phase_tasks,
    )
    size_modifier = None
    multiplier_mean = 1.0
    if heavy_tail:
        size_modifier = HeavyTailSizeModifier(
            heavy_tail, source.child("serving-sizes").rng
        )
        multiplier_mean = size_modifier.mean_multiplier
    arrival_rate = calibrate_arrival_rate(
        generator,
        spec.total_slots,
        spec.utilization,
        size_multiplier_mean=multiplier_mean,
    )
    process = make_arrival_process(
        arrival_process, arrival_rate, source.child("serving-arrivals").rng
    )
    stream = JobStream(
        generator,
        process,
        horizon=regime.horizon,
        max_jobs=spec.num_jobs,
        size_modifier=size_modifier,
    )

    empty_trace = Trace(jobs=[])
    simulator = build_simulator(
        system,
        empty_trace,
        spec,
        plane=plane,
        speculation=speculation,
        straggler_model=straggler_model,
        run_seed=run_seed,
        obs=obs,
        **plane_knobs,
    )
    probe = _PLANE_PROBES[plane](simulator)

    aggregator = WindowedAggregator(regime)
    simulator.metrics.serving_window = aggregator
    simulator.ledger.serving_window = aggregator
    driver = OpenLoopDriver(
        simulator.sim, probe.inject, stream, lookahead=lookahead
    )
    driver.prime()
    _schedule_samples(simulator.sim, aggregator, probe, regime)
    result = simulator.run(until=regime.end_time)
    result.serving = aggregator.finalize(
        plane=plane,
        system=system,
        arrival_process=arrival_process,
        arrival_rate=arrival_rate,
        target_utilization=spec.utilization,
        heavy_tail=heavy_tail,
        jobs_offered=driver.jobs_offered,
        events_processed=simulator.sim.events_processed,
    )
    return result


def run_serving_spec(spec) -> SimulationResult:
    """Execute a ``serving``-kind :class:`~repro.sweep.spec.RunSpec`."""
    wspec = spec.workload.to_workload_spec()
    knobs = {key: value for key, value in spec.knobs}
    regime = ServingRegime(
        warmup=float(knobs.pop("warmup", ServingRegime.warmup)),
        horizon=float(knobs.pop("horizon", ServingRegime.horizon)),
        cooldown=float(knobs.pop("cooldown", ServingRegime.cooldown)),
        window=float(knobs.pop("window", ServingRegime.window)),
    )
    descriptor = registry.SERVING_SYSTEMS.get(spec.system).factory
    return run_serving(
        wspec,
        descriptor.plane,
        descriptor.system,
        regime,
        arrival_process=knobs.pop("arrival_process", "poisson"),
        heavy_tail=float(knobs.pop("heavy_tail", 0.0)),
        speculation=spec.speculation,
        straggler_model=knobs.pop("straggler_model", None),
        run_seed=spec.run_seed,
        **knobs,
    )
