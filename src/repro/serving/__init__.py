"""Open-loop heavy-traffic serving regime.

Batch studies replay a finite job list and stop; the serving regime
streams jobs into a scheduler plane indefinitely at a target utilization
rho and measures the steady state: per-window tail JCT and queueing
delay after warm-up truncation, plus time-averaged queue depth and slot
utilization. See :mod:`repro.serving.arrivals` for the registered
arrival-process family, :mod:`repro.serving.windows` for the windowed
metrics layer, and :mod:`repro.serving.driver` for the lazy open-loop
driver feeding either simulator plane.
"""

from repro.serving.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    HeavyTailSizeModifier,
    PoissonArrivals,
    calibrate_arrival_rate,
    estimate_mean_job_work,
    make_arrival_process,
)
from repro.serving.driver import JobStream, OpenLoopDriver, run_serving
from repro.serving.windows import ServingRegime, WindowedAggregator

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstyArrivals",
    "HeavyTailSizeModifier",
    "calibrate_arrival_rate",
    "estimate_mean_job_work",
    "make_arrival_process",
    "ServingRegime",
    "WindowedAggregator",
    "JobStream",
    "OpenLoopDriver",
    "run_serving",
]
