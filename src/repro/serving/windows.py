"""Windowed steady-state metrics for the serving regime.

A batch run's headline number is mean JCT over every job; an open-loop
run's is the *steady-state tail*. This module owns that measurement:

* **Warm-up truncation** — completions before ``warmup`` belong to the
  empty-system transient and are dropped (counted, not silently).
* **Measurement windows** — the interval ``[warmup, horizon)`` is cut
  into fixed windows; each reports completion count and p50/p95/p99 of
  JCT and queueing delay (arrival to first copy launch, the time a job
  spent waiting before the cluster touched it).
* **Cool-down** — the simulator keeps draining for ``cooldown`` past the
  horizon so jobs in flight at the horizon may still finish (they land
  in the batch-style aggregate fields of ``SimulationResult``), but
  those completions are excluded from the steady-state windows.
* **Time averages** — pending-task depth and slot utilization are
  sampled on a fixed cadence inside the measurement interval; their
  means are the (left-endpoint Riemann) time averages.

Everything here is plain floats/ints/lists, so :meth:`finalize`'s
document is JSON-safe and deterministic for a given run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.analysis import percentile

#: (label suffix, quantile) pairs every window reports.
_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclass(frozen=True)
class ServingRegime:
    """Time layout of one open-loop run (all virtual seconds).

    Arrivals stream over ``[0, horizon)``; completions are measured in
    ``[warmup, horizon)``, cut into ``window``-sized windows; the engine
    runs until ``horizon + cooldown`` to let in-flight jobs drain.
    """

    warmup: float = 20.0
    horizon: float = 120.0
    cooldown: float = 20.0
    window: float = 20.0

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.horizon <= self.warmup:
            raise ValueError("horizon must exceed warmup")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.window <= 0:
            raise ValueError("window must be positive")

    @property
    def num_windows(self) -> int:
        return max(
            1, math.ceil((self.horizon - self.warmup) / self.window - 1e-9)
        )

    @property
    def end_time(self) -> float:
        """When the engine stops (measurement end plus drain)."""
        return self.horizon + self.cooldown

    def window_index(self, finish_time: float) -> Optional[int]:
        """Window of a completion, or None outside the measurement
        interval (``finish_time == horizon`` already counts as
        cool-down: windows are half-open on the right)."""
        if finish_time < self.warmup or finish_time >= self.horizon:
            return None
        index = int((finish_time - self.warmup) / self.window)
        return min(index, self.num_windows - 1)


def _stats(values: List[float], prefix: str) -> Dict[str, Optional[float]]:
    """p50/p95/p99 of ``values`` under ``prefix`` (None when empty)."""
    out: Dict[str, Optional[float]] = {}
    for suffix, q in _PERCENTILES:
        out[f"{prefix}_{suffix}"] = percentile(values, q) if values else None
    return out


class WindowedAggregator:
    """Accumulates completions/samples during a run; finalizes to JSON.

    Fed from two zero-cost-when-off hooks: the metrics collector's
    job-completion path and the copy ledger's launch path (first launch
    per job gives queueing delay). Per-job launch state is popped on
    completion, so sustained arrivals do not grow it without bound.
    """

    def __init__(self, regime: ServingRegime) -> None:
        self.regime = regime
        n = regime.num_windows
        self._jct: List[List[float]] = [[] for _ in range(n)]
        self._qdelay: List[List[float]] = [[] for _ in range(n)]
        self._first_launch: Dict[int, float] = {}
        self.measured_jobs = 0
        self.dropped_warmup = 0
        self.dropped_cooldown = 0
        self._depth_samples: List[float] = []
        # Raw (busy, total) pairs — the ratio is formed at finalize time
        # so a mid-run capacity change can weight by the capacity that
        # was actually live at each sample (see finalize).
        self._util_samples: List[Tuple[int, int]] = []

    # -- hooks ---------------------------------------------------------------

    def note_launch(self, job_id: int, time: float) -> None:
        """First-copy launch timestamp (later launches are ignored)."""
        self._first_launch.setdefault(job_id, time)

    def on_completion(
        self, job_id: int, arrival_time: float, finish_time: float
    ) -> None:
        launch = self._first_launch.pop(job_id, None)
        index = self.regime.window_index(finish_time)
        if index is None:
            if finish_time < self.regime.warmup:
                self.dropped_warmup += 1
            else:
                self.dropped_cooldown += 1
            return
        self.measured_jobs += 1
        self._jct[index].append(finish_time - arrival_time)
        # A job cannot complete without a launch; the fallback only
        # guards against synthetic feeds that skip the launch hook.
        queued = (launch if launch is not None else arrival_time) - arrival_time
        self._qdelay[index].append(queued)

    def sample(
        self, pending_tasks: int, busy_slots: int, total_slots: int
    ) -> None:
        """One time-average sample (driver calls on a fixed cadence)."""
        self._depth_samples.append(float(pending_tasks))
        self._util_samples.append((busy_slots, total_slots))

    def _mean_utilization(self) -> Optional[float]:
        """Time-averaged utilization over the sampled capacity.

        With constant capacity this is the historical mean-of-ratios —
        the same per-sample divisions summed in the same order, so runs
        without resizes stay digest-identical. When capacity moved
        mid-run (eviction, autoscaler resize) the samples are weighted
        by the capacity live at each one, ``sum(busy)/sum(total)``: a
        mean of per-sample ratios over a shrinking denominator could
        otherwise exceed 1.0.
        """
        samples = self._util_samples
        if not samples:
            return None
        first_total = samples[0][1]
        if all(total == first_total for _, total in samples):
            ratios = [
                busy / total if total else 0.0 for busy, total in samples
            ]
            return sum(ratios) / len(ratios)
        slot_seconds = sum(total for _, total in samples)
        if not slot_seconds:
            return 0.0
        return sum(busy for busy, _ in samples) / slot_seconds

    # -- reporting -----------------------------------------------------------

    def finalize(self, **meta: Any) -> Dict[str, Any]:
        """The JSON-safe serving section; ``meta`` lands under "regime"
        beside the time layout (arrival process, calibrated rate, ...)."""
        regime = self.regime
        windows = []
        for index in range(regime.num_windows):
            start = regime.warmup + index * regime.window
            row: Dict[str, Any] = {
                "start": start,
                "end": min(start + regime.window, regime.horizon),
                "completions": len(self._jct[index]),
            }
            row.update(_stats(self._jct[index], "jct"))
            row.update(_stats(self._qdelay[index], "queueing"))
            windows.append(row)
        all_jct = [v for window in self._jct for v in window]
        all_qdelay = [v for window in self._qdelay for v in window]
        overall: Dict[str, Any] = {}
        overall.update(_stats(all_jct, "jct"))
        overall.update(_stats(all_qdelay, "queueing"))
        overall["mean_pending_tasks"] = (
            sum(self._depth_samples) / len(self._depth_samples)
            if self._depth_samples
            else None
        )
        overall["mean_utilization"] = self._mean_utilization()
        overall["samples"] = len(self._depth_samples)
        return {
            "regime": {
                "warmup": regime.warmup,
                "horizon": regime.horizon,
                "cooldown": regime.cooldown,
                "window": regime.window,
                **meta,
            },
            "measured_jobs": self.measured_jobs,
            "dropped_warmup": self.dropped_warmup,
            "dropped_cooldown": self.dropped_cooldown,
            "windows": windows,
            "overall": overall,
        }
