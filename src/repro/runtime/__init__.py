"""Shared simulator runtime core.

Both simulator families replay the same physics: jobs arrive, runnable
phases feed a pending queue, task *copies* launch / race / finish / get
killed, and every transition must update the speculation view, the
metrics collector, and the estimators in lockstep. Before this package
that logic lived twice — once in ``centralized/simulator.py`` (the old
``_JobRuntime``) and once across ``decentralized/scheduler.py`` /
``decentralized/simulator.py`` — and every fix had to land in both.

:mod:`repro.runtime` is the single home for that core:

* :class:`JobRuntime` — per-job execution state (pending queue, phase
  activation, throttled speculation-candidate cache). The centralized
  simulator and the decentralized ``SchedulerJob`` both subclass it;
  :class:`LocalityJobRuntime` layers per-machine locality buckets on
  top for the (centralized) dispatch paths that ask locality questions.
* :class:`CopyLedger` — task-copy identity and lifecycle (launch,
  finish, kill, task completion, job completion) with the shared
  view/metrics/estimator bookkeeping.

Everything here is semantics-preserving refactoring: the golden-digest
tests (``tests/test_golden_results.py``) pin that simulations on the
shared core are bit-identical to the pre-refactor simulators.
"""

from repro.runtime.job import JobRuntime, LocalityJobRuntime
from repro.runtime.lifecycle import CopyLedger

__all__ = ["JobRuntime", "LocalityJobRuntime", "CopyLedger"]
