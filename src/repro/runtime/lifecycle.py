"""Task-copy lifecycle shared by both simulator families.

A :class:`CopyLedger` owns copy identity (monotonic copy ids), the
pending finish-event handles, and the bookkeeping every copy transition
must perform against the speculation view, the metrics collector, and
the beta estimator. The centralized and decentralized simulators differ
in *slot* accounting (cluster machines vs worker queues) and in the
order side effects interleave with their control planes, so the ledger
exposes both a composite :meth:`finish` (centralized) and the
fine-grained :meth:`settle_finished` / :meth:`record_finish` pieces the
decentralized simulator needs to keep its episode machinery firing at
exactly the pre-refactor points.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.estimation.alpha import AlphaEstimator
from repro.estimation.beta import OnlineBetaEstimator
from repro.metrics.collector import MetricsCollector
from repro.simulation.engine import EventHandle, Simulator
from repro.speculation.base import JobExecutionView
from repro.stragglers.progress import TaskCopy
from repro.workload.job import Job
from repro.workload.task import Task, TaskState


class CopyLedger:
    """Copy identity + lifecycle bookkeeping for one simulator run.

    The ledger is the single chokepoint every copy transition passes
    through on both planes, which makes it the natural tracing surface:
    with a :class:`repro.obs.Tracer` attached, it emits one ``copy``
    span per task copy (launch → finish/kill, tagged with the race
    outcome), a ``spec.win`` instant when a speculative copy wins, and
    closes the per-job span opened by the simulator at arrival. Without
    one, every hook is a single ``is not None`` check.
    """

    __slots__ = (
        "engine",
        "metrics",
        "beta_estimator",
        "events",
        "_next_copy_id",
        "tracer",
        "serving_window",
    )

    def __init__(
        self,
        engine: Simulator,
        metrics: MetricsCollector,
        beta_estimator: OnlineBetaEstimator,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.beta_estimator = beta_estimator
        #: copy id -> pending finish-event handle
        self.events: Dict[int, EventHandle] = {}
        self._next_copy_id = 0
        self.tracer = tracer
        #: Optional serving-regime aggregator; fed each job's *first*
        #: copy launch so queueing delay (arrival -> first launch) can
        #: be measured. One ``is not None`` check when off.
        self.serving_window = None

    # -- launch -------------------------------------------------------------

    def launch(
        self,
        view: JobExecutionView,
        task: Task,
        machine_id: int,
        duration: float,
        speculative: bool,
        local: bool,
        on_finish,
        *finish_args,
    ) -> TaskCopy:
        """Create a copy, register it with the view, schedule its finish
        event, and record the launch."""
        copy = TaskCopy(
            copy_id=self._next_copy_id,
            task=task,
            machine_id=machine_id,
            start_time=self.engine.now,
            duration=duration,
            speculative=speculative,
        )
        self._next_copy_id += 1
        view.register_copy(copy)
        self.events[copy.copy_id] = self.engine.schedule(
            duration, on_finish, copy, *finish_args
        )
        self.metrics.record_copy_launch(speculative=speculative, local=local)
        if self.serving_window is not None:
            self.serving_window.note_launch(task.job_id, copy.start_time)
        tracer = self.tracer
        if tracer is not None:
            tracer.begin(
                "copy",
                "spec" if speculative else "task",
                ("copy", copy.copy_id),
                copy.start_time,
                job=task.job_id,
                task=task.task_id,
                machine=machine_id,
                speculative=speculative,
            )
        return copy

    # -- finish -------------------------------------------------------------

    def settle_finished(self, copy: TaskCopy) -> None:
        """Drop the event handle and stamp the copy as finished."""
        self.events.pop(copy.copy_id, None)
        copy.finished = True
        copy.end_time = self.engine.now

    def record_finish(self, copy: TaskCopy) -> bool:
        """Record the finish; returns True when this copy won the race
        (its task was still unfinished)."""
        won = not copy.task.is_finished
        self.metrics.record_copy_finished(
            copy.duration, speculative_win=copy.speculative and won
        )
        tracer = self.tracer
        if tracer is not None:
            now = self.engine.now
            tracer.end(("copy", copy.copy_id), now, won=won)
            if copy.speculative and won:
                tracer.instant(
                    "copy",
                    "spec.win",
                    now,
                    job=copy.task.job_id,
                    task=copy.task.task_id,
                    machine=copy.machine_id,
                )
        return won

    def finish(self, copy: TaskCopy, view: JobExecutionView) -> bool:
        """Composite finish: settle, detach from the view, record.

        Returns True when this copy won the race.
        """
        self.settle_finished(copy)
        view.remove_copy(copy)
        return self.record_finish(copy)

    # -- kill ---------------------------------------------------------------

    def kill(self, copy: TaskCopy, view: JobExecutionView) -> None:
        """Cancel a running copy: detach it everywhere and account its
        wasted slot-time."""
        handle = self.events.pop(copy.copy_id, None)
        if handle is not None:
            handle.cancel()
        copy.killed = True
        copy.end_time = self.engine.now
        view.remove_copy(copy)
        self.metrics.record_copy_killed(copy.resource_time(self.engine.now))
        if self.tracer is not None:
            self.tracer.end(("copy", copy.copy_id), self.engine.now, killed=True)

    # -- task / job completion ----------------------------------------------

    def finish_task(self, view: JobExecutionView, copy: TaskCopy) -> List[TaskCopy]:
        """Mark the winner's task finished and feed the estimators;
        returns the still-running sibling copies (the race losers)."""
        task = copy.task
        task.state = TaskState.FINISHED
        task.finish_time = self.engine.now
        task.completed_by_speculative = copy.speculative
        view.job.phase(task.phase_index).mark_task_finished(task.size)
        view.completed_durations.append(copy.duration)
        self.beta_estimator.observe(copy.duration)
        return [
            c for c in view.copies_by_task.get(task.task_id, ()) if c.is_running
        ]

    def record_job_completion(
        self, job: Job, alpha_estimator: Optional[AlphaEstimator] = None
    ) -> None:
        """Stamp and record a completed job (and teach the alpha model)."""
        now = self.engine.now
        job.finish_time = now
        self.metrics.record_job_completion(
            job_id=job.job_id,
            name=job.name,
            num_tasks=job.num_tasks,
            dag_length=job.dag_length,
            arrival_time=job.arrival_time,
            finish_time=now,
        )
        if alpha_estimator is not None:
            alpha_estimator.observe_job(job)
            # Completed jobs are never queried again; dropping their
            # memo keeps estimator state bounded under sustained
            # arrivals (open-loop serving runs have no end-of-run
            # teardown to rely on).
            alpha_estimator.drop_job(job.job_id)
        if self.tracer is not None:
            self.tracer.end(("job", job.job_id), now, tasks=job.num_tasks)
