"""Per-job runtime state shared by both simulator families.

A :class:`JobRuntime` owns what a scheduler must track per job while it
replays: the pending-task queue fed by DAG phase activation, the
:class:`~repro.speculation.base.JobExecutionView` the speculation policy
inspects, and the throttled speculation-candidate cache.

:class:`LocalityJobRuntime` adds per-machine buckets counting how many
queued tasks prefer each machine — a *fast-reject* index for
locality-aware dispatch, used by the centralized plane only (the
decentralized protocol never asks locality questions, so its
``SchedulerJob`` stays on the bucket-free base and pays nothing on the
enqueue/dequeue hot path). The buckets do not replace the bounded
locality scan: the scan window (first 64 queue entries) is observable
behavior that the golden digests pin, so the exact scan still runs
whenever a bucket says a match might exist. The buckets only prove the
frequent negative ("no queued task prefers machine m at all") in O(1)
instead of O(64).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.speculation.base import JobExecutionView, SpeculationPolicy
from repro.workload.job import Job
from repro.workload.task import Task


class JobRuntime:
    """Mutable per-job execution state owned by a simulator.

    Subclasses add family-specific state (the centralized runtime adds
    locality buckets and running-copy counters, the decentralized
    ``SchedulerJob`` adds gossip and probe accounting).
    """

    __slots__ = (
        "job",
        "view",
        "pending",
        "pending_ids",
        "activated_phases",
        "spec_policy",
        "spec_dirty",
        "spec_cache_time",
        "spec_candidates",
        "alloc_dirty",
        "alloc_remaining",
        "alloc_alpha",
        "alloc_downstream",
    )

    def __init__(
        self, job: Job, spec_policy: Optional[SpeculationPolicy] = None
    ) -> None:
        self.job = job
        self.view = JobExecutionView(job=job)
        self.pending: Deque[Task] = deque()
        self.pending_ids: Set[int] = set()
        self.activated_phases: Set[int] = set()
        self.spec_policy = spec_policy
        # Throttled speculation-candidate cache.
        self.spec_dirty = True
        self.spec_cache_time = -float("inf")
        self.spec_candidates: list = []
        # Allocation-state input cache for the centralized family's
        # incremental allocator (repro.core.incremental): remaining task
        # count, predicted alpha, and downstream virtual tasks change
        # only when a task of this job finishes (or, for alpha, when the
        # estimator's history moves), so between those events virtual
        # sizes can be recomputed from these floats without touching the
        # job's phase structures. alloc_dirty marks a pending full
        # recompute. Inert (four slots) on planes that don't allocate
        # centrally.
        self.alloc_dirty = True
        self.alloc_remaining = 0
        self.alloc_alpha = 1.0
        self.alloc_downstream = 0.0

    # -- pending queue ------------------------------------------------------

    def activate_runnable_phases(self) -> List[Task]:
        """Queue tasks of newly runnable phases; returns the new tasks."""
        fresh: List[Task] = []
        for phase in self.job.phases:
            if phase.index in self.activated_phases:
                continue
            if self.job.phase_is_runnable(phase):
                self.activated_phases.add(phase.index)
                for task in phase.tasks:
                    if not task.is_finished:
                        self.pending.append(task)
                        self.pending_ids.add(task.task_id)
                        self._note_queued(task)
                        fresh.append(task)
        return fresh

    def _note_queued(self, task: Task) -> None:
        """Index hook: a task entered the pending queue (no-op here)."""

    def _note_dequeued(self, task: Task) -> None:
        """Index hook: a task left the pending queue (no-op here)."""

    def may_have_local_pending(self, machine_id: int) -> bool:
        """Whether a queued task *might* prefer ``machine_id``. The
        index-free base is conservative (always scan)."""
        return True

    def pop_pending(self, prefer_machine: Optional[int] = None) -> Optional[Task]:
        """Take the next pending task, preferring one local to
        ``prefer_machine`` (bounded scan)."""
        pending = self.pending
        while pending and pending[0].is_finished:
            dropped = pending.popleft()
            self.pending_ids.discard(dropped.task_id)
            self._note_dequeued(dropped)
        if not pending:
            return None
        if prefer_machine is not None and self.may_have_local_pending(
            prefer_machine
        ):
            scan_limit = min(len(pending), 64)
            for i in range(scan_limit):
                task = pending[i]
                if not task.is_finished and task.prefers(prefer_machine):
                    del pending[i]
                    self.pending_ids.discard(task.task_id)
                    self._note_dequeued(task)
                    return task
        task = pending.popleft()
        self.pending_ids.discard(task.task_id)
        self._note_dequeued(task)
        return task

    def has_pending(self) -> bool:
        """True when an unfinished task is queued (prunes finished ones
        from the queue front as a side effect)."""
        pending = self.pending
        while pending and pending[0].is_finished:
            dropped = pending.popleft()
            self.pending_ids.discard(dropped.task_id)
            self._note_dequeued(dropped)
        return bool(pending)

    def has_pending_local_to(self, machine_id: int) -> bool:
        if not self.may_have_local_pending(machine_id):
            return False
        pending = self.pending
        scan_limit = min(len(pending), 64)
        for i in range(scan_limit):
            task = pending[i]
            if not task.is_finished and task.prefers(machine_id):
                return True
        return False

    def discard_pending_id(self, task_id: int) -> None:
        """Forget a task id that finished without being dequeued (the
        queue entry itself is lazily dropped by pop_pending)."""
        self.pending_ids.discard(task_id)

    def requeue(self, task: Task) -> bool:
        """Return a dispatched task to the back of the pending queue.

        Used when a machine eviction kills a task's only running copy:
        the work is not lost, it goes back through normal dispatch.
        Idempotent — a task that is already queued (or finished) is not
        queued twice. Returns True when the task was actually queued.
        """
        if task.is_finished or task.task_id in self.pending_ids:
            return False
        self.pending.append(task)
        self.pending_ids.add(task.task_id)
        self._note_queued(task)
        return True

    # -- speculation candidates --------------------------------------------

    def speculation_candidates(self, now: float, min_interval: float) -> list:
        """Throttled candidate evaluation: re-run the policy's scan only
        when this job's copies changed or the throttle interval elapsed."""
        if self.spec_dirty or now - self.spec_cache_time >= min_interval:
            self.spec_candidates = self.spec_policy.speculation_candidates(
                self.view, now
            )
            self.spec_cache_time = now
            self.spec_dirty = False
        return self.spec_candidates

    def mark_copies_changed(self) -> None:
        """Invalidate the speculation-candidate cache."""
        self.spec_dirty = True


class LocalityJobRuntime(JobRuntime):
    """JobRuntime with per-machine locality buckets over the queue.

    ``may_have_local_pending`` becomes an O(1) exact negative: it is
    False only when *no* queued task prefers the machine, so guarding
    the bounded scan with it never changes which task is picked.
    """

    __slots__ = ("_local_counts", "_wildcard_pending")

    def __init__(
        self, job: Job, spec_policy: Optional[SpeculationPolicy] = None
    ) -> None:
        super().__init__(job, spec_policy)
        # machine -> queued tasks preferring it, plus a count of queued
        # tasks with no preference (they "prefer" everything — see
        # Task.prefers).
        self._local_counts: Dict[int, int] = {}
        self._wildcard_pending = 0

    def _note_queued(self, task: Task) -> None:
        preferred = task.preferred_machines
        if preferred:
            counts = self._local_counts
            for machine_id in preferred:
                counts[machine_id] = counts.get(machine_id, 0) + 1
        else:
            self._wildcard_pending += 1

    def _note_dequeued(self, task: Task) -> None:
        preferred = task.preferred_machines
        if preferred:
            counts = self._local_counts
            for machine_id in preferred:
                left = counts[machine_id] - 1
                if left:
                    counts[machine_id] = left
                else:
                    del counts[machine_id]
        else:
            self._wildcard_pending -= 1

    def may_have_local_pending(self, machine_id: int) -> bool:
        """False only when *no* queued task prefers ``machine_id``."""
        return self._wildcard_pending > 0 or machine_id in self._local_counts
