"""repro — a reproduction of *Hopper: Decentralized Speculation-aware
Cluster Scheduling at Scale* (Ren et al., SIGCOMM 2015).

Public API highlights
---------------------
* :mod:`repro.core` — virtual job sizes and the Hopper allocation rules.
* :mod:`repro.centralized` — centralized simulator with Fair/SRPT/Hopper.
* :mod:`repro.decentralized` — Sparrow-style decentralized simulator with
  Sparrow, Sparrow-SRPT and decentralized Hopper.
* :mod:`repro.speculation` — LATE, Mantri and GRASS.
* :mod:`repro.workload` — synthetic Facebook/Bing-like trace generators.
* :mod:`repro.experiments` — one entry point per paper figure/table.
* :mod:`repro.sweep` — parallel sweep orchestration with a deterministic
  on-disk result cache, plus multi-seed :class:`~repro.sweep.Study`
  grids with bootstrap CIs (also: the ``python -m repro`` CLI).
* :mod:`repro.registry` — name registries (systems, policies, straggler
  models, profiles, spec kinds, studies); the extension point for
  plugging in new named things end-to-end.
"""

__version__ = "1.2.0"

from repro.core import (
    JobAllocationState,
    fair_allocation,
    hopper_allocation,
    srpt_allocation,
    threshold_multiplier,
    virtual_size,
)

__all__ = [
    "JobAllocationState",
    "hopper_allocation",
    "srpt_allocation",
    "fair_allocation",
    "virtual_size",
    "threshold_multiplier",
    "__version__",
]
