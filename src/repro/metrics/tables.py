"""Uniform paper-vs-measured table formatting.

Shared by the ``python -m repro`` CLI and the pytest-benchmark scripts so
every surface prints identical tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(title: str, header: Sequence, rows: Iterable[Sequence]) -> str:
    """Render a title + aligned columns; floats are shown with 2 decimals."""
    lines: List[str] = [f"\n=== {title} ==="]
    widths = [max(len(str(h)), 12) for h in header]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append(
            "  ".join(
                (f"{v:.2f}" if isinstance(v, float) else str(v)).ljust(w)
                for v, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def print_table(title: str, header: Sequence, rows: Iterable[Sequence]) -> None:
    """Uniform table printer for paper-vs-measured output."""
    print(format_table(title, header, rows))
